//! Anomaly injectors.
//!
//! Two generators, exactly as the paper ships them (§III-E):
//!
//! - **Memory leaks**: each leak allocates (and dirties — the paper stresses
//!   that writing is what forces physical allocation) a contiguous chunk
//!   whose size is drawn from a *uniform* distribution, at inter-arrival
//!   times drawn from an *exponential* distribution whose mean is itself
//!   drawn uniformly at startup.
//! - **Unterminated threads**: spawned at exponential inter-arrival times
//!   whose mean is drawn uniformly at startup.
//!
//! Both support the paper's §IV *load-coupled* mode, where the faulty
//! servlet leaks on each TPC-W Home interaction with a per-run probability,
//! making anomaly accrual track server throughput (which is what produces
//! the paper's Fig. 5 observation that anomaly accumulation *decelerates*
//! near the crash as throughput collapses).

use crate::rng::SimRng;

/// How anomalies are generated during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionMode {
    /// Timer-driven (the paper's standalone utilities): leaks and thread
    /// spawns arrive on their own exponential clocks, independent of load.
    TimeDriven,
    /// Load-coupled (the paper's TPC-W experiment): every Home interaction
    /// leaks with probability `leak_prob` and spawns an unterminated thread
    /// with probability `thread_prob`; both probabilities are drawn per run.
    LoadCoupled,
}

/// Configuration ranges for the injectors. Every "range" field is the
/// uniform interval the per-run parameter is drawn from, mirroring the
/// paper's "drawn uniformly at random at startup, in a range defined by the
/// user".
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Injection mode.
    pub mode: InjectionMode,
    /// Leak size range (MiB), uniform per leak.
    pub leak_size_mib: (f64, f64),
    /// Range of the *mean* leak inter-arrival time (s) for time-driven mode.
    pub leak_mean_interval_s: (f64, f64),
    /// Range of the per-Home leak probability for load-coupled mode.
    pub leak_prob_per_home: (f64, f64),
    /// Range of the *mean* thread-spawn inter-arrival (s), time-driven mode.
    pub thread_mean_interval_s: (f64, f64),
    /// Range of the per-Home thread-spawn probability, load-coupled mode.
    pub thread_prob_per_home: (f64, f64),
    /// Range of the per-Home unreleased-lock probability (the paper's §I
    /// "unreleased locks" anomaly class). Zero by default: the paper's §IV
    /// experiment injects only leaks and threads.
    pub lock_prob_per_home: (f64, f64),
    /// Range of the per-Home file-fragmentation increment (the §I "file
    /// fragmentation" class; write churn scatters database pages). Zero by
    /// default for the same reason.
    pub frag_delta_per_home: (f64, f64),
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        // Wide per-run ranges, matching the paper's emphasis on anomalies
        // "occurring at different rates": consecutive runs draw very
        // different leak intensities, so identical feature values can map
        // to very different RTTFs across runs — the nonlinearity that makes
        // the tree methods win Table II.
        AnomalyConfig {
            mode: InjectionMode::LoadCoupled,
            leak_size_mib: (0.5, 3.5),
            leak_mean_interval_s: (1.0, 4.0),
            leak_prob_per_home: (0.15, 0.85),
            thread_mean_interval_s: (8.0, 30.0),
            thread_prob_per_home: (0.02, 0.20),
            lock_prob_per_home: (0.0, 0.0),
            frag_delta_per_home: (0.0, 0.0),
        }
    }
}

impl AnomalyConfig {
    /// A configuration exercising *all four* §I anomaly classes at once
    /// (leaks, threads, unreleased locks, file fragmentation) — beyond the
    /// paper's §IV experiment, which injects the first two.
    pub fn all_classes() -> Self {
        AnomalyConfig {
            lock_prob_per_home: (0.01, 0.06),
            frag_delta_per_home: (0.0001, 0.0008),
            ..AnomalyConfig::default()
        }
    }
}

/// An injected anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyEvent {
    /// `mib` of heap leaked (and dirtied, so physically allocated).
    MemoryLeak {
        /// Size of the leaked chunk in MiB.
        mib: f64,
    },
    /// One thread detached and never joined.
    UnterminatedThread,
    /// One lock acquired and never released.
    UnreleasedLock,
    /// Database files fragmented a little further.
    FileFragmentation {
        /// Fragmentation-ratio increment.
        delta: f64,
    },
}

/// Injector for the two auxiliary anomaly classes (unreleased locks, file
/// fragmentation), load-coupled like the primary ones.
#[derive(Debug, Clone)]
pub struct AuxInjector {
    lock_prob: f64,
    frag_delta: f64,
    rng: SimRng,
    locks: u64,
    frag_total: f64,
}

impl AuxInjector {
    /// Draw per-run parameters from the config ranges.
    pub fn new(cfg: &AnomalyConfig, mut rng: SimRng) -> Self {
        let lock_prob = rng.uniform(cfg.lock_prob_per_home.0, cfg.lock_prob_per_home.1);
        let frag_delta = rng.uniform(cfg.frag_delta_per_home.0, cfg.frag_delta_per_home.1);
        AuxInjector {
            lock_prob,
            frag_delta,
            rng,
            locks: 0,
            frag_total: 0.0,
        }
    }

    /// The per-run lock-leak probability drawn at startup.
    pub fn lock_prob(&self) -> f64 {
        self.lock_prob
    }

    /// The per-run fragmentation increment drawn at startup.
    pub fn frag_delta(&self) -> f64 {
        self.frag_delta
    }

    /// Load-coupled hook: events fired by one Home interaction (0-2).
    pub fn on_home_interaction(&mut self) -> Vec<AnomalyEvent> {
        let mut out = Vec::new();
        if self.lock_prob > 0.0 && self.rng.bernoulli(self.lock_prob) {
            self.locks += 1;
            out.push(AnomalyEvent::UnreleasedLock);
        }
        if self.frag_delta > 0.0 {
            self.frag_total += self.frag_delta;
            out.push(AnomalyEvent::FileFragmentation {
                delta: self.frag_delta,
            });
        }
        out
    }

    /// Locks leaked so far this run.
    pub fn locks(&self) -> u64 {
        self.locks
    }

    /// Cumulated fragmentation injected this run.
    pub fn frag_total(&self) -> f64 {
        self.frag_total
    }
}

/// Memory-leak generator with per-run drawn parameters.
#[derive(Debug, Clone)]
pub struct LeakInjector {
    size_range: (f64, f64),
    /// Mean of the exponential inter-arrival clock (time-driven mode).
    mean_interval: f64,
    /// Per-Home leak probability (load-coupled mode).
    prob_per_home: f64,
    rng: SimRng,
    total_leaked_mib: f64,
    leaks: u64,
}

impl LeakInjector {
    /// Draw per-run parameters from the config ranges.
    pub fn new(cfg: &AnomalyConfig, mut rng: SimRng) -> Self {
        let mean_interval = rng.uniform(cfg.leak_mean_interval_s.0, cfg.leak_mean_interval_s.1);
        let prob_per_home = rng.uniform(cfg.leak_prob_per_home.0, cfg.leak_prob_per_home.1);
        LeakInjector {
            size_range: cfg.leak_size_mib,
            mean_interval,
            prob_per_home,
            rng,
            total_leaked_mib: 0.0,
            leaks: 0,
        }
    }

    /// The per-run mean inter-arrival time drawn at startup.
    pub fn mean_interval(&self) -> f64 {
        self.mean_interval
    }

    /// The per-run Home-hit leak probability drawn at startup.
    pub fn prob_per_home(&self) -> f64 {
        self.prob_per_home
    }

    /// Next inter-arrival delay for the time-driven clock.
    pub fn next_delay(&mut self) -> f64 {
        self.rng.exponential(self.mean_interval)
    }

    /// Fire a leak unconditionally, returning the event.
    pub fn leak(&mut self) -> AnomalyEvent {
        let mib = self.rng.uniform(self.size_range.0, self.size_range.1);
        self.total_leaked_mib += mib;
        self.leaks += 1;
        AnomalyEvent::MemoryLeak { mib }
    }

    /// Load-coupled hook: called on every Home interaction; leaks with the
    /// per-run probability.
    pub fn on_home_interaction(&mut self) -> Option<AnomalyEvent> {
        if self.rng.bernoulli(self.prob_per_home) {
            Some(self.leak())
        } else {
            None
        }
    }

    /// Total MiB leaked so far this run.
    pub fn total_leaked_mib(&self) -> f64 {
        self.total_leaked_mib
    }

    /// Number of leaks so far this run.
    pub fn leak_count(&self) -> u64 {
        self.leaks
    }
}

/// Unterminated-thread generator with per-run drawn parameters.
#[derive(Debug, Clone)]
pub struct ThreadInjector {
    mean_interval: f64,
    prob_per_home: f64,
    rng: SimRng,
    spawned: u64,
}

impl ThreadInjector {
    /// Draw per-run parameters from the config ranges.
    pub fn new(cfg: &AnomalyConfig, mut rng: SimRng) -> Self {
        let mean_interval = rng.uniform(cfg.thread_mean_interval_s.0, cfg.thread_mean_interval_s.1);
        let prob_per_home = rng.uniform(cfg.thread_prob_per_home.0, cfg.thread_prob_per_home.1);
        ThreadInjector {
            mean_interval,
            prob_per_home,
            rng,
            spawned: 0,
        }
    }

    /// The per-run mean inter-arrival time drawn at startup.
    pub fn mean_interval(&self) -> f64 {
        self.mean_interval
    }

    /// The per-run Home-hit spawn probability drawn at startup.
    pub fn prob_per_home(&self) -> f64 {
        self.prob_per_home
    }

    /// Next inter-arrival delay for the time-driven clock.
    pub fn next_delay(&mut self) -> f64 {
        self.rng.exponential(self.mean_interval)
    }

    /// Fire a spawn unconditionally.
    pub fn spawn(&mut self) -> AnomalyEvent {
        self.spawned += 1;
        AnomalyEvent::UnterminatedThread
    }

    /// Load-coupled hook for Home interactions.
    pub fn on_home_interaction(&mut self) -> Option<AnomalyEvent> {
        if self.rng.bernoulli(self.prob_per_home) {
            Some(self.spawn())
        } else {
            None
        }
    }

    /// Threads spawned so far this run.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnomalyConfig {
        AnomalyConfig::default()
    }

    #[test]
    fn per_run_parameters_within_ranges() {
        for seed in 0..50 {
            let li = LeakInjector::new(&cfg(), SimRng::new(seed));
            assert!((1.0..=4.0).contains(&li.mean_interval()));
            assert!((0.15..=0.85).contains(&li.prob_per_home()));
            let ti = ThreadInjector::new(&cfg(), SimRng::new(seed + 1000));
            assert!((8.0..=30.0).contains(&ti.mean_interval()));
            assert!((0.02..=0.20).contains(&ti.prob_per_home()));
        }
    }

    #[test]
    fn per_run_parameters_vary_across_seeds() {
        let means: Vec<f64> = (0..20)
            .map(|s| LeakInjector::new(&cfg(), SimRng::new(s)).mean_interval())
            .collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            max - min > 0.5,
            "means suspiciously clustered: {min}..{max}"
        );
    }

    #[test]
    fn leak_sizes_uniform_in_range() {
        let mut li = LeakInjector::new(&cfg(), SimRng::new(7));
        let mut sum = 0.0;
        for _ in 0..5000 {
            match li.leak() {
                AnomalyEvent::MemoryLeak { mib } => {
                    assert!((0.5..3.5).contains(&mib));
                    sum += mib;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let mean = sum / 5000.0;
        assert!((mean - 2.0).abs() < 0.1, "mean leak {mean}");
        assert_eq!(li.leak_count(), 5000);
        assert!((li.total_leaked_mib() - sum).abs() < 1e-9);
    }

    #[test]
    fn time_driven_delays_have_configured_mean() {
        let mut li = LeakInjector::new(&cfg(), SimRng::new(11));
        let expect = li.mean_interval();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| li.next_delay()).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - expect).abs() < 0.1 * expect,
            "empirical {emp} vs drawn mean {expect}"
        );
    }

    #[test]
    fn load_coupled_rate_matches_drawn_probability() {
        let mut li = LeakInjector::new(&cfg(), SimRng::new(13));
        let p = li.prob_per_home();
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| li.on_home_interaction().is_some())
            .count();
        let emp = hits as f64 / n as f64;
        assert!((emp - p).abs() < 0.02, "empirical {emp} vs p {p}");
    }

    #[test]
    fn thread_injector_counts_spawns() {
        let mut ti = ThreadInjector::new(&cfg(), SimRng::new(17));
        let mut n = 0;
        for _ in 0..10_000 {
            if ti.on_home_interaction().is_some() {
                n += 1;
            }
        }
        assert_eq!(ti.spawned(), n);
        assert!(n > 0);
        assert_eq!(ti.spawn(), AnomalyEvent::UnterminatedThread);
        assert_eq!(ti.spawned(), n + 1);
    }

    #[test]
    fn aux_injector_disabled_by_default() {
        let mut aux = AuxInjector::new(&cfg(), SimRng::new(31));
        for _ in 0..1000 {
            assert!(aux.on_home_interaction().is_empty());
        }
        assert_eq!(aux.locks(), 0);
        assert_eq!(aux.frag_total(), 0.0);
    }

    #[test]
    fn aux_injector_fires_all_classes_when_enabled() {
        let mut aux = AuxInjector::new(&AnomalyConfig::all_classes(), SimRng::new(37));
        let mut locks = 0;
        let mut frags = 0;
        for _ in 0..5000 {
            for ev in aux.on_home_interaction() {
                match ev {
                    AnomalyEvent::UnreleasedLock => locks += 1,
                    AnomalyEvent::FileFragmentation { delta } => {
                        assert!(delta > 0.0);
                        frags += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert!(locks > 0, "locks should leak");
        assert_eq!(frags, 5000, "fragmentation advances every Home hit");
        assert_eq!(aux.locks(), locks);
        assert!((aux.frag_total() - 5000.0 * aux.frag_delta()).abs() < 1e-9);
    }

    #[test]
    fn injectors_are_deterministic_per_seed() {
        let mut a = LeakInjector::new(&cfg(), SimRng::new(23));
        let mut b = LeakInjector::new(&cfg(), SimRng::new(23));
        for _ in 0..100 {
            assert_eq!(a.next_delay(), b.next_delay());
            assert_eq!(a.leak(), b.leak());
        }
    }
}
