//! Multi-run data-collection campaigns.
//!
//! The paper's initial monitoring phase (§III-A) runs the faulty system,
//! samples the 15 features on a ~1.5 s clock, logs a *fail event* when the
//! failure condition fires, restarts the VM, and repeats — for a week. A
//! [`Campaign`] does the same against the simulator: it produces a list of
//! [`Run`]s, each a sequence of [`RunSample`]s ending (usually) in failure.
//!
//! The monitor's sampling clock is *not* a perfect metronome: the paper
//! leans on exactly that (§III-B) — under overload the interval between
//! datapoints stretches, and that inter-generation time correlates with the
//! client response time (their Fig. 3). The harness therefore schedules the
//! next sample at `nominal × (1 + skew·overload) + jitter`.

use crate::engine::{SimConfig, Simulation};
use crate::vm::SystemSnapshot;
use crate::SimRng;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Simulation configuration used for every run.
    pub sim: SimConfig,
    /// Number of run-until-failure cycles.
    pub runs: usize,
    /// Horizon (s) after which a run is abandoned even without failure.
    pub max_run_duration: f64,
    /// Nominal sampling interval (s); the paper's FMC uses ≈ 1.5 s.
    pub sample_interval: f64,
    /// How strongly overload stretches the sampling interval.
    pub overload_skew: f64,
    /// Standard deviation of the scheduler jitter added to each interval (s).
    pub jitter_std: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            sim: SimConfig::default(),
            runs: 10,
            max_run_duration: 40_000.0,
            sample_interval: 1.5,
            overload_skew: 0.35,
            jitter_std: 0.05,
        }
    }
}

/// One monitor sample: the snapshot plus the ground truth the paper's
/// instrumented emulated browsers record alongside (client response time).
#[derive(Debug, Clone, Copy)]
pub struct RunSample {
    /// Wall-clock (since VM boot) at which the sample was taken.
    pub t: f64,
    /// The 15-feature snapshot.
    pub snapshot: SystemSnapshot,
    /// Mean client response time of requests completed since the previous
    /// sample (0 when none completed). Ground truth for Fig. 3 only —
    /// never an input feature.
    pub response_time_s: f64,
    /// Requests completed since the previous sample.
    pub completed: u64,
}

/// One run: samples plus the fail event.
#[derive(Debug, Clone)]
pub struct Run {
    /// Seed the run's simulation used (for replay).
    pub seed: u64,
    /// Chronological samples.
    pub samples: Vec<RunSample>,
    /// Fail-event time, if the failure condition fired.
    pub fail_time: Option<f64>,
}

impl Run {
    /// Duration covered by the run (fail time, or last sample).
    pub fn duration(&self) -> f64 {
        self.fail_time
            .unwrap_or_else(|| self.samples.last().map_or(0.0, |s| s.t))
    }
}

/// The campaign driver.
///
/// ```
/// use f2pm_sim::{Campaign, CampaignConfig};
///
/// let mut cfg = CampaignConfig::default();
/// cfg.runs = 1;
/// let runs = Campaign::new(cfg, 7).run_all();
/// assert_eq!(runs.len(), 1);
/// let run = &runs[0];
/// assert!(run.fail_time.is_some(), "default anomaly rates kill the guest");
/// assert!(run.samples.len() > 100, "~1.5 s sampling over a multi-minute run");
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
    seed: u64,
}

impl Campaign {
    /// Create a campaign with a master seed; every run derives its own.
    pub fn new(cfg: CampaignConfig, seed: u64) -> Self {
        Campaign { cfg, seed }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Execute all runs sequentially.
    pub fn run_all(&self) -> Vec<Run> {
        let mut rng = SimRng::new(self.seed);
        (0..self.cfg.runs)
            .map(|_| {
                let run_seed = rng.next_u64();
                self.run_once(run_seed)
            })
            .collect()
    }

    /// Execute a single run with an explicit seed.
    pub fn run_once(&self, run_seed: u64) -> Run {
        let mut sim = Simulation::new(self.cfg.sim.clone(), run_seed);
        // Jitter stream independent of the simulation's own randomness.
        let mut jitter_rng = SimRng::new(run_seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut samples = Vec::new();
        let mut next_sample = self.cfg.sample_interval;
        let mut completed_before = 0u64;

        loop {
            let alive = sim.advance_until(next_sample);
            let t = sim.now();
            if !alive {
                break;
            }
            if t > self.cfg.max_run_duration {
                break;
            }
            let snapshot = sim.snapshot();
            let responses = sim.drain_responses();
            let completed_now = sim.completed_requests();
            let completed = completed_now - completed_before;
            completed_before = completed_now;
            let response_time_s = if responses.is_empty() {
                0.0
            } else {
                responses.iter().map(|r| r.response_s).sum::<f64>() / responses.len() as f64
            };
            samples.push(RunSample {
                t,
                snapshot,
                response_time_s,
                completed,
            });

            // §III-B: overload stretches the next interval.
            let skew = 1.0 + self.cfg.overload_skew * sim.overload_factor();
            let jitter = jitter_rng.gaussian(0.0, self.cfg.jitter_std);
            let interval =
                (self.cfg.sample_interval * skew + jitter).max(self.cfg.sample_interval * 0.25);
            next_sample = t + interval;
        }

        Run {
            seed: run_seed,
            samples,
            fail_time: sim.failed_at(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyConfig;

    fn fast_campaign(runs: usize) -> Campaign {
        let cfg = CampaignConfig {
            sim: SimConfig {
                anomaly: AnomalyConfig {
                    leak_size_mib: (6.0, 10.0),
                    leak_prob_per_home: (0.8, 0.9),
                    ..AnomalyConfig::default()
                },
                ..SimConfig::default()
            },
            runs,
            ..CampaignConfig::default()
        };
        Campaign::new(cfg, 1234)
    }

    #[test]
    fn campaign_produces_failing_runs() {
        let runs = fast_campaign(3).run_all();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.fail_time.is_some(), "run did not fail");
            assert!(r.samples.len() > 50, "too few samples: {}", r.samples.len());
        }
    }

    #[test]
    fn fail_times_vary_across_runs() {
        let runs = fast_campaign(4).run_all();
        let times: Vec<f64> = runs.iter().map(|r| r.fail_time.unwrap()).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max > min, "fail times identical: {times:?}");
    }

    #[test]
    fn samples_are_chronological_and_before_failure() {
        let runs = fast_campaign(2).run_all();
        for r in &runs {
            let ft = r.fail_time.unwrap();
            for w in r.samples.windows(2) {
                assert!(w[0].t < w[1].t);
            }
            assert!(r.samples.last().unwrap().t <= ft);
        }
    }

    #[test]
    fn sampling_interval_stretches_under_load() {
        let runs = fast_campaign(1).run_all();
        let s = &runs[0].samples;
        assert!(s.len() > 100);
        // Mean interval over the first quarter vs the last quarter.
        let q = s.len() / 4;
        let early: f64 = s[1..q].windows(2).map(|w| w[1].t - w[0].t).sum::<f64>() / (q - 2) as f64;
        let lastq = &s[s.len() - q..];
        let late: f64 = lastq.windows(2).map(|w| w[1].t - w[0].t).sum::<f64>() / (q - 1) as f64;
        assert!(
            late > early * 1.05,
            "inter-generation time should grow: early {early:.3} late {late:.3}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = fast_campaign(2).run_all();
        let b = fast_campaign(2).run_all();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.fail_time, rb.fail_time);
            assert_eq!(ra.samples.len(), rb.samples.len());
        }
    }

    #[test]
    fn run_duration_helper() {
        let runs = fast_campaign(1).run_all();
        let r = &runs[0];
        assert_eq!(r.duration(), r.fail_time.unwrap());
        let healthy = Run {
            seed: 0,
            samples: vec![],
            fail_time: None,
        };
        assert_eq!(healthy.duration(), 0.0);
    }

    #[test]
    fn swap_used_accelerates_near_failure() {
        // The feature trajectory motivating the paper's slope metrics.
        let runs = fast_campaign(1).run_all();
        let s = &runs[0].samples;
        let n = s.len();
        let seg = n / 5;
        let slope = |a: &RunSample, b: &RunSample| {
            (b.snapshot.swap_used - a.snapshot.swap_used) / (b.t - a.t)
        };
        let early = slope(&s[0], &s[seg]);
        // Find first sample where swap starts moving to compare fairly.
        let late = slope(&s[n - seg - 1], &s[n - 1]);
        assert!(
            late >= early,
            "swap slope should not shrink: early {early:.4} late {late:.4}"
        );
        let final_swap = s[n - 1].snapshot.swap_used;
        assert!(
            final_swap > 900.0,
            "swap nearly full at failure: {final_swap}"
        );
    }
}
