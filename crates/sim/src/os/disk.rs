//! Disk subsystem model.
//!
//! The paper's catalogue of anomaly classes (§I) includes **file
//! fragmentation** alongside memory leaks and unterminated threads: a
//! long-running guest whose database files fragment pays progressively
//! more seeks per logical read. This module models the data volume the
//! database tier sits on:
//!
//! - a service time per page read/write that splits into transfer cost
//!   (bandwidth-bound, stable) and positioning cost (seek/rotate, which
//!   *grows* with the fragmentation ratio);
//! - a fragmentation state in `[0, 1)` that anomaly injection advances and
//!   that a rejuvenation (re-copying files on restart) resets;
//! - utilization accounting so the CPU model can derive iowait from data
//!   disk traffic as well as swap traffic.

/// Static disk parameters (shaped after the 7.2k-rpm SATA disks behind the
/// paper's VMware hosts).
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Sequential transfer time per 16 KiB page (ms).
    pub transfer_ms_per_page: f64,
    /// Average positioning (seek + rotational) cost per *discontiguous*
    /// page (ms).
    pub seek_ms: f64,
    /// Fraction of pages that are discontiguous on a freshly laid-out
    /// volume.
    pub base_discontiguity: f64,
    /// Device saturation: page operations per second the disk can sustain
    /// when fully fragmented access patterns dominate.
    pub max_iops: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            transfer_ms_per_page: 0.12,
            seek_ms: 8.5,
            // OLTP page access is substantially random even on a fresh
            // layout; fragmentation anomalies push this toward 1.
            base_discontiguity: 0.15,
            max_iops: 140.0,
        }
    }
}

/// Dynamic disk state.
#[derive(Debug, Clone)]
pub struct DiskModel {
    cfg: DiskConfig,
    /// Fragmentation ratio in `[0, 1)`: probability that the next page of
    /// a logically sequential read requires a positioning operation.
    fragmentation: f64,
    /// Pages served since boot (diagnostics).
    pages_served: u64,
    /// Utilization in `[0, 1]` over the last accounting interval.
    utilization: f64,
}

impl DiskModel {
    /// A freshly laid-out volume.
    pub fn new(cfg: DiskConfig) -> Self {
        DiskModel {
            fragmentation: cfg.base_discontiguity,
            cfg,
            pages_served: 0,
            utilization: 0.0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Current fragmentation ratio.
    pub fn fragmentation(&self) -> f64 {
        self.fragmentation
    }

    /// Advance fragmentation by `delta` (from write churn or the
    /// fragmentation anomaly injector). Saturates below 1.
    pub fn fragment(&mut self, delta: f64) {
        debug_assert!(delta >= 0.0);
        self.fragmentation = (self.fragmentation + delta).min(0.95);
    }

    /// Defragment back to the clean layout (what a full rejuvenation with
    /// file re-copy achieves).
    pub fn defragment(&mut self) {
        self.fragmentation = self.cfg.base_discontiguity;
    }

    /// Set the fragmentation ratio directly — used to carry layout state
    /// across restarts: an application restart clears leaked memory and
    /// threads but does *not* tidy the on-disk layout.
    pub fn set_fragmentation(&mut self, f: f64) {
        self.fragmentation = f.clamp(self.cfg.base_discontiguity, 0.95);
    }

    /// Expected service time (seconds) for `pages` logically sequential
    /// page reads at the current fragmentation level.
    pub fn read_time_s(&mut self, pages: f64) -> f64 {
        debug_assert!(pages >= 0.0);
        self.pages_served += pages as u64;
        let per_page_ms = self.cfg.transfer_ms_per_page + self.fragmentation * self.cfg.seek_ms;
        pages * per_page_ms / 1000.0
    }

    /// Record the I/O demand of the last interval and return the resulting
    /// utilization in `[0, 1]` (`pages_per_s` of demand against the
    /// device's fragmentation-adjusted capacity).
    pub fn account_utilization(&mut self, pages_per_s: f64) -> f64 {
        let per_page_ms = self.cfg.transfer_ms_per_page + self.fragmentation * self.cfg.seek_ms;
        let capacity = (1000.0 / per_page_ms).min(self.cfg.max_iops * 10.0);
        self.utilization = (pages_per_s / capacity).clamp(0.0, 1.0);
        self.utilization
    }

    /// Utilization recorded by the last [`DiskModel::account_utilization`].
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Pages served since boot.
    pub fn pages_served(&self) -> u64 {
        self.pages_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_disk_is_fast() {
        let mut d = DiskModel::new(DiskConfig::default());
        let t = d.read_time_s(100.0);
        // 100 pages at ~1.4 ms each (transfer + 15 % seeks).
        assert!(t < 0.2, "read time {t}");
        assert_eq!(d.pages_served(), 100);
    }

    #[test]
    fn fragmentation_slows_reads_markedly() {
        let mut clean = DiskModel::new(DiskConfig::default());
        let mut frag = DiskModel::new(DiskConfig::default());
        frag.fragment(0.5);
        let tc = clean.read_time_s(100.0);
        let tf = frag.read_time_s(100.0);
        assert!(tf > 3.0 * tc, "clean {tc} fragmented {tf}");
    }

    #[test]
    fn fragmentation_saturates_below_one() {
        let mut d = DiskModel::new(DiskConfig::default());
        for _ in 0..100 {
            d.fragment(0.1);
        }
        assert!(d.fragmentation() <= 0.95);
    }

    #[test]
    fn defragment_restores_baseline() {
        let mut d = DiskModel::new(DiskConfig::default());
        d.fragment(0.4);
        assert!(d.fragmentation() > 0.4);
        d.defragment();
        assert_eq!(d.fragmentation(), DiskConfig::default().base_discontiguity);
    }

    #[test]
    fn utilization_grows_with_demand_and_fragmentation() {
        let mut d = DiskModel::new(DiskConfig::default());
        let low = d.account_utilization(100.0);
        let high = d.account_utilization(2000.0);
        assert!(high > low);
        d.fragment(0.6);
        let fragged = d.account_utilization(100.0);
        assert!(fragged > low, "same demand, more seeks → busier disk");
        assert!(d.utilization() <= 1.0);
    }

    #[test]
    fn zero_demand_zero_utilization() {
        let mut d = DiskModel::new(DiskConfig::default());
        assert_eq!(d.account_utilization(0.0), 0.0);
        assert_eq!(d.read_time_s(0.0), 0.0);
    }
}
