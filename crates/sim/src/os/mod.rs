//! Operating-system resource models for the simulated VM.
//!
//! These models produce, at every instant of simulated time, exactly the
//! quantities the paper's Feature Monitor Client samples from standard
//! tooling (`free`, `top`/`vmstat`): the memory breakdown, the swap state,
//! the CPU time percentages, and the thread count.

pub mod cpu;
pub mod disk;
pub mod memory;
pub mod threads;

pub use cpu::{CpuBreakdown, CpuConfig, CpuModel};
pub use disk::{DiskConfig, DiskModel};
pub use memory::{MemoryConfig, MemoryModel, MemoryState};
pub use threads::{ThreadConfig, ThreadModel};
