//! Virtual-machine memory and swap model.
//!
//! Reproduces, at the granularity visible to `free`, how a Linux guest
//! behaves while an application leaks memory:
//!
//! 1. While plenty of RAM is free, the page cache grows toward a preferred
//!    working size (serving the TPC-W database) and anonymous memory is
//!    fully resident.
//! 2. As anonymous demand (app working set + leaks + thread stacks) grows,
//!    the kernel reclaims page cache and buffers down to a floor.
//! 3. Once reclaim is exhausted, anonymous pages spill to swap. Swap-out
//!    traffic — and, once the resident set no longer fits, thrashing
//!    swap-in traffic — grows superlinearly as free swap vanishes. This is
//!    the accelerating `SWused` trajectory the paper calls out in §III-B as
//!    the reason slopes are such strong predictors.
//! 4. When free memory and free swap are both (near) zero the guest is
//!    effectively dead; the failure condition in [`crate::failure`] keys on
//!    exactly that.
//!
//! All quantities are mebibytes stored as `f64`.

/// Static sizing of the simulated guest's memory.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// Physical RAM visible to the guest (MiB).
    pub total_ram: f64,
    /// Swap partition size (MiB).
    pub total_swap: f64,
    /// RAM permanently claimed by the kernel and resident daemons (MiB).
    pub kernel_reserved: f64,
    /// Preferred page-cache size when memory is plentiful (MiB).
    pub cache_preferred: f64,
    /// Page cache floor the kernel keeps even under pressure (MiB).
    pub cache_floor: f64,
    /// Preferred buffer size (MiB).
    pub buffers_preferred: f64,
    /// Buffer floor under pressure (MiB).
    pub buffers_floor: f64,
    /// Shared memory segments (MiB) — roughly constant in the testbed.
    pub shared: f64,
    /// Time constant (s) for cache growth toward its target.
    pub cache_growth_tau: f64,
    /// Sustained swap device bandwidth (MiB/s) used to convert swap traffic
    /// into iowait pressure.
    pub swap_bandwidth: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // Shaped after the paper's Ubuntu 10.04 guests: a small VM that a
        // servlet container plus MySQL can exhaust in a few thousand
        // seconds of leaking.
        MemoryConfig {
            total_ram: 2048.0,
            total_swap: 1024.0,
            kernel_reserved: 160.0,
            cache_preferred: 700.0,
            cache_floor: 40.0,
            buffers_preferred: 120.0,
            buffers_floor: 8.0,
            shared: 24.0,
            cache_growth_tau: 120.0,
            swap_bandwidth: 60.0,
        }
    }
}

/// The `free`-style snapshot exposed to the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryState {
    /// Memory used by applications (anonymous resident set), MiB.
    pub used: f64,
    /// Free memory, MiB.
    pub free: f64,
    /// Shared memory, MiB.
    pub shared: f64,
    /// Kernel buffers, MiB.
    pub buffers: f64,
    /// Page cache, MiB.
    pub cached: f64,
    /// Swap in use, MiB.
    pub swap_used: f64,
    /// Swap free, MiB.
    pub swap_free: f64,
}

/// Dynamic memory model; call [`MemoryModel::advance`] to integrate.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    cfg: MemoryConfig,
    /// Current page cache size (MiB).
    cached: f64,
    /// Current buffers size (MiB).
    buffers: f64,
    /// Anonymous demand: working set + leaks + thread stacks (MiB).
    anon_demand: f64,
    /// Portion of anonymous demand currently on swap (MiB).
    swap_used: f64,
    /// Swap traffic rate over the last advance (MiB/s), drives iowait.
    swap_traffic: f64,
}

impl MemoryModel {
    /// Fresh guest right after boot.
    pub fn new(cfg: MemoryConfig) -> Self {
        MemoryModel {
            buffers: cfg.buffers_floor,
            cached: cfg.cache_floor,
            anon_demand: 0.0,
            swap_used: 0.0,
            swap_traffic: 0.0,
            cfg,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Set the anonymous memory demand (working set + leaked + stacks).
    pub fn set_anon_demand(&mut self, mib: f64) {
        self.anon_demand = mib.max(0.0);
    }

    /// Current anonymous demand (MiB).
    pub fn anon_demand(&self) -> f64 {
        self.anon_demand
    }

    /// RAM available to anonymous pages after the kernel reserve and the
    /// *current* cache/buffers.
    fn anon_capacity(&self) -> f64 {
        (self.cfg.total_ram
            - self.cfg.kernel_reserved
            - self.cfg.shared
            - self.cached
            - self.buffers)
            .max(0.0)
    }

    /// Integrate the model over `dt` seconds given the current I/O activity
    /// level (`io_activity` in [0, 1], from the workload: DB reads populate
    /// the cache).
    pub fn advance(&mut self, dt: f64, io_activity: f64) {
        debug_assert!(dt >= 0.0);
        if dt == 0.0 {
            return;
        }
        let io = io_activity.clamp(0.0, 1.0);

        // --- Phase 1: cache/buffer targets given current pressure. ---
        let ram_for_anon_max = self.cfg.total_ram
            - self.cfg.kernel_reserved
            - self.cfg.shared
            - self.cfg.cache_floor
            - self.cfg.buffers_floor;

        // Headroom the kernel can spend on reclaimable pages: whatever anon
        // demand leaves free, plus the floors it never gives up. Buffers are
        // sized first (they are small), the page cache gets the rest; both
        // relax toward an I/O-scaled preferred size when memory is ample
        // and shrink to their floors as anonymous demand squeezes them out.
        let headroom = (ram_for_anon_max - self.anon_demand).max(0.0)
            + self.cfg.cache_floor
            + self.cfg.buffers_floor;
        let buf_pref = self.cfg.buffers_floor
            + (self.cfg.buffers_preferred - self.cfg.buffers_floor) * (0.3 + 0.7 * io);
        let buf_target = buf_pref
            .min(headroom - self.cfg.cache_floor)
            .max(self.cfg.buffers_floor);
        let cache_pref = self.cfg.cache_floor
            + (self.cfg.cache_preferred - self.cfg.cache_floor) * (0.3 + 0.7 * io);
        let cache_target = cache_pref
            .min(headroom - buf_target)
            .max(self.cfg.cache_floor);

        // Growth is slow (tau), reclaim is fast (tau/8): the kernel drops
        // clean pages much faster than it repopulates them.
        let grow_alpha = 1.0 - (-dt / self.cfg.cache_growth_tau).exp();
        let reclaim_alpha = 1.0 - (-dt / (self.cfg.cache_growth_tau / 8.0)).exp();
        let cache_alpha = if cache_target < self.cached {
            reclaim_alpha
        } else {
            grow_alpha
        };
        let buf_alpha = if buf_target < self.buffers {
            reclaim_alpha
        } else {
            grow_alpha
        };
        self.cached += (cache_target - self.cached) * cache_alpha;
        self.buffers += (buf_target - self.buffers) * buf_alpha;

        // --- Phase 2: swap what does not fit. ---
        let capacity = self.anon_capacity();
        let overflow = (self.anon_demand - capacity).max(0.0);
        let swap_target = overflow.min(self.cfg.total_swap);
        // Swap-out is bandwidth limited.
        let max_delta = self.cfg.swap_bandwidth * dt;
        let delta = (swap_target - self.swap_used).clamp(-max_delta, max_delta);
        self.swap_used = (self.swap_used + delta).clamp(0.0, self.cfg.total_swap);

        // --- Phase 3: traffic estimate for iowait coupling. ---
        // Base: the migration we just performed. Thrash: once a meaningful
        // share of the working set lives on swap, page faults force
        // continuous swap-in, growing superlinearly with swap occupancy.
        let occupancy = self.swap_used / self.cfg.total_swap.max(1.0);
        let thrash = self.cfg.swap_bandwidth * occupancy * occupancy * 0.9;
        self.swap_traffic = delta.abs() / dt + thrash;
    }

    /// Swap traffic (MiB/s) over the last `advance`; feeds the CPU iowait
    /// model and the server slowdown factor.
    pub fn swap_traffic(&self) -> f64 {
        self.swap_traffic
    }

    /// Fraction of swap in use, `[0, 1]`.
    pub fn swap_occupancy(&self) -> f64 {
        if self.cfg.total_swap <= 0.0 {
            0.0
        } else {
            self.swap_used / self.cfg.total_swap
        }
    }

    /// Degree of memory overcommit: anonymous demand not backed by RAM or
    /// swap (MiB). When this is positive the guest cannot make progress.
    pub fn unbacked_demand(&self) -> f64 {
        (self.anon_demand - self.anon_capacity() - self.cfg.total_swap).max(0.0)
    }

    /// Produce the `free`-style snapshot.
    pub fn state(&self) -> MemoryState {
        let resident_anon = (self.anon_demand - self.swap_used).clamp(0.0, self.anon_capacity());
        let used = resident_anon + self.cfg.kernel_reserved;
        let free =
            (self.cfg.total_ram - used - self.cfg.shared - self.buffers - self.cached).max(0.0);
        MemoryState {
            used,
            free,
            shared: self.cfg.shared,
            buffers: self.buffers,
            cached: self.cached,
            swap_used: self.swap_used,
            swap_free: (self.cfg.total_swap - self.swap_used).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel::new(MemoryConfig::default())
    }

    /// Drive the model with a fixed anon demand for `secs` seconds.
    fn settle(m: &mut MemoryModel, demand: f64, secs: f64, io: f64) {
        m.set_anon_demand(demand);
        let steps = (secs / 1.0) as usize;
        for _ in 0..steps {
            m.advance(1.0, io);
        }
    }

    #[test]
    fn fresh_guest_has_high_free_memory() {
        let m = model();
        let s = m.state();
        assert!(s.free > 1500.0, "free = {}", s.free);
        assert_eq!(s.swap_used, 0.0);
        assert_eq!(s.swap_free, 1024.0);
    }

    #[test]
    fn accounting_identity_holds() {
        let mut m = model();
        for demand in [0.0, 400.0, 1200.0, 2200.0, 3200.0] {
            settle(&mut m, demand, 600.0, 0.5);
            let s = m.state();
            let total = s.used + s.free + s.shared + s.buffers + s.cached;
            assert!(
                (total - m.config().total_ram).abs() < 1.0,
                "demand {demand}: breakdown sums to {total}"
            );
        }
    }

    #[test]
    fn cache_grows_when_memory_plentiful() {
        let mut m = model();
        settle(&mut m, 300.0, 900.0, 1.0);
        let s = m.state();
        assert!(s.cached > 400.0, "cached = {}", s.cached);
        assert_eq!(s.swap_used, 0.0);
    }

    #[test]
    fn cache_reclaimed_under_pressure_before_swapping() {
        let mut m = model();
        settle(&mut m, 300.0, 900.0, 1.0);
        let cached_before = m.state().cached;
        // Push demand near (but under) RAM capacity: cache shrinks, swap
        // stays (almost) unused.
        settle(&mut m, 1700.0, 600.0, 1.0);
        let s = m.state();
        assert!(s.cached < cached_before / 3.0, "cached = {}", s.cached);
        assert!(s.swap_used < 100.0, "swap_used = {}", s.swap_used);
    }

    #[test]
    fn swap_fills_when_demand_exceeds_ram() {
        let mut m = model();
        settle(&mut m, 2500.0, 1200.0, 0.5);
        let s = m.state();
        assert!(s.swap_used > 500.0, "swap_used = {}", s.swap_used);
        assert!(s.free < 100.0, "free = {}", s.free);
    }

    #[test]
    fn swap_is_bandwidth_limited() {
        let mut m = model();
        m.set_anon_demand(3000.0);
        m.advance(1.0, 0.5);
        let s = m.state();
        assert!(
            s.swap_used <= m.config().swap_bandwidth + 1e-9,
            "swap jumped to {} in 1 s",
            s.swap_used
        );
    }

    #[test]
    fn swap_never_exceeds_total() {
        let mut m = model();
        settle(&mut m, 10_000.0, 3000.0, 0.5);
        let s = m.state();
        assert!(s.swap_used <= m.config().total_swap);
        assert_eq!(s.swap_free, 0.0);
        assert!(m.unbacked_demand() > 0.0);
    }

    #[test]
    fn swap_traffic_superlinear_near_exhaustion() {
        let mut low = model();
        settle(&mut low, 2100.0, 1200.0, 0.5);
        let mut high = model();
        settle(&mut high, 2800.0, 1200.0, 0.5);
        assert!(
            high.swap_traffic() > 2.0 * low.swap_traffic(),
            "traffic low {} high {}",
            low.swap_traffic(),
            high.swap_traffic()
        );
    }

    #[test]
    fn swap_drains_when_pressure_relieved() {
        let mut m = model();
        settle(&mut m, 2600.0, 1200.0, 0.5);
        let filled = m.state().swap_used;
        assert!(filled > 300.0);
        settle(&mut m, 200.0, 1200.0, 0.5);
        assert!(m.state().swap_used < filled / 4.0);
    }

    #[test]
    fn occupancy_and_zero_dt() {
        let mut m = model();
        assert_eq!(m.swap_occupancy(), 0.0);
        m.advance(0.0, 0.5); // must not panic or change state
        assert_eq!(m.state().swap_used, 0.0);
    }

    #[test]
    fn io_activity_modulates_cache_target() {
        let mut idle = model();
        settle(&mut idle, 300.0, 900.0, 0.0);
        let mut busy = model();
        settle(&mut busy, 300.0, 900.0, 1.0);
        assert!(busy.state().cached > idle.state().cached);
    }
}
