//! CPU time-accounting model.
//!
//! Converts the instantaneous load on the simulated guest into the
//! percentage breakdown that `top`/`vmstat` report and the paper's monitor
//! samples: `us`, `ni`, `sy`, `wa` (iowait), `st` (steal), `id`.
//!
//! The model is driven by three inputs per interval:
//! - `work_demand`: CPU-seconds per second of user work requested by the
//!   application (can exceed the number of vCPUs — then the guest saturates
//!   and the overload factor grows);
//! - `swap_traffic`: MiB/s of swap I/O from the memory model → iowait;
//! - a stochastic hypervisor steal component (the host in the paper runs
//!   other VMs on the same 32 cores).

use crate::rng::SimRng;

/// Static CPU configuration for the guest.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Number of virtual CPUs.
    pub vcpus: f64,
    /// Kernel overhead as a fraction of user work (syscalls, network stack).
    pub sys_fraction: f64,
    /// Baseline kernel activity in CPU-seconds/s (kswapd idle scans, timers).
    pub sys_baseline: f64,
    /// Nice workload (background, positive-nice) in CPU-seconds/s.
    pub nice_baseline: f64,
    /// Mean hypervisor steal fraction of a vCPU.
    pub steal_mean: f64,
    /// Standard deviation of the steal fraction.
    pub steal_std: f64,
    /// Swap traffic (MiB/s) that saturates iowait at 100 %.
    pub iowait_saturation_traffic: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            vcpus: 2.0,
            sys_fraction: 0.18,
            sys_baseline: 0.02,
            nice_baseline: 0.01,
            steal_mean: 0.03,
            steal_std: 0.015,
            iowait_saturation_traffic: 80.0,
        }
    }
}

/// One sampled breakdown; fields are percentages in `[0, 100]` that sum to
/// (approximately) 100 × vcpus normalized to 100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBreakdown {
    /// Userspace CPU %.
    pub user: f64,
    /// Positive-nice userspace CPU %.
    pub nice: f64,
    /// Kernel CPU %.
    pub system: f64,
    /// I/O wait %.
    pub iowait: f64,
    /// Hypervisor steal %.
    pub steal: f64,
    /// Idle %.
    pub idle: f64,
}

impl CpuBreakdown {
    /// Sum of all components (should be ~100).
    pub fn total(&self) -> f64 {
        self.user + self.nice + self.system + self.iowait + self.steal + self.idle
    }
}

/// CPU accounting model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cfg: CpuConfig,
    rng: SimRng,
    /// Demand that could not be served this interval, normalized to vCPUs.
    overload: f64,
}

impl CpuModel {
    /// Create with its own RNG stream for steal jitter.
    pub fn new(cfg: CpuConfig, rng: SimRng) -> Self {
        CpuModel {
            cfg,
            rng,
            overload: 0.0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Compute the breakdown for an interval with the given inputs.
    ///
    /// * `work_demand` — user CPU-seconds per wall second demanded.
    /// * `swap_traffic` — MiB/s of swap I/O.
    /// * `disk_utilization` — data-disk busy fraction in `[0, 1]` (database
    ///   reads the page cache could not serve).
    ///
    /// Percentages are normalized so the six components sum to 100, the way
    /// `top` reports a multi-core machine in aggregate mode.
    pub fn sample(
        &mut self,
        work_demand: f64,
        swap_traffic: f64,
        disk_utilization: f64,
    ) -> CpuBreakdown {
        let capacity = self.cfg.vcpus;

        // Steal comes off the top: the hypervisor services other VMs first.
        let steal_frac = self
            .rng
            .gaussian(self.cfg.steal_mean, self.cfg.steal_std)
            .clamp(0.0, 0.5);
        let steal = steal_frac * capacity;
        let avail = (capacity - steal).max(0.05);

        // iowait: cycles the runnable mix spends blocked on swap I/O or on
        // database reads missing the cache.
        let iow_frac = (swap_traffic / self.cfg.iowait_saturation_traffic
            + 0.5 * disk_utilization.clamp(0.0, 1.0))
        .clamp(0.0, 0.95);
        let iowait = iow_frac * avail;
        let compute_avail = (avail - iowait).max(0.01);

        // Kernel time scales with the user work actually performed plus the
        // reclaim/swap management overhead.
        let demand = work_demand.max(0.0);
        let sys_demand =
            self.cfg.sys_baseline + self.cfg.sys_fraction * demand + 0.004 * swap_traffic;
        let nice_demand = self.cfg.nice_baseline;

        let total_demand = demand + sys_demand + nice_demand;
        let scale = if total_demand > compute_avail {
            compute_avail / total_demand
        } else {
            1.0
        };
        self.overload = ((total_demand - compute_avail) / capacity).max(0.0);

        let user = demand * scale;
        let system = sys_demand * scale;
        let nice = nice_demand * scale;
        let idle = (capacity - steal - iowait - user - system - nice).max(0.0);

        let to_pct = 100.0 / capacity;
        CpuBreakdown {
            user: user * to_pct,
            nice: nice * to_pct,
            system: system * to_pct,
            iowait: iowait * to_pct,
            steal: steal * to_pct,
            idle: idle * to_pct,
        }
    }

    /// Overload factor from the last sample: how much demand exceeded
    /// capacity, normalized to vCPUs. Zero when the guest keeps up.
    pub fn overload(&self) -> f64 {
        self.overload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuModel {
        CpuModel::new(CpuConfig::default(), SimRng::new(42))
    }

    #[test]
    fn breakdown_sums_to_100() {
        let mut m = model();
        for demand in [0.0, 0.5, 1.0, 2.0, 5.0] {
            for traffic in [0.0, 10.0, 60.0, 200.0] {
                for util in [0.0, 0.4, 1.0] {
                    let b = m.sample(demand, traffic, util);
                    assert!(
                        (b.total() - 100.0).abs() < 1e-6,
                        "demand {demand} traffic {traffic} util {util}: total {}",
                        b.total()
                    );
                }
            }
        }
    }

    #[test]
    fn all_components_nonnegative() {
        let mut m = model();
        for _ in 0..200 {
            let b = m.sample(3.0, 150.0, 0.0);
            for v in [b.user, b.nice, b.system, b.iowait, b.steal, b.idle] {
                assert!(v >= 0.0, "negative component in {b:?}");
            }
        }
    }

    #[test]
    fn idle_dominates_an_idle_guest() {
        let mut m = model();
        let b = m.sample(0.0, 0.0, 0.0);
        assert!(b.idle > 85.0, "idle = {}", b.idle);
        assert!(b.user < 5.0);
        assert_eq!(m.overload(), 0.0);
    }

    #[test]
    fn user_grows_with_demand_until_saturation() {
        let mut m = model();
        let low = m.sample(0.3, 0.0, 0.0).user;
        let mid = m.sample(1.0, 0.0, 0.0).user;
        let high = m.sample(1.8, 0.0, 0.0).user;
        assert!(low < mid && mid < high, "{low} {mid} {high}");
        // Saturated guest: idle collapses.
        let sat = m.sample(10.0, 0.0, 0.0);
        assert!(sat.idle < 3.0, "idle = {}", sat.idle);
        assert!(m.overload() > 0.0);
    }

    #[test]
    fn iowait_tracks_disk_utilization() {
        let mut m = model();
        let calm = m.sample(0.5, 0.0, 0.0).iowait;
        let busy_disk = m.sample(0.5, 0.0, 0.8).iowait;
        assert!(
            busy_disk > calm + 20.0,
            "disk misses must show as iowait: calm {calm} busy {busy_disk}"
        );
    }

    #[test]
    fn iowait_tracks_swap_traffic() {
        let mut m = model();
        let calm = m.sample(0.5, 0.0, 0.0).iowait;
        let thrash = m.sample(0.5, 70.0, 0.0).iowait;
        assert!(thrash > calm + 30.0, "calm {calm} thrash {thrash}");
    }

    #[test]
    fn iowait_is_capped() {
        let mut m = model();
        let b = m.sample(0.5, 100_000.0, 0.0);
        assert!(b.iowait <= 96.0, "iowait = {}", b.iowait);
    }

    #[test]
    fn steal_is_stochastic_but_bounded() {
        let mut m = model();
        let steals: Vec<f64> = (0..500).map(|_| m.sample(0.5, 0.0, 0.0).steal).collect();
        let min = steals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = steals.iter().cloned().fold(0.0_f64, f64::max);
        assert!(min >= 0.0);
        assert!(max <= 50.0);
        assert!(max > min, "steal should vary");
        let mean = steals.iter().sum::<f64>() / steals.len() as f64;
        // steal_mean=3% of a vCPU over 2 vCPUs → ~3% of total when expressed
        // against capacity... the model normalizes per-capacity, so expect
        // around 3%.
        assert!((mean - 3.0).abs() < 1.0, "mean steal {mean}");
    }

    #[test]
    fn overload_reflects_queue_growth() {
        let mut m = model();
        m.sample(1.0, 0.0, 0.0);
        let calm = m.overload();
        m.sample(6.0, 0.0, 0.0);
        let over = m.overload();
        assert_eq!(calm, 0.0);
        assert!(over > 1.0, "overload = {over}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CpuModel::new(CpuConfig::default(), SimRng::new(9));
        let mut b = CpuModel::new(CpuConfig::default(), SimRng::new(9));
        for _ in 0..50 {
            assert_eq!(a.sample(1.0, 20.0, 0.0), b.sample(1.0, 20.0, 0.0));
        }
    }
}
