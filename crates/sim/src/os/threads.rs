//! Thread-population model.
//!
//! Tracks the number of threads a `ps -eLf`-style count would report on the
//! guest: the static base population (kernel threads, JVM service threads,
//! Tomcat acceptor/worker pool, MySQL threads), per-request transient
//! workers, and — critically for the paper — *unterminated threads* leaked
//! by the faulty servlet, each of which pins stack memory forever and adds
//! scheduler drag.

/// Static thread-model configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    /// Threads present on an idle, healthy guest.
    pub base_threads: u32,
    /// Worker threads spawned per concurrently active request.
    pub workers_per_request: f64,
    /// Stack memory pinned per leaked thread (MiB). The JVM default
    /// `-Xss512k` matches the paper era.
    pub stack_mib_per_leak: f64,
    /// Scheduler drag: fractional CPU overhead per 1000 leaked threads.
    pub sched_drag_per_1000: f64,
    /// Hard thread limit; reaching it hangs the application.
    pub thread_limit: u32,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig {
            base_threads: 140,
            workers_per_request: 1.0,
            stack_mib_per_leak: 0.5,
            sched_drag_per_1000: 0.25,
            thread_limit: 8000,
        }
    }
}

/// Dynamic thread population.
#[derive(Debug, Clone)]
pub struct ThreadModel {
    cfg: ThreadConfig,
    leaked: u32,
    active_requests: u32,
}

impl ThreadModel {
    /// Fresh guest.
    pub fn new(cfg: ThreadConfig) -> Self {
        ThreadModel {
            cfg,
            leaked: 0,
            active_requests: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ThreadConfig {
        &self.cfg
    }

    /// Record a leaked (unterminated) thread.
    pub fn leak_thread(&mut self) {
        self.leaked = self.leaked.saturating_add(1);
    }

    /// Number of leaked threads so far.
    pub fn leaked(&self) -> u32 {
        self.leaked
    }

    /// Update the number of concurrently active requests.
    pub fn set_active_requests(&mut self, n: u32) {
        self.active_requests = n;
    }

    /// Total visible thread count.
    pub fn total(&self) -> u32 {
        let workers = (self.active_requests as f64 * self.cfg.workers_per_request).ceil() as u32;
        self.cfg
            .base_threads
            .saturating_add(workers)
            .saturating_add(self.leaked)
    }

    /// Stack memory pinned by leaked threads (MiB).
    pub fn leaked_stack_mib(&self) -> f64 {
        self.leaked as f64 * self.cfg.stack_mib_per_leak
    }

    /// CPU drag factor from oversubscribed scheduling: multiply service
    /// times by `1 + drag`.
    pub fn scheduler_drag(&self) -> f64 {
        self.leaked as f64 / 1000.0 * self.cfg.sched_drag_per_1000
    }

    /// Whether the guest hit its thread limit (application hang).
    pub fn at_limit(&self) -> bool {
        self.total() >= self.cfg.thread_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_guest_reports_base_threads() {
        let t = ThreadModel::new(ThreadConfig::default());
        assert_eq!(t.total(), 140);
        assert_eq!(t.leaked(), 0);
        assert_eq!(t.leaked_stack_mib(), 0.0);
        assert!(!t.at_limit());
    }

    #[test]
    fn leaks_accumulate_monotonically() {
        let mut t = ThreadModel::new(ThreadConfig::default());
        for i in 1..=100 {
            t.leak_thread();
            assert_eq!(t.leaked(), i);
        }
        assert_eq!(t.total(), 240);
        assert_eq!(t.leaked_stack_mib(), 50.0);
    }

    #[test]
    fn active_requests_add_workers() {
        let mut t = ThreadModel::new(ThreadConfig::default());
        t.set_active_requests(25);
        assert_eq!(t.total(), 165);
        t.set_active_requests(0);
        assert_eq!(t.total(), 140);
    }

    #[test]
    fn scheduler_drag_scales_with_leaks() {
        let mut t = ThreadModel::new(ThreadConfig::default());
        assert_eq!(t.scheduler_drag(), 0.0);
        for _ in 0..2000 {
            t.leak_thread();
        }
        assert!((t.scheduler_drag() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thread_limit_detection() {
        let cfg = ThreadConfig {
            thread_limit: 150,
            ..ThreadConfig::default()
        };
        let mut t = ThreadModel::new(cfg);
        assert!(!t.at_limit());
        for _ in 0..10 {
            t.leak_thread();
        }
        assert!(t.at_limit());
    }

    #[test]
    fn fractional_workers_round_up() {
        let cfg = ThreadConfig {
            workers_per_request: 0.5,
            ..ThreadConfig::default()
        };
        let mut t = ThreadModel::new(cfg);
        t.set_active_requests(3);
        assert_eq!(t.total(), 142); // ceil(1.5) = 2
    }

    #[test]
    fn saturating_behaviour_at_u32_extremes() {
        let mut t = ThreadModel::new(ThreadConfig::default());
        t.leaked = u32::MAX - 1;
        t.leak_thread();
        t.leak_thread(); // must not overflow
        assert_eq!(t.leaked(), u32::MAX);
        assert!(t.at_limit());
    }
}
