//! The continuous-retraining plane: close the loop from live ingest back
//! to the model artifact store.
//!
//! The serving path predicts with whatever model the [`ModelRegistry`]
//! holds; this module keeps that model *fresh*. A [`RetrainTap`] rides
//! the shard workers (see [`crate::shard`]): every `Datapoint` and `Fail`
//! event they process is offered to a bounded channel with a lossy
//! `try_send`, so the ingest hot path never blocks on training — under
//! overload the tap drops (counted), never the serving pipeline. A
//! background [`RetrainWorker`] drains the tap, reassembles each host's
//! life into a [`RunData`] (a `Fail` closes the run), slides it into a
//! warm [`RetrainEngine`](f2pm::RetrainEngine), and publishes the
//! refreshed LS-SVM through [`ModelStore::publish`] — the same atomic
//! manifest protocol every other publisher uses, so the server's
//! [`StoreWatcher`](crate::StoreWatcher) (or any other instance polling
//! the store) hot-reloads it with zero connection disruption.
//!
//! Separation of duties, on purpose: the worker only *publishes*. It
//! never touches a registry directly — installation stays with the
//! manifest watcher, which already handles corrupted artifacts, rollback
//! and the generation gauge. Killing the worker loses nothing but
//! freshness.
//!
//! Telemetry lands on the process-global `f2pm_obs` registry (the serve
//! exposition appends it, so a v3 scrape carries the retrain plane too):
//!
//! - `f2pm_retrain_runs_total` — completed failing runs ingested;
//! - `f2pm_retrain_total` / `_warm_total` / `_fallback_total` — retrains,
//!   and how many kept the warm factor path vs fell back to an exact
//!   refactorization;
//! - `f2pm_retrain_failures_total` / `f2pm_retrain_publish_failures_total`
//!   — retrains or publishes that errored (the worker keeps going);
//! - `f2pm_retrain_tap_dropped_total` — events the lossy tap shed;
//! - `f2pm_retrain_runs_skipped_total` — runs discarded as unusable
//!   (overflowed assembly buffer or no labeled points);
//! - `f2pm_retrain_published_generation` — the last store generation this
//!   worker published.

use f2pm::{FactorPath, RetrainConfig as EngineConfig, RetrainEngine};
use f2pm_features::aggregate::{aggregate_run, aggregated_column_names_with};
use f2pm_features::AggregationConfig;
use f2pm_ml::persist::SavedModel;
use f2pm_ml::{Metrics, Model, SMaeThreshold};
use f2pm_monitor::{Datapoint, RunData};
use f2pm_registry::{ArtifactMeta, ModelStore};
use std::collections::HashMap;

/// Per-host assembly buffers beyond this many datapoints mark the run
/// unusable (it is skipped at `Fail` instead of trained truncated). Far
/// above any realistic run length; exists to bound worker memory.
pub const MAX_RUN_DATAPOINTS: usize = 100_000;

/// Default bounded capacity of the tap channel.
pub const DEFAULT_TAP_CAP: usize = 8192;

/// One ingest event mirrored off the shard hot path.
pub(crate) enum TapEvent {
    /// A datapoint of `host`'s current life.
    Datapoint {
        /// Originating host.
        host: u32,
        /// The sample.
        d: Datapoint,
    },
    /// `host` failed at time `t`, closing its current run.
    Fail {
        /// Originating host.
        host: u32,
        /// Failure time (s).
        t: f64,
    },
}

/// Lossy, non-blocking feed into the [`RetrainWorker`]. Cloned into every
/// shard worker; offering an event never blocks — when the channel is
/// full the event is dropped and counted, because serving latency always
/// outranks training freshness.
#[derive(Clone)]
pub struct RetrainTap {
    tx: crossbeam::channel::Sender<TapEvent>,
    dropped: f2pm_obs::Counter,
}

impl RetrainTap {
    fn offer(&self, event: TapEvent) {
        if self.tx.try_send(event).is_err() {
            self.dropped.inc();
        }
    }

    /// Mirror one datapoint of `host`'s current life.
    pub(crate) fn offer_datapoint(&self, host: u32, d: Datapoint) {
        self.offer(TapEvent::Datapoint { host, d });
    }

    /// Mirror `host`'s failure at time `t`.
    pub(crate) fn offer_fail(&self, host: u32, t: f64) {
        self.offer(TapEvent::Fail { host, t });
    }
}

/// Configuration of a [`RetrainWorker`].
#[derive(Debug, Clone)]
pub struct RetrainerConfig {
    /// The warm engine's configuration (window length, kernel, λs). Its
    /// aggregation MUST match what the serving registry aggregates with —
    /// the published artifact records it, and a mismatched publish would
    /// swap the server onto a model speaking different columns.
    pub engine: EngineConfig,
    /// Publish only once the window holds at least this many runs
    /// (defaults to the full window).
    pub min_window_runs: usize,
    /// Bounded tap-channel capacity.
    pub queue_cap: usize,
}

impl RetrainerConfig {
    /// Defaults: publish on a full window, [`DEFAULT_TAP_CAP`] tap slots.
    pub fn new(engine: EngineConfig) -> Self {
        let min_window_runs = engine.window_runs;
        RetrainerConfig {
            engine,
            min_window_runs: min_window_runs.max(1),
            queue_cap: DEFAULT_TAP_CAP,
        }
    }
}

/// One host's in-assembly run.
#[derive(Default)]
struct PendingRun {
    points: Vec<Datapoint>,
    /// The assembly buffer overflowed [`MAX_RUN_DATAPOINTS`]; the run is
    /// discarded at `Fail` rather than trained on truncated data.
    overflowed: bool,
}

/// The background retraining worker (see the module docs). Owns one OS
/// thread; exits when every [`RetrainTap`] clone has been dropped (i.e.
/// after the shard pool shuts down).
pub struct RetrainWorker {
    handle: std::thread::JoinHandle<()>,
}

impl RetrainWorker {
    /// Spawn the worker publishing into `store`. Returns the tap to hand
    /// to [`PredictionServer::start_with_tap`](crate::PredictionServer::start_with_tap)
    /// together with the worker handle.
    ///
    /// # Panics
    /// Panics if the engine configuration is invalid (zero window) or the
    /// worker thread cannot be spawned.
    pub fn start(cfg: RetrainerConfig, store: ModelStore) -> (RetrainTap, RetrainWorker) {
        let (tx, rx) = crossbeam::channel::bounded(cfg.queue_cap.max(1));
        let tap = RetrainTap {
            tx,
            dropped: f2pm_obs::global().counter("f2pm_retrain_tap_dropped_total"),
        };
        let handle = std::thread::Builder::new()
            .name("f2pm-retrain".to_string())
            .spawn(move || worker_loop(rx, cfg, store))
            .expect("spawn retrain worker");
        (tap, RetrainWorker { handle })
    }

    /// Wait for the worker to drain and exit. Call after the server (and
    /// with it every tap clone) has shut down; joining earlier blocks
    /// until the taps drop.
    pub fn join(self) {
        self.handle.join().ok();
    }
}

/// Handles into the global registry, grabbed once at spawn.
struct RetrainMetrics {
    runs: f2pm_obs::Counter,
    runs_skipped: f2pm_obs::Counter,
    retrains: f2pm_obs::Counter,
    warm: f2pm_obs::Counter,
    fallback: f2pm_obs::Counter,
    failures: f2pm_obs::Counter,
    publish_failures: f2pm_obs::Counter,
    published_generation: f2pm_obs::Gauge,
    window_runs: f2pm_obs::Gauge,
}

impl RetrainMetrics {
    fn new() -> Self {
        let g = f2pm_obs::global();
        RetrainMetrics {
            runs: g.counter("f2pm_retrain_runs_total"),
            runs_skipped: g.counter("f2pm_retrain_runs_skipped_total"),
            retrains: g.counter("f2pm_retrain_total"),
            warm: g.counter("f2pm_retrain_warm_total"),
            fallback: g.counter("f2pm_retrain_fallback_total"),
            failures: g.counter("f2pm_retrain_failures_total"),
            publish_failures: g.counter("f2pm_retrain_publish_failures_total"),
            published_generation: g.gauge("f2pm_retrain_published_generation"),
            window_runs: g.gauge("f2pm_retrain_window_runs"),
        }
    }
}

fn worker_loop(
    rx: crossbeam::channel::Receiver<TapEvent>,
    cfg: RetrainerConfig,
    store: ModelStore,
) {
    let metrics = RetrainMetrics::new();
    let mut engine = RetrainEngine::new(cfg.engine.clone());
    let mut pending: HashMap<u32, PendingRun> = HashMap::new();
    while let Ok(event) = rx.recv() {
        match event {
            TapEvent::Datapoint { host, d } => {
                let run = pending.entry(host).or_default();
                if run.points.len() >= MAX_RUN_DATAPOINTS {
                    run.overflowed = true;
                } else {
                    run.points.push(d);
                }
            }
            TapEvent::Fail { host, t } => {
                let Some(run) = pending.remove(&host) else {
                    continue;
                };
                if run.overflowed || run.points.is_empty() {
                    metrics.runs_skipped.inc();
                    continue;
                }
                let run = RunData {
                    datapoints: run.points,
                    fail_time: Some(t),
                };
                engine.push_run(&run);
                metrics.runs.inc();
                metrics.window_runs.set_u64(engine.window_runs() as u64);
                if engine.window_runs() < cfg.min_window_runs {
                    continue;
                }
                retrain_and_publish(&mut engine, &run, &store, &metrics);
            }
        }
    }
}

/// One retrain → publish cycle. Failures are counted and swallowed: the
/// current model keeps serving, and the next completed run retries.
fn retrain_and_publish(
    engine: &mut RetrainEngine,
    newest_run: &RunData,
    store: &ModelStore,
    metrics: &RetrainMetrics,
) {
    let agg = engine.config().aggregation;
    let outcome = match engine.retrain() {
        Ok(outcome) => outcome,
        Err(f2pm::F2pmError::NotEnoughData { .. }) => return,
        Err(_) => {
            metrics.failures.inc();
            return;
        }
    };
    metrics.retrains.inc();
    if outcome.lssvm_path == FactorPath::Warm {
        metrics.warm.inc();
    }
    if outcome.lssvm_path == FactorPath::Fallback || outcome.ridge_path == FactorPath::Fallback {
        metrics.fallback.inc();
    }
    let meta = ArtifactMeta::new(
        "ls_svm",
        agg,
        aggregated_column_names_with(&agg),
        run_train_smae(&outcome.model, newest_run, &agg),
    );
    match store.publish(&meta, &SavedModel::LsSvm(outcome.model)) {
        Ok(generation) => metrics.published_generation.set_u64(generation),
        Err(_) => metrics.publish_failures.inc(),
    }
}

/// In-sample S-MAE of the fresh model over the newest run's labeled
/// aggregated points — the cheap freshness proxy recorded as the
/// artifact's `train_smae`. `NaN` when the run aggregates to no labeled
/// point (metadata contract for "unknown").
fn run_train_smae(model: &dyn Model, run: &RunData, agg: &AggregationConfig) -> f64 {
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    for p in aggregate_run(run, agg) {
        if let Some(rttf) = p.rttf {
            predicted.push(model.predict_row(&p.inputs_with(agg)));
            actual.push(rttf);
        }
    }
    if actual.is_empty() {
        return f64::NAN;
    }
    Metrics::compute(&predicted, &actual, SMaeThreshold::paper_default()).smae
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_monitor::FeatureId;
    use std::time::{Duration, Instant};

    fn temp_store(tag: &str) -> (std::path::PathBuf, ModelStore) {
        let dir = std::env::temp_dir().join(format!("f2pm_retrain_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ModelStore::open(&dir).unwrap();
        (dir, store)
    }

    fn agg() -> AggregationConfig {
        AggregationConfig {
            window_s: 30.0,
            min_points: 2,
            ..AggregationConfig::default()
        }
    }

    fn engine_cfg(window_runs: usize) -> EngineConfig {
        EngineConfig {
            aggregation: agg(),
            ..EngineConfig::new(window_runs)
        }
    }

    fn dp(t: f64, seed: u64) -> Datapoint {
        // Deterministic per-(t, seed) variation so the standardized
        // columns are not degenerate.
        let mut d = Datapoint {
            t_gen: t,
            values: [1.0; 14],
        };
        for (j, v) in d.values.iter_mut().enumerate() {
            *v = 1.0 + 0.01 * t * (1.0 + j as f64 * 0.1) + (seed as f64 * 0.37 + j as f64).sin();
        }
        d.set(FeatureId::SwapUsed, 2.0 * t + (seed as f64).sin());
        d
    }

    /// Stream one synthetic failing run for `host` through the tap:
    /// datapoints every 5 s over [0, 200) and a fail at 205 s → six 30 s
    /// windows, all labeled.
    fn stream_run(tap: &RetrainTap, host: u32, seed: u64) {
        let mut t = 0.0;
        while t < 200.0 {
            tap.offer_datapoint(host, dp(t, seed));
            t += 5.0;
        }
        tap.offer_fail(host, 205.0);
    }

    fn wait_generation(store: &ModelStore, at_least: u64) -> u64 {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(g)) = store.active_generation() {
                if g >= at_least {
                    return g;
                }
            }
            assert!(
                Instant::now() < deadline,
                "store never reached generation {at_least}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn worker_publishes_lssvm_artifacts_as_runs_complete() {
        let (dir, store) = temp_store("publish");
        let cfg = RetrainerConfig::new(engine_cfg(2));
        let (tap, worker) = RetrainWorker::start(cfg, ModelStore::open(&dir).unwrap());

        // One run is below min_window_runs → nothing published yet.
        stream_run(&tap, 1, 0);
        // Second run fills the window → first (cold) publish; later runs
        // slide the window → warm publishes.
        stream_run(&tap, 1, 1);
        let g1 = wait_generation(&store, 1);
        stream_run(&tap, 1, 2);
        let g2 = wait_generation(&store, g1 + 1);
        assert!(g2 > g1);

        let (_, meta, saved) = store.load_active().unwrap().unwrap();
        assert_eq!(meta.method, "ls_svm");
        assert_eq!(saved.kind(), "ls_svm");
        assert_eq!(meta.columns, aggregated_column_names_with(&agg()));
        assert_eq!(meta.agg.window_s, agg().window_s);
        assert!(
            meta.train_smae.is_finite(),
            "in-sample S-MAE recorded, got {}",
            meta.train_smae
        );

        drop(tap);
        worker.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_interleave_per_host_and_empty_or_unknown_fails_are_ignored() {
        let (dir, store) = temp_store("interleave");
        let cfg = RetrainerConfig::new(engine_cfg(2));
        let (tap, worker) = RetrainWorker::start(cfg, ModelStore::open(&dir).unwrap());

        // A fail for a host the worker never saw a datapoint of: ignored.
        tap.offer_fail(99, 50.0);
        // Two hosts interleaved: each closes its own run; two completed
        // runs fill the window and publish.
        let mut t = 0.0;
        while t < 200.0 {
            tap.offer_datapoint(7, dp(t, 10));
            tap.offer_datapoint(8, dp(t, 11));
            t += 5.0;
        }
        tap.offer_fail(7, 205.0);
        tap.offer_fail(8, 205.0);
        wait_generation(&store, 1);

        drop(tap);
        worker.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_tap_drops_instead_of_blocking() {
        let (dir, _store) = temp_store("drop");
        let dropped = f2pm_obs::global().counter("f2pm_retrain_tap_dropped_total");
        let before = dropped.get();
        let mut cfg = RetrainerConfig::new(engine_cfg(2));
        cfg.queue_cap = 1;
        // Worker never started: nothing drains the 1-slot channel, so the
        // second offer must drop, not block.
        let (tx, _rx) = crossbeam::channel::bounded(cfg.queue_cap);
        let tap = RetrainTap {
            tx,
            dropped: dropped.clone(),
        };
        tap.offer_datapoint(1, dp(0.0, 0));
        tap.offer_datapoint(1, dp(1.0, 0));
        tap.offer_fail(1, 2.0);
        assert_eq!(dropped.get() - before, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_smae_is_nan_without_labeled_points() {
        let model = f2pm_ml::linreg::LinearModel {
            intercept: 0.0,
            coefficients: vec![0.0; 30],
        };
        let run = RunData {
            datapoints: vec![dp(0.0, 0)],
            fail_time: None, // censored → no labels
        };
        assert!(run_train_smae(&model, &run, &agg()).is_nan());
    }
}
