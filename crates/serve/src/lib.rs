//! # f2pm-serve
//!
//! The online serving side of the F2PM reproduction: a multi-tenant RTTF
//! prediction service. Where the FMS of `f2pm-monitor` passively collects
//! training data, this crate *answers* — many monitored hosts stream
//! datapoints in, and the server keeps a live Remaining-Time-To-Failure
//! estimate per host, pushes rejuvenation alerts when an estimate stays
//! under the safety threshold, and exposes a metrics snapshot over the
//! same wire protocol (v2) plus a full Prometheus-style text exposition
//! (v3 `MetricsRequest` → `MetricsText`, scraped by `f2pm stats`).
//!
//! Architecture (see `DESIGN.md` §8):
//!
//! - **[`server`]** — the connection edge. On Linux the default is an
//!   epoll [`reactor`] pool (N event-loop threads, each owning a slab of
//!   nonblocking connections — 10k+ concurrent FMC clients per instance);
//!   `reactors: 0` (or non-Linux) falls back to the original accept loop
//!   with one reader thread per connection. v1 clients keep working
//!   untouched on both edges.
//! - **[`shard`]** — hosts are pinned to shard workers over bounded
//!   crossbeam channels (blocking send = backpressure, zero drops); each
//!   worker owns its hosts' `OnlinePredictor` state lock-free.
//! - **[`registry`]** — hot-reloadable model storage: an atomic `Arc`
//!   swap re-points every host's next prediction at the new model without
//!   dropping connections or window state.
//! - **[`retrain`]** — the continuous-retraining plane: a lossy tap off
//!   the shard workers feeds a background worker that reassembles each
//!   host's life into runs, slides them through a warm
//!   `f2pm::RetrainEngine`, and publishes every refreshed LS-SVM back
//!   through the artifact store for the manifest watcher to hot-reload.
//! - **[`fleet`]** — the fleet plane (wire v4): a consistent-hash
//!   [`HashRing`] routes hosts across N serve instances, and the
//!   [`Fleet`] aggregator fans `TopKRequest`/`StatsRequest`/metrics
//!   scrapes out to every instance, merging them into a cluster-wide
//!   at-risk ranking, a [`FleetStats`] rollup, and one summed exposition.
//! - **[`metrics`]** — serving counters, gauges, and the power-of-two
//!   prediction-latency histogram, all registered on a per-server
//!   `f2pm_obs::MetricsRegistry`; `expose_text` renders it with the
//!   process-global registry (training-stage spans, FMC/FMS transport
//!   counters) appended.

#![warn(missing_docs)]

pub mod fleet;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poller;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod registry;
pub mod retrain;
pub mod server;
pub mod shard;

pub use fleet::{
    Fleet, FleetStats, FleetTopKEntry, HashRing, InstanceClient, InstanceSnapshot,
    VNODES_PER_INSTANCE,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use registry::{ModelEntry, ModelRegistry, StoreWatcher};
pub use retrain::{RetrainTap, RetrainWorker, RetrainerConfig};
pub use server::{default_reactors, PredictionServer, ServeConfig, ServeHandle};
pub use shard::{
    AlertPolicy, ClientWriter, EstimateBoard, PublishedEstimate, ShardEvent, ShardPool,
};
