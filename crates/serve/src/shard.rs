//! Shard workers: per-host prediction state behind bounded queues.
//!
//! The seed FMS funnels every connection into one `Mutex<DataHistory>`;
//! fine for passive collection, but an online predictor does real work per
//! datapoint (window aggregation + model evaluation), so a global lock
//! would serialize the whole fleet. The serve path shards instead:
//!
//! ```text
//! reader threads ──bounded channel──▶ shard worker 0 ─┐
//!       (decode)  ──bounded channel──▶ shard worker 1 ─┼─▶ estimate board
//!                 ──bounded channel──▶ shard worker N ─┘   + pushed alerts
//! ```
//!
//! A host is pinned to shard `host % n_shards`, so all of its events are
//! processed in order by a single worker and per-host state needs no
//! locking at all. The channels are *bounded* and readers use *blocking*
//! sends: a slow shard applies backpressure through TCP instead of
//! dropping frames.

use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use f2pm::{OnlinePredictor, RejuvenationPolicy};
use f2pm_monitor::wire::Message;
use f2pm_monitor::Datapoint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// When a shard worker pushes a rejuvenation [`Message::Alert`].
#[derive(Debug, Clone, Copy)]
pub struct AlertPolicy {
    /// Alert when predicted RTTF ≤ this threshold (s).
    pub rttf_threshold_s: f64,
    /// Require this many consecutive below-threshold estimates (debounce
    /// against single-window noise).
    pub consecutive_hits: usize,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        RejuvenationPolicy::default().into()
    }
}

impl From<RejuvenationPolicy> for AlertPolicy {
    fn from(p: RejuvenationPolicy) -> Self {
        AlertPolicy {
            rttf_threshold_s: p.rttf_threshold_s,
            consecutive_hits: p.consecutive_hits,
        }
    }
}

/// A cloneable, frame-atomic writer to one client connection. The mutex
/// guarantees a pushed alert from a shard worker and a reply from the
/// reader thread never interleave bytes inside a frame.
#[derive(Clone)]
pub struct ClientWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl ClientWriter {
    /// Wrap a connection's write half.
    pub fn new(stream: TcpStream) -> Self {
        ClientWriter {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Write one whole frame under the lock.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        let frame = msg.encode();
        let mut stream = self.stream.lock();
        stream.write_all(&frame)
    }
}

/// Latest published estimate of one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedEstimate {
    /// Guest time (s) of the window that produced it.
    pub t: f64,
    /// The RTTF estimate (s).
    pub rttf: f64,
    /// Generation of the model that produced it.
    pub generation: u64,
}

/// Last-estimate board: shard workers publish, reader threads answer
/// `PredictRequest`s from it without touching worker state. Striped by
/// host so readers of different hosts rarely contend.
pub struct EstimateBoard {
    stripes: Vec<Mutex<HashMap<u32, PublishedEstimate>>>,
}

impl EstimateBoard {
    fn new(stripes: usize) -> Self {
        EstimateBoard {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn stripe(&self, host: u32) -> &Mutex<HashMap<u32, PublishedEstimate>> {
        &self.stripes[host as usize % self.stripes.len()]
    }

    /// Publish `host`'s newest estimate.
    pub fn publish(&self, host: u32, est: PublishedEstimate) {
        self.stripe(host).lock().insert(host, est);
    }

    /// The newest estimate of `host`, if any window has closed.
    pub fn get(&self, host: u32) -> Option<PublishedEstimate> {
        self.stripe(host).lock().get(&host).copied()
    }

    /// Forget `host` (its life ended; stale estimates must not leak into
    /// the next life).
    pub fn clear(&self, host: u32) {
        self.stripe(host).lock().remove(&host);
    }
}

/// One event routed to a shard worker.
pub enum ShardEvent {
    /// A datapoint from `host` to fold into its prediction window.
    Datapoint {
        /// Originating host.
        host: u32,
        /// The sample.
        d: Datapoint,
    },
    /// `host` met the failure condition at time `t`; its predictor state
    /// and published estimate reset for the next life.
    Fail {
        /// Originating host.
        host: u32,
        /// Failure time (s).
        t: f64,
    },
    /// A v2 connection wants pushed alerts for `host`.
    Subscribe {
        /// Subscribing host.
        host: u32,
        /// Where to push alerts.
        writer: ClientWriter,
    },
    /// `host`'s connection closed; stop pushing alerts.
    Unsubscribe {
        /// Unsubscribing host.
        host: u32,
    },
}

/// Per-host worker state (owned by exactly one shard worker — no locks).
struct HostState {
    predictor: OnlinePredictor,
    /// Consecutive below-threshold estimates so far.
    hits: usize,
    /// Alert sink of the host's live v2 connection, if any.
    writer: Option<ClientWriter>,
}

impl HostState {
    fn new(registry: &Arc<ModelRegistry>) -> Self {
        HostState {
            predictor: OnlinePredictor::new(
                registry.shared_model(),
                registry.columns(),
                registry.agg(),
            ),
            hits: 0,
            writer: None,
        }
    }
}

/// The shard workers plus their input queues.
pub struct ShardPool {
    senders: Vec<crossbeam::channel::Sender<ShardEvent>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    board: Arc<EstimateBoard>,
}

impl ShardPool {
    /// Spawn `n_shards` workers, each behind a bounded queue of
    /// `queue_cap` events.
    pub fn start(
        n_shards: usize,
        queue_cap: usize,
        registry: Arc<ModelRegistry>,
        policy: AlertPolicy,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let n_shards = n_shards.max(1);
        let board = Arc::new(EstimateBoard::new(n_shards * 4));
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let (tx, rx) = crossbeam::channel::bounded(queue_cap.max(1));
            senders.push(tx);
            let registry = Arc::clone(&registry);
            let board = Arc::clone(&board);
            let events = metrics.shard_events(shard);
            let metrics = Arc::clone(&metrics);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("f2pm-shard-{shard}"))
                    .spawn(move || worker_loop(rx, registry, policy, board, metrics, events))
                    .expect("spawn shard worker"),
            );
        }
        ShardPool {
            senders,
            workers,
            board,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Route one event to `host`'s shard, blocking while its queue is full
    /// (backpressure, never drops). Errors only if the worker died.
    pub fn send(&self, host: u32, event: ShardEvent) -> io::Result<()> {
        let shard = host as usize % self.senders.len();
        self.senders[shard]
            .send(event)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard worker gone"))
    }

    /// Current queue depth per shard.
    pub fn queue_depths(&self) -> Vec<u32> {
        self.senders.iter().map(|s| s.len() as u32).collect()
    }

    /// The shared last-estimate board.
    pub fn board(&self) -> Arc<EstimateBoard> {
        Arc::clone(&self.board)
    }

    /// Drop the queues and wait for every worker to drain and exit.
    pub fn shutdown(self) {
        drop(self.senders);
        for w in self.workers {
            w.join().ok();
        }
    }
}

fn worker_loop(
    rx: crossbeam::channel::Receiver<ShardEvent>,
    registry: Arc<ModelRegistry>,
    policy: AlertPolicy,
    board: Arc<EstimateBoard>,
    metrics: Arc<ServeMetrics>,
    events: f2pm_obs::Counter,
) {
    let mut hosts: HashMap<u32, HostState> = HashMap::new();
    while let Ok(event) = rx.recv() {
        events.inc();
        match event {
            ShardEvent::Datapoint { host, d } => {
                let state = hosts
                    .entry(host)
                    .or_insert_with(|| HostState::new(&registry));
                let t = d.t_gen;
                let started = Instant::now();
                if let Some(rttf) = state.predictor.push(d) {
                    metrics.estimate(started.elapsed());
                    board.publish(
                        host,
                        PublishedEstimate {
                            t,
                            rttf,
                            generation: registry.generation(),
                        },
                    );
                    evaluate_alert(host, t, rttf, state, policy, &metrics);
                }
            }
            ShardEvent::Fail { host, t: _ } => {
                // A new life starts: window state and debounce reset, and
                // the stale estimate leaves the board.
                if let Some(state) = hosts.get_mut(&host) {
                    state.predictor.reset();
                    state.hits = 0;
                }
                board.clear(host);
            }
            ShardEvent::Subscribe { host, writer } => {
                hosts
                    .entry(host)
                    .or_insert_with(|| HostState::new(&registry))
                    .writer = Some(writer);
            }
            ShardEvent::Unsubscribe { host } => {
                if let Some(state) = hosts.get_mut(&host) {
                    state.writer = None;
                }
            }
        }
    }
}

fn evaluate_alert(
    host: u32,
    t: f64,
    rttf: f64,
    state: &mut HostState,
    policy: AlertPolicy,
    metrics: &ServeMetrics,
) {
    if rttf > policy.rttf_threshold_s {
        state.hits = 0;
        return;
    }
    state.hits += 1;
    if state.hits < policy.consecutive_hits {
        return;
    }
    state.hits = 0;
    metrics.alert();
    if let Some(writer) = &state.writer {
        let alert = Message::Alert {
            host_id: host,
            t,
            rttf,
            threshold: policy.rttf_threshold_s,
        };
        if writer.send(&alert).is_err() {
            // Client went away mid-push; the reader thread will
            // unsubscribe, we just stop writing into the broken pipe.
            state.writer = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::AggregationConfig;
    use f2pm_ml::linreg::LinearModel;
    use f2pm_ml::persist::SavedModel;
    use f2pm_monitor::FeatureId;
    use std::time::Duration;

    /// rttf = 1000 − 2 × swap_used, over a 30 s / 2-point window.
    fn test_registry() -> Arc<ModelRegistry> {
        ModelRegistry::new(
            SavedModel::Linear(LinearModel {
                intercept: 1000.0,
                coefficients: vec![-2.0, 0.0],
            }),
            vec!["swap_used".to_string(), "swap_used_slope".to_string()],
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        )
        .unwrap()
    }

    fn dp(t: f64, swap: f64) -> Datapoint {
        let mut d = Datapoint {
            t_gen: t,
            values: [1.0; 14],
        };
        d.set(FeatureId::SwapUsed, swap);
        d
    }

    fn wait_for<F: Fn() -> bool>(cond: F) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("condition not reached in time");
    }

    #[test]
    fn hosts_keep_isolated_estimates_across_shards() {
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            2,
            64,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let board = pool.board();
        // Interleave three hosts at different swap levels; windows close
        // every 30 s of guest time.
        for i in 0..30 {
            let t = i as f64 * 5.0;
            for (host, swap) in [(1u32, 100.0), (2, 200.0), (7, 300.0)] {
                pool.send(
                    host,
                    ShardEvent::Datapoint {
                        host,
                        d: dp(t, swap),
                    },
                )
                .unwrap();
            }
        }
        wait_for(|| [1u32, 2, 7].iter().all(|&h| board.get(h).is_some()));
        assert_eq!(board.get(1).unwrap().rttf, 800.0);
        assert_eq!(board.get(2).unwrap().rttf, 600.0);
        assert_eq!(board.get(7).unwrap().rttf, 400.0);
        assert_eq!(board.get(1).unwrap().generation, 1);
        assert!(board.get(99).is_none());
        pool.shutdown();
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.estimates >= 3);
        assert_eq!(snap.alerts, 0, "all estimates far above threshold");
    }

    #[test]
    fn fail_resets_host_state_and_board() {
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            1,
            64,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let board = pool.board();
        for i in 0..10 {
            pool.send(
                4,
                ShardEvent::Datapoint {
                    host: 4,
                    d: dp(i as f64 * 5.0, 100.0),
                },
            )
            .unwrap();
        }
        wait_for(|| board.get(4).is_some());
        pool.send(4, ShardEvent::Fail { host: 4, t: 50.0 }).unwrap();
        wait_for(|| board.get(4).is_none());
        pool.shutdown();
    }

    #[test]
    fn alert_fires_after_consecutive_hits_only() {
        let metrics = Arc::new(ServeMetrics::new());
        let policy = AlertPolicy {
            rttf_threshold_s: 180.0,
            consecutive_hits: 2,
        };
        let pool = ShardPool::start(1, 64, test_registry(), policy, Arc::clone(&metrics));
        // swap 450 → rttf 100 ≤ 180: every closed window is a hit. Close
        // enough windows for ≥ 2 consecutive hits.
        for i in 0..30 {
            pool.send(
                5,
                ShardEvent::Datapoint {
                    host: 5,
                    d: dp(i as f64 * 5.0, 450.0),
                },
            )
            .unwrap();
        }
        wait_for(|| metrics.snapshot(vec![], 1).alerts >= 1);
        pool.shutdown();
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.alerts >= 1);
        // Debounce: one alert per `consecutive_hits` window closures, so
        // alerts ≤ estimates / 2.
        assert!(snap.alerts <= snap.estimates / 2, "{snap:?}");
    }

    #[test]
    fn blocking_send_applies_backpressure_without_loss() {
        let metrics = Arc::new(ServeMetrics::new());
        // Tiny queue, one shard: the sender must block, not drop.
        let pool = ShardPool::start(
            1,
            2,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let n = 500u64;
        for i in 0..n {
            pool.send(
                0,
                ShardEvent::Datapoint {
                    host: 0,
                    d: dp(i as f64, 100.0),
                },
            )
            .unwrap();
        }
        pool.shutdown(); // joins after the queue fully drains
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.estimates > 0);
        assert_eq!(snap.dropped, 0);
    }
}
