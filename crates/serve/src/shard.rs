//! Shard workers: per-host prediction state behind bounded queues.
//!
//! The seed FMS funnels every connection into one `Mutex<DataHistory>`;
//! fine for passive collection, but an online predictor does real work per
//! datapoint (window aggregation + model evaluation), so a global lock
//! would serialize the whole fleet. The serve path shards instead:
//!
//! ```text
//! reader threads ──bounded channel──▶ shard worker 0 ─┐
//!       (decode)  ──bounded channel──▶ shard worker 1 ─┼─▶ estimate board
//!                 ──bounded channel──▶ shard worker N ─┘   + pushed alerts
//! ```
//!
//! A host is pinned to shard `host % n_shards`, so all of its events are
//! processed in order by a single worker and per-host state needs no
//! locking at all. The channels are *bounded* and readers use *blocking*
//! sends: a slow shard applies backpressure through TCP instead of
//! dropping frames.

use crate::metrics::ServeMetrics;
use crate::registry::{ModelEntry, ModelRegistry};
use bytes::BytesMut;
use f2pm::{predict_many, OnlinePredictor, RejuvenationPolicy};
use f2pm_monitor::wire::Message;
use f2pm_monitor::Datapoint;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// When a shard worker pushes a rejuvenation [`Message::Alert`].
#[derive(Debug, Clone, Copy)]
pub struct AlertPolicy {
    /// Alert when predicted RTTF ≤ this threshold (s).
    pub rttf_threshold_s: f64,
    /// Require this many consecutive below-threshold estimates (debounce
    /// against single-window noise).
    pub consecutive_hits: usize,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        RejuvenationPolicy::default().into()
    }
}

impl From<RejuvenationPolicy> for AlertPolicy {
    fn from(p: RejuvenationPolicy) -> Self {
        AlertPolicy {
            rttf_threshold_s: p.rttf_threshold_s,
            consecutive_hits: p.consecutive_hits,
        }
    }
}

/// A cloneable, frame-atomic writer to one client connection.
///
/// Two sinks hide behind the same API so shard workers never know which
/// edge owns the socket:
///
/// - **Threaded edge**: a blocking `TcpStream` under a mutex. The lock
///   guarantees a pushed alert from a shard worker and a reply from the
///   reader thread never interleave bytes inside a frame; the encode
///   scratch lives under the same lock, so steady-state sends allocate
///   nothing and a multi-frame [`ClientWriter::send_all`] coalesces into
///   one `write_all` (one syscall) instead of a syscall per frame.
/// - **Reactor edge** (Linux): frames are appended to the connection's
///   bounded outbound buffer and the owning reactor is woken via eventfd
///   to flush them nonblockingly. A send that would exceed the bound
///   marks the connection dead (slow-consumer eviction) and errors, so
///   the worker unsubscribes exactly as it does on a broken pipe.
#[derive(Clone)]
pub struct ClientWriter {
    imp: Arc<WriterImpl>,
}

enum WriterImpl {
    Stream(Mutex<WriterInner>),
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorSink),
}

struct WriterInner {
    stream: TcpStream,
    scratch: BytesMut,
}

impl ClientWriter {
    /// Wrap a connection's write half (blocking, threaded edge).
    pub fn new(stream: TcpStream) -> Self {
        ClientWriter {
            imp: Arc::new(WriterImpl::Stream(Mutex::new(WriterInner {
                stream,
                scratch: BytesMut::new(),
            }))),
        }
    }

    /// Wrap a reactor connection's outbound buffer (nonblocking edge).
    #[cfg(target_os = "linux")]
    pub(crate) fn from_reactor(sink: crate::reactor::ReactorSink) -> Self {
        ClientWriter {
            imp: Arc::new(WriterImpl::Reactor(sink)),
        }
    }

    /// Write one whole frame.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        self.send_all(std::slice::from_ref(msg))
    }

    /// Write every frame contiguously (no interleaving with other
    /// senders), with one lock acquisition and one syscall/wakeup.
    pub fn send_all(&self, msgs: &[Message]) -> io::Result<()> {
        if msgs.is_empty() {
            return Ok(());
        }
        match &*self.imp {
            WriterImpl::Stream(inner) => {
                let mut inner = inner.lock();
                let inner = &mut *inner;
                inner.scratch.clear();
                for msg in msgs {
                    msg.encode_into(&mut inner.scratch);
                }
                inner.stream.write_all(&inner.scratch)
            }
            #[cfg(target_os = "linux")]
            WriterImpl::Reactor(sink) => sink.send_all(msgs),
        }
    }
}

/// Latest published estimate of one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedEstimate {
    /// Guest time (s) of the window that produced it.
    pub t: f64,
    /// The RTTF estimate (s).
    pub rttf: f64,
    /// Generation of the model that produced it.
    pub generation: u64,
}

/// Seqlock slot holding one host's latest estimate.
///
/// `seq` is 0 while the slot is empty, odd while its (single) writer is
/// mid-update, and a new even value after each publish. Readers snapshot
/// the three payload words and retry when `seq` changed underneath them —
/// so a `PredictRequest` reply never sees `t` from one window paired with
/// `rttf` from another, yet takes no lock at all on the hot read path.
///
/// Single-writer is structural, not policed: a host is pinned to one shard
/// worker, and only that worker publishes or clears it.
struct Slot {
    seq: AtomicU64,
    t_bits: AtomicU64,
    rttf_bits: AtomicU64,
    generation: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            t_bits: AtomicU64::new(0),
            rttf_bits: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Single-writer publish: mark odd, store payload, mark even.
    fn store(&self, est: PublishedEstimate) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s | 1, Ordering::Release);
        self.t_bits.store(est.t.to_bits(), Ordering::Release);
        self.rttf_bits.store(est.rttf.to_bits(), Ordering::Release);
        self.generation.store(est.generation, Ordering::Release);
        self.seq.store((s | 1) + 1, Ordering::Release);
    }

    fn load(&self) -> Option<PublishedEstimate> {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None; // never published
            }
            if s1 & 1 == 1 {
                std::hint::spin_loop(); // writer mid-update (4 stores)
                continue;
            }
            let est = PublishedEstimate {
                t: f64::from_bits(self.t_bits.load(Ordering::Acquire)),
                rttf: f64::from_bits(self.rttf_bits.load(Ordering::Acquire)),
                generation: self.generation.load(Ordering::Acquire),
            };
            if self.seq.load(Ordering::Acquire) == s1 {
                return Some(est);
            }
            std::hint::spin_loop();
        }
    }
}

/// Last-estimate board: shard workers publish, reader threads answer
/// `PredictRequest`s from it without touching worker state.
///
/// Read-mostly by design: a host's slot is found through a striped
/// `RwLock` map (shared read access — concurrent readers and the
/// publishing worker never exclude each other once the slot exists) and
/// its payload is read through a [`Slot`] seqlock, so the steady-state
/// `get` takes zero exclusive locks. Writes to the map itself happen only
/// on a host's *first* estimate (slot insert) and on `Fail` (slot
/// removal) — both rare.
pub struct EstimateBoard {
    stripes: Vec<RwLock<HashMap<u32, Arc<Slot>>>>,
}

impl EstimateBoard {
    fn new(stripes: usize) -> Self {
        EstimateBoard {
            stripes: (0..stripes.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn stripe(&self, host: u32) -> &RwLock<HashMap<u32, Arc<Slot>>> {
        &self.stripes[host as usize % self.stripes.len()]
    }

    /// Publish `host`'s newest estimate (called only by the host's shard
    /// worker — the seqlock's single-writer invariant).
    pub fn publish(&self, host: u32, est: PublishedEstimate) {
        let stripe = self.stripe(host);
        let existing = stripe.read().get(&host).cloned(); // read guard dropped here
        let slot = existing.unwrap_or_else(|| {
            Arc::clone(
                stripe
                    .write()
                    .entry(host)
                    .or_insert_with(|| Arc::new(Slot::empty())),
            )
        });
        slot.store(est);
    }

    /// The newest estimate of `host`, if any window has closed. Lock-free
    /// past the shared-read map lookup.
    pub fn get(&self, host: u32) -> Option<PublishedEstimate> {
        let slot = Arc::clone(self.stripe(host).read().get(&host)?);
        slot.load()
    }

    /// Forget `host` (its life ended; stale estimates must not leak into
    /// the next life).
    pub fn clear(&self, host: u32) {
        self.stripe(host).write().remove(&host);
    }

    /// Hosts currently holding a slot (published at least once, not yet
    /// cleared by a `Fail`).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when no host has a published estimate.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().is_empty())
    }

    /// The `k` hosts nearest failure (lowest published RTTF, ties broken by
    /// host id for a deterministic order), each with its latest estimate.
    ///
    /// This is how a v4 `TopKRequest` is answered: one shared-read pass
    /// over the stripes and a seqlock load per slot — live connections are
    /// never scanned and no worker is stalled. The ranking is a consistent
    /// snapshot per-host (the seqlock guarantees un-torn estimates), not
    /// across hosts — exactly the semantics a fleet ranking needs.
    pub fn top_k(&self, k: usize) -> Vec<(u32, PublishedEstimate)> {
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(u32, PublishedEstimate)> = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.read();
            for (&host, slot) in map.iter() {
                if let Some(est) = slot.load() {
                    all.push((host, est));
                }
            }
        }
        all.sort_by(|(ha, a), (hb, b)| {
            a.rttf
                .partial_cmp(&b.rttf)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| ha.cmp(hb))
        });
        all.truncate(k);
        all
    }
}

/// One event routed to a shard worker.
pub enum ShardEvent {
    /// A datapoint from `host` to fold into its prediction window.
    Datapoint {
        /// Originating host.
        host: u32,
        /// The sample.
        d: Datapoint,
        /// When the reader thread enqueued it (feeds the per-shard
        /// queue-wait histogram, the "queue" stage of the latency
        /// breakdown).
        enqueued: Instant,
    },
    /// `host` met the failure condition at time `t`; its predictor state
    /// and published estimate reset for the next life.
    Fail {
        /// Originating host.
        host: u32,
        /// Failure time (s).
        t: f64,
    },
    /// A v2 connection wants pushed alerts for `host`.
    Subscribe {
        /// Subscribing host.
        host: u32,
        /// Where to push alerts.
        writer: ClientWriter,
    },
    /// `host`'s connection closed; stop pushing alerts.
    Unsubscribe {
        /// Unsubscribing host.
        host: u32,
    },
}

/// Per-host worker state (owned by exactly one shard worker — no locks).
struct HostState {
    predictor: OnlinePredictor,
    /// Consecutive below-threshold estimates so far.
    hits: usize,
    /// Alert sink of the host's live v2 connection, if any.
    writer: Option<ClientWriter>,
}

impl HostState {
    fn new(registry: &Arc<ModelRegistry>) -> Self {
        HostState {
            predictor: OnlinePredictor::new(
                registry.shared_model(),
                registry.columns(),
                registry.agg(),
            ),
            hits: 0,
            writer: None,
        }
    }
}

/// The shard workers plus their input queues.
pub struct ShardPool {
    senders: Vec<crossbeam::channel::Sender<ShardEvent>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    board: Arc<EstimateBoard>,
}

impl ShardPool {
    /// Spawn `n_shards` workers, each behind a bounded queue of
    /// `queue_cap` events, draining up to `batch_cap` events per wakeup
    /// (batched drains amortize one model call over every window that
    /// closed in the batch; `batch_cap = 1` degenerates to the per-event
    /// path and is proven bit-identical by the equivalence tests).
    pub fn start(
        n_shards: usize,
        queue_cap: usize,
        batch_cap: usize,
        registry: Arc<ModelRegistry>,
        policy: AlertPolicy,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        Self::start_tapped(
            n_shards, queue_cap, batch_cap, registry, policy, metrics, None,
        )
    }

    /// [`ShardPool::start`] with a continuous-retraining tap: every
    /// `Datapoint`/`Fail` a worker processes is also offered (lossy,
    /// never blocking) to the [`crate::retrain::RetrainWorker`] feeding
    /// the tap.
    pub fn start_tapped(
        n_shards: usize,
        queue_cap: usize,
        batch_cap: usize,
        registry: Arc<ModelRegistry>,
        policy: AlertPolicy,
        metrics: Arc<ServeMetrics>,
        tap: Option<crate::retrain::RetrainTap>,
    ) -> Self {
        let n_shards = n_shards.max(1);
        let batch_cap = batch_cap.max(1);
        let board = Arc::new(EstimateBoard::new(n_shards * 4));
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let (tx, rx) = crossbeam::channel::bounded(queue_cap.max(1));
            senders.push(tx);
            let registry = Arc::clone(&registry);
            let board = Arc::clone(&board);
            let events = metrics.shard_events(shard);
            let queue_wait = metrics.shard_queue_wait(shard);
            let metrics = Arc::clone(&metrics);
            let tap = tap.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("f2pm-shard-{shard}"))
                    .spawn(move || {
                        worker_loop(
                            rx, batch_cap, registry, policy, board, metrics, events, queue_wait,
                            tap,
                        )
                    })
                    .expect("spawn shard worker"),
            );
        }
        ShardPool {
            senders,
            workers,
            board,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Route one event to `host`'s shard, blocking while its queue is full
    /// (backpressure, never drops). Errors only if the worker died.
    pub fn send(&self, host: u32, event: ShardEvent) -> io::Result<()> {
        let shard = host as usize % self.senders.len();
        self.senders[shard]
            .send(event)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard worker gone"))
    }

    /// Non-blocking [`ShardPool::send`]: `Ok(Some(event))` hands the event
    /// back when `host`'s queue is at capacity, so the caller can flush
    /// queued replies *before* parking on the blocking send — replies must
    /// never wait behind ingest backpressure.
    pub fn try_send(&self, host: u32, event: ShardEvent) -> io::Result<Option<ShardEvent>> {
        let shard = host as usize % self.senders.len();
        match self.senders[shard].try_send(event) {
            Ok(()) => Ok(None),
            Err(crossbeam::channel::TrySendError::Full(ev)) => Ok(Some(ev)),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "shard worker gone",
            )),
        }
    }

    /// Current queue depth per shard.
    pub fn queue_depths(&self) -> Vec<u32> {
        self.senders.iter().map(|s| s.len() as u32).collect()
    }

    /// The shared last-estimate board.
    pub fn board(&self) -> Arc<EstimateBoard> {
        Arc::clone(&self.board)
    }

    /// Drop the queues and wait for every worker to drain and exit.
    pub fn shutdown(self) {
        drop(self.senders);
        for w in self.workers {
            w.join().ok();
        }
    }
}

/// Reusable per-worker batch state: the events drained this wakeup, the
/// deferred `(host, window_t)` pairs whose rows await scoring, the flat
/// row buffer those rows live in, and the estimate output buffer. All four
/// are allocated once and recycled — the steady-state drain loop performs
/// no per-event allocation.
struct BatchState {
    deferred: Vec<(u32, f64)>,
    rows: Vec<f64>,
    estimates: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: crossbeam::channel::Receiver<ShardEvent>,
    batch_cap: usize,
    registry: Arc<ModelRegistry>,
    policy: AlertPolicy,
    board: Arc<EstimateBoard>,
    metrics: Arc<ServeMetrics>,
    events: f2pm_obs::Counter,
    queue_wait: f2pm_obs::Histogram,
    tap: Option<crate::retrain::RetrainTap>,
) {
    let mut hosts: HashMap<u32, HostState> = HashMap::new();
    let width = registry.columns().len();
    let mut batch: Vec<ShardEvent> = Vec::with_capacity(batch_cap);
    let mut state = BatchState {
        deferred: Vec::with_capacity(batch_cap),
        rows: Vec::new(),
        estimates: Vec::new(),
    };
    // Block for the first event of a batch, then opportunistically drain
    // whatever else is already queued (up to `batch_cap`) without blocking
    // again — under load a wakeup processes a whole burst, at low rate it
    // degenerates to the per-event path with zero added latency.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < batch_cap {
            match rx.try_recv() {
                Ok(event) => batch.push(event),
                Err(_) => break,
            }
        }
        for event in batch.drain(..) {
            events.inc();
            // Mirror ingest into the retraining plane before processing:
            // the offer is lossy and non-blocking, so the tap can never
            // stall a shard (training freshness never outranks latency).
            if let Some(tap) = &tap {
                match &event {
                    ShardEvent::Datapoint { host, d, .. } => tap.offer_datapoint(*host, *d),
                    ShardEvent::Fail { host, t } => tap.offer_fail(*host, *t),
                    _ => {}
                }
            }
            match event {
                ShardEvent::Datapoint { host, d, enqueued } => {
                    queue_wait.record_duration(enqueued.elapsed());
                    let host_state = hosts
                        .entry(host)
                        .or_insert_with(|| HostState::new(&registry));
                    if host_state.predictor.push_deferred(d, &mut state.rows) {
                        state.deferred.push((host, d.t_gen));
                    }
                }
                // Every other event has side effects that must observe the
                // estimates of all earlier datapoints (a deferred publish
                // sneaking past a `Fail` would resurrect a dead host's
                // estimate on the board), so score the pending rows first.
                // This keeps the batched path's observable event order
                // identical to the per-event path's.
                ShardEvent::Fail { host, t: _ } => {
                    flush_deferred(
                        &mut state, width, &mut hosts, &registry, policy, &board, &metrics,
                    );
                    if let Some(host_state) = hosts.get_mut(&host) {
                        host_state.predictor.reset();
                        host_state.hits = 0;
                    }
                    board.clear(host);
                }
                ShardEvent::Subscribe { host, writer } => {
                    flush_deferred(
                        &mut state, width, &mut hosts, &registry, policy, &board, &metrics,
                    );
                    hosts
                        .entry(host)
                        .or_insert_with(|| HostState::new(&registry))
                        .writer = Some(writer);
                }
                ShardEvent::Unsubscribe { host } => {
                    flush_deferred(
                        &mut state, width, &mut hosts, &registry, policy, &board, &metrics,
                    );
                    if let Some(host_state) = hosts.get_mut(&host) {
                        host_state.writer = None;
                    }
                }
            }
        }
        flush_deferred(
            &mut state, width, &mut hosts, &registry, policy, &board, &metrics,
        );
    }
}

/// Score every deferred window row of the batch with **one**
/// `predict_batch` call, then publish board entries, record estimates and
/// evaluate alerts in the original per-host arrival order.
///
/// The model entry is captured once, so every estimate of a flush carries
/// one consistent generation (an install landing mid-flush takes effect at
/// the next flush — same semantics a per-event loop has at event
/// granularity).
fn flush_deferred(
    state: &mut BatchState,
    width: usize,
    hosts: &mut HashMap<u32, HostState>,
    registry: &Arc<ModelRegistry>,
    policy: AlertPolicy,
    board: &EstimateBoard,
    metrics: &ServeMetrics,
) {
    if state.deferred.is_empty() {
        return;
    }
    let entry: Arc<ModelEntry> = registry.current();
    let started = Instant::now();
    state.estimates.clear();
    let n = match predict_many(
        entry.model.as_ref(),
        width,
        &mut state.rows,
        &mut state.estimates,
    ) {
        Ok(n) => n,
        Err(_) => {
            // Unreachable with a width-checked registry model; drop the
            // batch rather than poison the worker.
            debug_assert!(false, "predict_many failed on registry model");
            state.deferred.clear();
            state.rows.clear();
            return;
        }
    };
    // Amortized per-estimate model time: the whole-batch call divided
    // evenly. Keeps the estimate-latency histogram comparable with the
    // per-event path while charging each estimate its true marginal cost.
    let per_estimate = started.elapsed() / n.max(1) as u32;
    for (&(host, t), &rttf) in state.deferred.iter().zip(state.estimates.iter()) {
        metrics.estimate(per_estimate);
        let Some(host_state) = hosts.get_mut(&host) else {
            continue;
        };
        host_state.predictor.record_estimate(rttf);
        board.publish(
            host,
            PublishedEstimate {
                t,
                rttf,
                generation: entry.generation,
            },
        );
        evaluate_alert(host, t, rttf, host_state, policy, metrics);
    }
    state.deferred.clear();
}

fn evaluate_alert(
    host: u32,
    t: f64,
    rttf: f64,
    state: &mut HostState,
    policy: AlertPolicy,
    metrics: &ServeMetrics,
) {
    if rttf > policy.rttf_threshold_s {
        state.hits = 0;
        return;
    }
    state.hits += 1;
    if state.hits < policy.consecutive_hits {
        return;
    }
    state.hits = 0;
    metrics.alert();
    if let Some(writer) = &state.writer {
        let alert = Message::Alert {
            host_id: host,
            t,
            rttf,
            threshold: policy.rttf_threshold_s,
        };
        if writer.send(&alert).is_err() {
            // Client went away mid-push; the reader thread will
            // unsubscribe, we just stop writing into the broken pipe.
            state.writer = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::AggregationConfig;
    use f2pm_ml::linreg::LinearModel;
    use f2pm_ml::persist::SavedModel;
    use f2pm_monitor::FeatureId;
    use std::time::Duration;

    /// rttf = 1000 − 2 × swap_used, over a 30 s / 2-point window.
    fn test_registry() -> Arc<ModelRegistry> {
        ModelRegistry::new(
            SavedModel::Linear(LinearModel {
                intercept: 1000.0,
                coefficients: vec![-2.0, 0.0],
            }),
            vec!["swap_used".to_string(), "swap_used_slope".to_string()],
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        )
        .unwrap()
    }

    fn dp(t: f64, swap: f64) -> Datapoint {
        let mut d = Datapoint {
            t_gen: t,
            values: [1.0; 14],
        };
        d.set(FeatureId::SwapUsed, swap);
        d
    }

    fn wait_for<F: Fn() -> bool>(cond: F) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("condition not reached in time");
    }

    fn datapoint_event(host: u32, d: Datapoint) -> ShardEvent {
        ShardEvent::Datapoint {
            host,
            d,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn hosts_keep_isolated_estimates_across_shards() {
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            2,
            64,
            32,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let board = pool.board();
        // Interleave three hosts at different swap levels; windows close
        // every 30 s of guest time.
        for i in 0..30 {
            let t = i as f64 * 5.0;
            for (host, swap) in [(1u32, 100.0), (2, 200.0), (7, 300.0)] {
                pool.send(host, datapoint_event(host, dp(t, swap))).unwrap();
            }
        }
        wait_for(|| [1u32, 2, 7].iter().all(|&h| board.get(h).is_some()));
        assert_eq!(board.get(1).unwrap().rttf, 800.0);
        assert_eq!(board.get(2).unwrap().rttf, 600.0);
        assert_eq!(board.get(7).unwrap().rttf, 400.0);
        assert_eq!(board.get(1).unwrap().generation, 1);
        assert!(board.get(99).is_none());
        pool.shutdown();
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.estimates >= 3);
        assert_eq!(snap.alerts, 0, "all estimates far above threshold");
    }

    #[test]
    fn fail_resets_host_state_and_board() {
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            1,
            64,
            32,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let board = pool.board();
        for i in 0..10 {
            pool.send(4, datapoint_event(4, dp(i as f64 * 5.0, 100.0)))
                .unwrap();
        }
        wait_for(|| board.get(4).is_some());
        pool.send(4, ShardEvent::Fail { host: 4, t: 50.0 }).unwrap();
        wait_for(|| board.get(4).is_none());
        pool.shutdown();
    }

    #[test]
    fn alert_fires_after_consecutive_hits_only() {
        let metrics = Arc::new(ServeMetrics::new());
        let policy = AlertPolicy {
            rttf_threshold_s: 180.0,
            consecutive_hits: 2,
        };
        let pool = ShardPool::start(1, 64, 32, test_registry(), policy, Arc::clone(&metrics));
        // swap 450 → rttf 100 ≤ 180: every closed window is a hit. Close
        // enough windows for ≥ 2 consecutive hits.
        for i in 0..30 {
            pool.send(5, datapoint_event(5, dp(i as f64 * 5.0, 450.0)))
                .unwrap();
        }
        wait_for(|| metrics.snapshot(vec![], 1).alerts >= 1);
        pool.shutdown();
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.alerts >= 1);
        // Debounce: one alert per `consecutive_hits` window closures, so
        // alerts ≤ estimates / 2.
        assert!(snap.alerts <= snap.estimates / 2, "{snap:?}");
    }

    #[test]
    fn blocking_send_applies_backpressure_without_loss() {
        let metrics = Arc::new(ServeMetrics::new());
        // Tiny queue, one shard: the sender must block, not drop.
        let pool = ShardPool::start(
            1,
            2,
            4,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        let n = 500u64;
        for i in 0..n {
            pool.send(0, datapoint_event(0, dp(i as f64, 100.0)))
                .unwrap();
        }
        pool.shutdown(); // joins after the queue fully drains
        let snap = metrics.snapshot(vec![], 1);
        assert!(snap.estimates > 0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn queue_wait_histogram_records_per_shard() {
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            2,
            64,
            32,
            test_registry(),
            AlertPolicy::default(),
            Arc::clone(&metrics),
        );
        for i in 0..20 {
            for host in [0u32, 1] {
                pool.send(host, datapoint_event(host, dp(i as f64 * 5.0, 100.0)))
                    .unwrap();
            }
        }
        pool.shutdown();
        for shard in ["0", "1"] {
            let snap = metrics
                .registry()
                .histogram_snapshot_with("f2pm_serve_shard_queue_wait_us", "shard", shard)
                .expect("queue-wait histogram registered");
            assert!(snap.count >= 20, "shard {shard}: {}", snap.count);
        }
    }

    /// What a host's feed looks like for the equivalence harness below.
    enum Feed {
        Dp(u32, Datapoint),
        Fail(u32, f64),
    }

    /// Run `feed` through a pool with the given `batch_cap` and collect
    /// the complete per-host estimate stream. The observation channel is
    /// the alert push path: with `threshold = ∞, hits = 1`, *every*
    /// published estimate fires an `Alert` over a real loopback socket, so
    /// the full sequence (not just the board's last value) is visible.
    fn run_pool_collect_alerts(batch_cap: usize, feed: &[Feed]) -> HashMap<u32, Vec<(u64, u64)>> {
        use f2pm_monitor::wire::FrameDecoder;
        use std::net::TcpListener;

        let metrics = Arc::new(ServeMetrics::new());
        let policy = AlertPolicy {
            rttf_threshold_s: f64::INFINITY,
            consecutive_hits: 1,
        };
        let pool = ShardPool::start(2, 64, batch_cap, test_registry(), policy, metrics);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let w_stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut r_stream, _) = listener.accept().unwrap();
        let writer = ClientWriter::new(w_stream);
        let reader = std::thread::spawn(move || {
            let mut decoder = FrameDecoder::new();
            let mut out: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
            while let Ok(Some(msg)) = decoder.read_frame(&mut r_stream) {
                if let Message::Alert {
                    host_id, t, rttf, ..
                } = msg
                {
                    out.entry(host_id)
                        .or_default()
                        .push((t.to_bits(), rttf.to_bits()));
                }
            }
            out
        });
        for host in [1u32, 2, 3] {
            pool.send(
                host,
                ShardEvent::Subscribe {
                    host,
                    writer: writer.clone(),
                },
            )
            .unwrap();
        }
        for item in feed {
            match *item {
                Feed::Dp(host, d) => pool.send(host, datapoint_event(host, d)).unwrap(),
                Feed::Fail(host, t) => pool.send(host, ShardEvent::Fail { host, t }).unwrap(),
            }
        }
        pool.shutdown();
        drop(writer); // last writer clone gone → reader sees EOF
        reader.join().unwrap()
    }

    /// The ISSUE's headline equivalence guarantee: batched shard
    /// processing publishes **bit-identical** estimates, in the same
    /// per-host order, as the per-event path (`batch_cap = 1`). The feed
    /// interleaves three hosts across two shards and injects a mid-stream
    /// `Fail` so the flush-before-side-effect ordering is exercised too.
    #[test]
    fn batched_drain_is_bit_identical_to_per_event_path() {
        let mut feed = Vec::new();
        for i in 0..240 {
            let t = i as f64 * 5.0;
            for (host, base) in [(1u32, 80.0), (2, 160.0), (3, 240.0)] {
                feed.push(Feed::Dp(host, dp(t, base + (i as f64 * 0.7).sin() * 50.0)));
            }
            if i == 120 {
                feed.push(Feed::Fail(2, t));
            }
        }
        let per_event = run_pool_collect_alerts(1, &feed);
        let batched = run_pool_collect_alerts(256, &feed);
        for host in [1u32, 2, 3] {
            let a = per_event.get(&host).expect("per-event estimates");
            let b = batched.get(&host).expect("batched estimates");
            assert!(a.len() >= 8, "host {host}: only {} estimates", a.len());
            assert_eq!(a, b, "host {host} estimate stream diverged");
        }
    }

    #[test]
    fn estimate_board_reads_never_tear_under_concurrent_publish() {
        use std::sync::atomic::AtomicBool;

        let board = Arc::new(EstimateBoard::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let board = Arc::clone(&board);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    board.publish(
                        9,
                        PublishedEstimate {
                            t: k as f64,
                            rttf: 2.0 * k as f64,
                            generation: k,
                        },
                    );
                    k += 1;
                }
                k
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let board = Arc::clone(&board);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(est) = board.get(9) {
                            // A torn read would pair t from one publish
                            // with rttf/generation from another.
                            assert_eq!(est.rttf, 2.0 * est.t, "torn estimate {est:?}");
                            assert_eq!(est.generation as f64, est.t, "torn estimate {est:?}");
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(published > 1_000, "publisher starved: {published}");
        assert!(reads > 1_000, "readers starved: {reads}");
    }

    #[test]
    fn send_all_coalesces_whole_frames() {
        use f2pm_monitor::wire::FrameDecoder;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let w_stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut r_stream, _) = listener.accept().unwrap();
        let writer = ClientWriter::new(w_stream);
        let msgs = [
            Message::RttfEstimate {
                host_id: 1,
                t: 10.0,
                rttf: Some(400.0),
                model_generation: 2,
            },
            Message::Alert {
                host_id: 1,
                t: 10.0,
                rttf: 400.0,
                threshold: 600.0,
            },
            Message::Bye,
        ];
        writer.send_all(&msgs).unwrap();
        writer.send_all(&[]).unwrap(); // empty batch is a no-op
        drop(writer);
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        while let Ok(Some(msg)) = decoder.read_frame(&mut r_stream) {
            got.push(msg);
        }
        assert_eq!(got.as_slice(), msgs.as_slice());
    }
}
