//! Serving metrics: lock-free counters + a prediction-latency histogram.
//!
//! One [`ServeMetrics`] is shared by the acceptor, every reader thread and
//! every shard worker; all updates are relaxed atomics so the hot ingest
//! path never takes a lock for accounting. [`ServeMetrics::snapshot`]
//! materializes a consistent-enough [`MetricsSnapshot`] for the `Stats`
//! wire reply and for the load-generation reports.

use f2pm_monitor::wire::Message;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two µs latency buckets: bucket `i` holds latencies in
/// `[2^(i-1), 2^i)` µs (bucket 0 = sub-µs), the last bucket is open-ended.
pub const LATENCY_BUCKETS: usize = 22;

/// Shared, lock-free serving counters.
#[derive(Default)]
pub struct ServeMetrics {
    connections: AtomicU64,
    total_accepted: AtomicU64,
    datapoints: AtomicU64,
    estimates: AtomicU64,
    alerts: AtomicU64,
    dropped: AtomicU64,
    predict_requests: AtomicU64,
    stats_requests: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.total_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection ended (any reason).
    pub fn connection_closed(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// One datapoint ingested off the wire.
    pub fn datapoint(&self) {
        self.datapoints.fetch_add(1, Ordering::Relaxed);
    }

    /// One RTTF estimate produced, taking `took` of shard-worker time
    /// (aggregation + model evaluation).
    pub fn estimate(&self, took: Duration) {
        self.estimates.fetch_add(1, Ordering::Relaxed);
        let us = took.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (u64::BITS - us.leading_zeros()).min(LATENCY_BUCKETS as u32 - 1);
        self.latency[bucket as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// One rejuvenation alert fired.
    pub fn alert(&self) {
        self.alerts.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame dropped (never happens under blocking backpressure; the
    /// counter exists so the invariant is observable).
    pub fn drop_frame(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// One `PredictRequest` served.
    pub fn predict_request(&self) {
        self.predict_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// One `StatsRequest` served.
    pub fn stats_request(&self) {
        self.stats_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize a snapshot. Queue depths and model generation live
    /// outside the metrics (shard pool / registry), so the caller passes
    /// them in.
    pub fn snapshot(&self, shard_depths: Vec<u32>, model_generation: u64) -> MetricsSnapshot {
        let latency: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            total_accepted: self.total_accepted.load(Ordering::Relaxed),
            datapoints: self.datapoints.load(Ordering::Relaxed),
            estimates: self.estimates.load(Ordering::Relaxed),
            alerts: self.alerts.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            predict_requests: self.predict_requests.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            latency_buckets: latency,
            shard_depths,
            model_generation,
        }
    }
}

/// Point-in-time view of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Live client connections.
    pub connections: u64,
    /// Connections accepted since start.
    pub total_accepted: u64,
    /// Datapoints ingested since start.
    pub datapoints: u64,
    /// RTTF estimates produced since start.
    pub estimates: u64,
    /// Rejuvenation alerts fired since start.
    pub alerts: u64,
    /// Frames dropped since start (0 under blocking backpressure).
    pub dropped: u64,
    /// `PredictRequest`s served since start.
    pub predict_requests: u64,
    /// `StatsRequest`s served since start.
    pub stats_requests: u64,
    /// Prediction-latency histogram; bucket `i` counts estimates that took
    /// `[2^(i-1), 2^i)` µs of shard-worker time.
    pub latency_buckets: Vec<u64>,
    /// Queue depth per shard at snapshot time.
    pub shard_depths: Vec<u32>,
    /// Current model generation.
    pub model_generation: u64,
}

impl MetricsSnapshot {
    /// Upper-bound latency (µs) of quantile `q` in `[0, 1]`, from the
    /// power-of-two histogram. `None` when no estimate has been recorded.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(if i == 0 { 1 } else { 1u64 << i });
            }
        }
        Some(1u64 << (self.latency_buckets.len() - 1))
    }

    /// Render as the wire `Stats` reply.
    pub fn to_message(&self) -> Message {
        Message::Stats {
            connections: self.connections,
            datapoints: self.datapoints,
            estimates: self.estimates,
            alerts: self.alerts,
            dropped: self.dropped,
            model_generation: self.model_generation,
            shard_depths: self.shard_depths.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = ServeMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        for _ in 0..5 {
            m.datapoint();
        }
        m.estimate(Duration::from_micros(3));
        m.alert();
        m.predict_request();
        m.stats_request();
        let s = m.snapshot(vec![1, 0], 4);
        assert_eq!(s.connections, 1);
        assert_eq!(s.total_accepted, 2);
        assert_eq!(s.datapoints, 5);
        assert_eq!(s.estimates, 1);
        assert_eq!(s.alerts, 1);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.predict_requests, 1);
        assert_eq!(s.stats_requests, 1);
        assert_eq!(s.shard_depths, vec![1, 0]);
        assert_eq!(s.model_generation, 4);
    }

    #[test]
    fn latency_histogram_buckets_by_power_of_two() {
        let m = ServeMetrics::new();
        m.estimate(Duration::from_micros(0)); // bucket 0
        m.estimate(Duration::from_micros(1)); // bucket 1: [1, 2)
        m.estimate(Duration::from_micros(3)); // bucket 2: [2, 4)
        m.estimate(Duration::from_micros(100)); // bucket 7: [64, 128)
        m.estimate(Duration::from_secs(3600)); // clamped to the last bucket
        let s = m.snapshot(vec![], 1);
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(s.latency_buckets[2], 1);
        assert_eq!(s.latency_buckets[7], 1);
        assert_eq!(*s.latency_buckets.last().unwrap(), 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let m = ServeMetrics::new();
        assert_eq!(m.snapshot(vec![], 1).latency_quantile_us(0.5), None);
        for _ in 0..98 {
            m.estimate(Duration::from_micros(3)); // bucket 2 → bound 4
        }
        m.estimate(Duration::from_micros(40)); // bucket 6 → bound 64
        m.estimate(Duration::from_micros(1000)); // bucket 10 → bound 1024
        let s = m.snapshot(vec![], 1);
        assert_eq!(s.latency_quantile_us(0.5), Some(4));
        assert_eq!(s.latency_quantile_us(0.99), Some(64));
        assert_eq!(s.latency_quantile_us(1.0), Some(1024));
    }

    #[test]
    fn stats_message_mirrors_snapshot() {
        let m = ServeMetrics::new();
        m.datapoint();
        let s = m.snapshot(vec![3], 2);
        match s.to_message() {
            Message::Stats {
                datapoints,
                model_generation,
                shard_depths,
                ..
            } => {
                assert_eq!(datapoints, 1);
                assert_eq!(model_generation, 2);
                assert_eq!(shard_depths, vec![3]);
            }
            other => panic!("wrong message {other:?}"),
        }
    }
}
