//! Serving metrics on the shared `f2pm-obs` registry.
//!
//! One [`ServeMetrics`] is shared by the acceptor, every reader thread and
//! every shard worker. The counters/gauges/histogram are handles into an
//! [`f2pm_obs::MetricsRegistry`] owned by the server instance (per-instance,
//! so tests can run several servers without cross-talk); all updates are
//! relaxed atomics, so the hot ingest path never takes a lock for
//! accounting. [`ServeMetrics::snapshot`] materializes a consistent-enough
//! [`MetricsSnapshot`] for the v2 `Stats` wire reply, and
//! [`ServeMetrics::expose_text`] renders the v3 Prometheus-style exposition
//! (instance registry + the process-global registry, which carries the span
//! timings of any in-process training plus FMC/FMS transport counters).

use f2pm_monitor::wire::Message;
use f2pm_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::time::Duration;

/// Power-of-two µs latency buckets (re-exported bucket count of the shared
/// [`f2pm_obs::Histogram`]; bucket `i` holds latencies in `[2^(i-1), 2^i)`
/// µs, bucket 0 = sub-µs, the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = f2pm_obs::HISTOGRAM_BUCKETS;

/// Shared serving counters, backed by a per-instance metrics registry.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    connections: Gauge,
    total_accepted: Counter,
    conns_accepted: Counter,
    conns_closed: Counter,
    evicted_slow: Counter,
    datapoints: Counter,
    estimates: Counter,
    alerts: Counter,
    dropped: Counter,
    predict_requests: Counter,
    stats_requests: Counter,
    metrics_requests: Counter,
    latency: Histogram,
    decode: Histogram,
    reply: Histogram,
    reactor_turn: Histogram,
    model_generation: Gauge,
    latency_p50: Gauge,
    latency_p99: Gauge,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        ServeMetrics {
            connections: registry.gauge("f2pm_serve_connections"),
            total_accepted: registry.counter("f2pm_serve_connections_total"),
            conns_accepted: registry.counter("f2pm_serve_conns_accepted"),
            conns_closed: registry.counter("f2pm_serve_conns_closed"),
            evicted_slow: registry.counter("f2pm_serve_conns_evicted_slow"),
            datapoints: registry.counter("f2pm_serve_datapoints_total"),
            estimates: registry.counter("f2pm_serve_estimates_total"),
            alerts: registry.counter("f2pm_serve_alerts_total"),
            dropped: registry.counter("f2pm_serve_dropped_frames_total"),
            predict_requests: registry.counter("f2pm_serve_predict_requests_total"),
            stats_requests: registry.counter("f2pm_serve_stats_requests_total"),
            metrics_requests: registry.counter("f2pm_serve_metrics_requests_total"),
            latency: registry.histogram("f2pm_serve_estimate_latency_us"),
            decode: registry.histogram("f2pm_serve_decode_us"),
            reply: registry.histogram("f2pm_serve_reply_us"),
            reactor_turn: registry.histogram("f2pm_serve_reactor_turn_us"),
            model_generation: registry.gauge("f2pm_serve_model_generation"),
            latency_p50: registry.gauge("f2pm_serve_estimate_latency_p50_us"),
            latency_p99: registry.gauge("f2pm_serve_estimate_latency_p99_us"),
            registry,
        }
    }
}

impl ServeMetrics {
    /// Fresh all-zero metrics on a private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        self.connections.add(1.0);
        self.total_accepted.inc();
        self.conns_accepted.inc();
    }

    /// A connection ended (any reason).
    pub fn connection_closed(&self) {
        self.connections.add(-1.0);
        self.conns_closed.inc();
    }

    /// A slow consumer exceeded its bounded outbound buffer and was
    /// disconnected by the reactor instead of growing memory unbounded.
    pub fn connection_evicted_slow(&self) {
        self.evicted_slow.inc();
    }

    /// One reactor event-loop turn completed (wakeup → all ready
    /// connections serviced), taking `took` of reactor-thread time.
    pub fn record_reactor_turn(&self, took: Duration) {
        self.reactor_turn.record_duration(took);
    }

    /// One datapoint ingested off the wire.
    pub fn datapoint(&self) {
        self.datapoints.inc();
    }

    /// One RTTF estimate produced, taking `took` of shard-worker time
    /// (aggregation + model evaluation).
    pub fn estimate(&self, took: Duration) {
        self.estimates.inc();
        self.latency.record_duration(took);
    }

    /// One rejuvenation alert fired.
    pub fn alert(&self) {
        self.alerts.inc();
    }

    /// One frame dropped (never happens under blocking backpressure; the
    /// counter exists so the invariant is observable).
    pub fn drop_frame(&self) {
        self.dropped.inc();
    }

    /// One `PredictRequest` served.
    pub fn predict_request(&self) {
        self.predict_requests.inc();
    }

    /// One `StatsRequest` served.
    pub fn stats_request(&self) {
        self.stats_requests.inc();
    }

    /// One `MetricsRequest` (v3 scrape) served.
    pub fn metrics_request(&self) {
        self.metrics_requests.inc();
    }

    /// One wire frame decoded off a connection's read buffer, taking
    /// `took` of reader-thread time (the "decode" stage of the latency
    /// breakdown).
    pub fn record_decode(&self, took: Duration) {
        self.decode.record_duration(took);
    }

    /// One coalesced reply flush written (`n` frames in one `write_all`),
    /// taking `took` (the "reply" stage of the latency breakdown).
    pub fn record_reply(&self, took: Duration) {
        self.reply.record_duration(took);
    }

    /// Per-shard processed-event counter handle
    /// (`f2pm_serve_shard_events_total{shard="<i>"}`). Workers grab their
    /// handle once at spawn, then increment lock-free.
    pub fn shard_events(&self, shard: usize) -> Counter {
        self.registry
            .counter_with("f2pm_serve_shard_events_total", "shard", &shard.to_string())
    }

    /// Per-shard enqueue→drain wait histogram handle
    /// (`f2pm_serve_shard_queue_wait_us{shard="<i>"}`, the "queue" stage
    /// of the latency breakdown). Workers grab their handle once at
    /// spawn, then record lock-free.
    pub fn shard_queue_wait(&self, shard: usize) -> Histogram {
        self.registry.histogram_with(
            "f2pm_serve_shard_queue_wait_us",
            "shard",
            &shard.to_string(),
        )
    }

    /// Queue-wait buckets aggregated over `n_shards` labeled histograms
    /// (element-wise sum; empty when no shard has recorded yet).
    fn queue_wait_buckets(&self, n_shards: usize) -> Vec<u64> {
        let mut out = vec![0u64; LATENCY_BUCKETS];
        let mut any = false;
        for shard in 0..n_shards {
            if let Some(snap) = self.registry.histogram_snapshot_with(
                "f2pm_serve_shard_queue_wait_us",
                "shard",
                &shard.to_string(),
            ) {
                any = true;
                for (acc, b) in out.iter_mut().zip(snap.buckets) {
                    *acc += b;
                }
            }
        }
        if any {
            out
        } else {
            Vec::new()
        }
    }

    /// The instance registry backing these metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Stamp the instance identity into the exposition as
    /// `f2pm_serve_instance_info{instance="<id>"} 1`, the Prometheus info
    /// idiom — merged fleet scrapes stay attributable to the instance that
    /// produced each sample. Called once at server start.
    pub fn set_instance_info(&self, instance_id: u32) {
        self.registry
            .gauge_with(
                "f2pm_serve_instance_info",
                "instance",
                &instance_id.to_string(),
            )
            .set_u64(1);
    }

    /// Materialize a snapshot. Queue depths and model generation live
    /// outside the metrics (shard pool / registry), so the caller passes
    /// them in.
    pub fn snapshot(&self, shard_depths: Vec<u32>, model_generation: u64) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let queue_wait_buckets = self.queue_wait_buckets(shard_depths.len());
        MetricsSnapshot {
            connections: self.connections.get().max(0.0) as u64,
            total_accepted: self.total_accepted.get(),
            conns_closed: self.conns_closed.get(),
            evicted_slow: self.evicted_slow.get(),
            datapoints: self.datapoints.get(),
            estimates: self.estimates.get(),
            alerts: self.alerts.get(),
            dropped: self.dropped.get(),
            predict_requests: self.predict_requests.get(),
            stats_requests: self.stats_requests.get(),
            metrics_requests: self.metrics_requests.get(),
            latency_buckets: latency.buckets,
            decode_buckets: self.decode.snapshot().buckets,
            reply_buckets: self.reply.snapshot().buckets,
            queue_wait_buckets,
            shard_depths,
            model_generation,
        }
    }

    /// Render the v3 text exposition: refresh the scrape-time gauges
    /// (shard queue depths, model generation, p50/p99 latency), render the
    /// instance registry, then append the process-global registry so the
    /// scrape also carries pipeline span timings and FMC/FMS transport
    /// counters.
    pub fn expose_text(&self, shard_depths: &[u32], model_generation: u64) -> String {
        self.model_generation.set_u64(model_generation);
        for (i, &d) in shard_depths.iter().enumerate() {
            self.registry
                .gauge_with("f2pm_serve_shard_queue_depth", "shard", &i.to_string())
                .set_u64(d as u64);
        }
        let snap = self.latency.snapshot();
        self.latency_p50.set_u64(snap.quantile_us(0.5).unwrap_or(0));
        self.latency_p99
            .set_u64(snap.quantile_us(0.99).unwrap_or(0));
        // Per-stage quantile gauges so a wire scrape carries the full
        // decode → queue wait → predict → reply breakdown without the
        // scraper having to parse histogram buckets.
        let qw_buckets = self.queue_wait_buckets(shard_depths.len());
        let queue_wait = f2pm_obs::HistogramSnapshot {
            count: qw_buckets.iter().sum(),
            buckets: qw_buckets,
            sum_us: 0,
        };
        for (name, snap) in [
            ("f2pm_serve_decode", self.decode.snapshot()),
            ("f2pm_serve_queue_wait", queue_wait),
            ("f2pm_serve_reply", self.reply.snapshot()),
        ] {
            for (q, suffix) in [(0.5, "p50"), (0.99, "p99")] {
                self.registry
                    .gauge(&format!("{name}_{suffix}_us"))
                    .set_u64(snap.quantile_us(q).unwrap_or(0));
            }
        }
        let mut text = self.registry.render_text();
        text.push_str(&f2pm_obs::global().render_text());
        text
    }
}

/// Point-in-time view of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Live client connections.
    pub connections: u64,
    /// Connections accepted since start.
    pub total_accepted: u64,
    /// Connections closed since start (any reason, evictions included).
    pub conns_closed: u64,
    /// Slow consumers evicted for exceeding the bounded outbound buffer.
    pub evicted_slow: u64,
    /// Datapoints ingested since start.
    pub datapoints: u64,
    /// RTTF estimates produced since start.
    pub estimates: u64,
    /// Rejuvenation alerts fired since start.
    pub alerts: u64,
    /// Frames dropped since start (0 under blocking backpressure).
    pub dropped: u64,
    /// `PredictRequest`s served since start.
    pub predict_requests: u64,
    /// `StatsRequest`s served since start.
    pub stats_requests: u64,
    /// `MetricsRequest` scrapes served since start (v3).
    pub metrics_requests: u64,
    /// Prediction-latency histogram; bucket `i` counts estimates that took
    /// `[2^(i-1), 2^i)` µs of shard-worker time.
    pub latency_buckets: Vec<u64>,
    /// Frame-decode latency histogram (reader-thread "decode" stage).
    pub decode_buckets: Vec<u64>,
    /// Coalesced reply-write latency histogram ("reply" stage).
    pub reply_buckets: Vec<u64>,
    /// Enqueue→drain wait histogram, aggregated over every shard
    /// ("queue" stage). Empty when no shard recorded yet.
    pub queue_wait_buckets: Vec<u64>,
    /// Queue depth per shard at snapshot time.
    pub shard_depths: Vec<u32>,
    /// Current model generation.
    pub model_generation: u64,
}

impl MetricsSnapshot {
    /// Upper-bound latency (µs) of quantile `q` in `[0, 1]`, from the
    /// power-of-two histogram. `None` when no estimate has been recorded.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        Self::bucket_quantile_us(&self.latency_buckets, q)
    }

    /// Quantile over the aggregated queue-wait histogram (µs).
    pub fn queue_wait_quantile_us(&self, q: f64) -> Option<u64> {
        Self::bucket_quantile_us(&self.queue_wait_buckets, q)
    }

    /// Quantile over the frame-decode histogram (µs).
    pub fn decode_quantile_us(&self, q: f64) -> Option<u64> {
        Self::bucket_quantile_us(&self.decode_buckets, q)
    }

    /// Quantile over the reply-write histogram (µs).
    pub fn reply_quantile_us(&self, q: f64) -> Option<u64> {
        Self::bucket_quantile_us(&self.reply_buckets, q)
    }

    fn bucket_quantile_us(buckets: &[u64], q: f64) -> Option<u64> {
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let snap = f2pm_obs::HistogramSnapshot {
            buckets: buckets.to_vec(),
            count: total,
            sum_us: 0,
        };
        snap.quantile_us(q.clamp(0.0, 1.0))
    }

    /// Render as the wire `Stats` reply (the anonymous v2 shape, kept for
    /// pre-v4 clients; v4 connections get
    /// [`MetricsSnapshot::to_fleet_snapshot`]).
    pub fn to_message(&self) -> Message {
        Message::Stats {
            connections: self.connections,
            datapoints: self.datapoints,
            estimates: self.estimates,
            alerts: self.alerts,
            dropped: self.dropped,
            model_generation: self.model_generation,
            shard_depths: self.shard_depths.clone(),
        }
    }

    /// Render as the wire `FleetSnapshot` reply: the v4 instance-
    /// attributable replacement for the anonymous `Stats` shape.
    /// `hosts_tracked` comes from the estimate board, which lives outside
    /// the metrics.
    pub fn to_fleet_snapshot(&self, instance_id: u32, hosts_tracked: u32) -> Message {
        Message::FleetSnapshot {
            instance_id,
            connections: self.connections,
            datapoints: self.datapoints,
            estimates: self.estimates,
            alerts: self.alerts,
            dropped: self.dropped,
            model_generation: self.model_generation,
            hosts_tracked,
            shard_depths: self.shard_depths.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = ServeMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        for _ in 0..5 {
            m.datapoint();
        }
        m.estimate(Duration::from_micros(3));
        m.alert();
        m.predict_request();
        m.stats_request();
        let s = m.snapshot(vec![1, 0], 4);
        assert_eq!(s.connections, 1);
        assert_eq!(s.total_accepted, 2);
        assert_eq!(s.datapoints, 5);
        assert_eq!(s.estimates, 1);
        assert_eq!(s.alerts, 1);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.predict_requests, 1);
        assert_eq!(s.stats_requests, 1);
        assert_eq!(s.shard_depths, vec![1, 0]);
        assert_eq!(s.model_generation, 4);
    }

    #[test]
    fn latency_histogram_buckets_by_power_of_two() {
        let m = ServeMetrics::new();
        m.estimate(Duration::from_micros(0)); // bucket 0
        m.estimate(Duration::from_micros(1)); // bucket 1: [1, 2)
        m.estimate(Duration::from_micros(3)); // bucket 2: [2, 4)
        m.estimate(Duration::from_micros(100)); // bucket 7: [64, 128)
        m.estimate(Duration::from_secs(3600)); // clamped to the last bucket
        let s = m.snapshot(vec![], 1);
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(s.latency_buckets[2], 1);
        assert_eq!(s.latency_buckets[7], 1);
        assert_eq!(*s.latency_buckets.last().unwrap(), 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let m = ServeMetrics::new();
        assert_eq!(m.snapshot(vec![], 1).latency_quantile_us(0.5), None);
        for _ in 0..98 {
            m.estimate(Duration::from_micros(3)); // bucket 2 → bound 4
        }
        m.estimate(Duration::from_micros(40)); // bucket 6 → bound 64
        m.estimate(Duration::from_micros(1000)); // bucket 10 → bound 1024
        let s = m.snapshot(vec![], 1);
        assert_eq!(s.latency_quantile_us(0.5), Some(4));
        assert_eq!(s.latency_quantile_us(0.99), Some(64));
        assert_eq!(s.latency_quantile_us(1.0), Some(1024));
    }

    #[test]
    fn stats_message_mirrors_snapshot() {
        let m = ServeMetrics::new();
        m.datapoint();
        let s = m.snapshot(vec![3], 2);
        match s.to_message() {
            Message::Stats {
                datapoints,
                model_generation,
                shard_depths,
                ..
            } => {
                assert_eq!(datapoints, 1);
                assert_eq!(model_generation, 2);
                assert_eq!(shard_depths, vec![3]);
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn exposition_carries_counters_quantiles_and_generation() {
        let m = ServeMetrics::new();
        m.connection_opened();
        for _ in 0..10 {
            m.datapoint();
            m.estimate(Duration::from_micros(100));
        }
        m.metrics_request();
        m.shard_events(0).add(7);
        let text = m.expose_text(&[2, 0], 5);
        assert!(text.contains("f2pm_serve_datapoints_total 10\n"));
        assert!(text.contains("f2pm_serve_metrics_requests_total 1\n"));
        assert!(text.contains("f2pm_serve_model_generation 5\n"));
        assert!(text.contains("f2pm_serve_shard_queue_depth{shard=\"0\"} 2\n"));
        assert!(text.contains("f2pm_serve_shard_queue_depth{shard=\"1\"} 0\n"));
        assert!(text.contains("f2pm_serve_shard_events_total{shard=\"0\"} 7\n"));
        assert!(text.contains("f2pm_serve_estimate_latency_p50_us 128\n"));
        assert!(text.contains("f2pm_serve_estimate_latency_p99_us 128\n"));
        assert!(text.contains("f2pm_serve_estimate_latency_us_count 10\n"));
        // Distinct instances do not share registries.
        let other = ServeMetrics::new();
        assert!(other
            .expose_text(&[], 1)
            .contains("f2pm_serve_datapoints_total 0\n"));
    }

    #[test]
    fn exposition_appends_the_global_registry() {
        let m = ServeMetrics::new();
        // Record a span into the process-global registry, as the training
        // pipeline does.
        f2pm_obs::span!("serve_metrics_test_stage").stop();
        let text = m.expose_text(&[], 1);
        assert!(text.contains("f2pm_stage_duration_us_bucket{stage=\"serve_metrics_test_stage\""));
    }
}
