//! The epoll reactor edge: 10k+ concurrent FMC clients per instance.
//!
//! N reactor threads (see `ServeConfig::reactors`) each own one
//! [`Poller`](crate::poller::Poller) and a slab of nonblocking
//! connections. Reactor 0 additionally owns the listener: accepted
//! sockets are round-robined across reactors through a small mailbox +
//! eventfd wakeup, so no reactor ever touches another's slab.
//!
//! Per connection the slab holds `{TcpStream, FrameDecoder, shared
//! outbound buffer, registered interest}` — a few hundred bytes when
//! idle, because reads land in a per-*reactor* 16 KiB scratch and only a
//! partial frame's tail is copied into the per-connection decoder
//! (`Message::try_frame_from` decodes whole frames straight off the
//! scratch slice). That is what turns per-connection cost from a thread
//! stack into a slab entry.
//!
//! Semantics match the threaded edge frame-for-frame (pinned by the
//! equivalence tests in `tests/reactor_equivalence.rs`):
//!
//! - reads (`PredictRequest`/`StatsRequest`/`MetricsRequest`) are
//!   answered from the board and never wait behind ingest backpressure —
//!   the reactor *parks* a shard-bound event that meets a full queue
//!   (`try_send` hands it back) in the connection state, drops read
//!   interest so level-triggered epoll doesn't spin, and retries each
//!   turn; replies keep flowing the whole time;
//! - shard-bound events apply in arrival order per connection (the
//!   parked event always retries before any later frame is decoded);
//! - alerts pushed by shard workers are appended to the connection's
//!   bounded outbound buffer and flushed by the owning reactor after an
//!   eventfd wakeup; a consumer that lets the buffer exceed
//!   `outbound_cap` is evicted (`f2pm_serve_conns_evicted_slow`) instead
//!   of growing server memory.
//!
//! Shutdown is an eventfd wake per reactor (no throwaway-connection
//! hack): each reactor observes the stop flag, unsubscribes and closes
//! every connection in its slab, and exits; the pool joins the threads.

use crate::metrics::ServeMetrics;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::server::{handle_read, Inner};
use crate::shard::{ClientWriter, ShardEvent};
use bytes::BytesMut;
use f2pm_monitor::wire::{
    FrameDecoder, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, READ_CHUNK,
};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token of each reactor's own eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Token of the listener (registered in reactor 0 only).
const LISTENER_TOKEN: u64 = u64::MAX - 1;
/// Max `read(2)` calls per connection per turn; level-triggered epoll
/// re-reports a still-readable socket next turn, so a firehose client
/// cannot starve its slab neighbours.
const MAX_READS_PER_TURN: usize = 16;

/// Pending bytes headed to one client, shared between the owning reactor
/// (flush) and shard workers (alert pushes via `ReactorSink`).
pub(crate) struct Outbound {
    /// Encoded frames; `buf[pos..]` is unwritten.
    buf: BytesMut,
    /// How much of `buf` the socket has taken.
    pos: usize,
    /// No further sends accepted; the reactor closes on next wakeup.
    dead: bool,
    /// `dead` because the bounded buffer overflowed (slow consumer).
    evicted: bool,
    /// The shard worker dropped its `ClientWriter` (it processed the
    /// `Unsubscribe`, or failed a send): no more alerts can arrive, so a
    /// draining close may complete once the buffer flushes.
    writer_gone: bool,
    /// Token already sits in the reactor's notify mailbox (dedup).
    notified: bool,
}

impl Outbound {
    fn new() -> Self {
        Outbound {
            buf: BytesMut::new(),
            pos: 0,
            dead: false,
            evicted: false,
            writer_gone: false,
            notified: false,
        }
    }

    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// The cross-thread face of one reactor: eventfd waker + mailbox.
pub(crate) struct ReactorShared {
    waker: Waker,
    inbox: Mutex<Inbox>,
}

#[derive(Default)]
struct Inbox {
    /// Freshly accepted sockets handed over by reactor 0.
    new_conns: Vec<TcpStream>,
    /// Connection tokens with new outbound bytes (or a dead mark).
    notify: Vec<u64>,
}

/// The reactor-edge sink behind [`ClientWriter`]: shard workers append
/// encoded frames to the connection's bounded outbound buffer and wake
/// the owning reactor to flush them.
pub(crate) struct ReactorSink {
    out: Arc<Mutex<Outbound>>,
    shared: Arc<ReactorShared>,
    token: u64,
    cap: usize,
}

impl ReactorSink {
    pub(crate) fn send_all(&self, msgs: &[Message]) -> io::Result<()> {
        let (need_notify, over) = {
            let mut out = self.out.lock();
            if out.dead {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection closing",
                ));
            }
            for msg in msgs {
                msg.encode_into(&mut out.buf);
            }
            let over = out.pending() > self.cap;
            if over {
                out.dead = true;
                out.evicted = true;
            }
            let need = !out.notified;
            out.notified = true;
            (need, over)
        };
        if need_notify {
            self.shared.inbox.lock().notify.push(self.token);
            self.shared.waker.wake();
        }
        if over {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "slow consumer: outbound buffer over cap",
            ))
        } else {
            Ok(())
        }
    }
}

impl Drop for ReactorSink {
    /// The shard worker releasing its writer (it processed the
    /// `Unsubscribe`, or gave up after a failed send) completes any
    /// draining close: mirror of the threaded edge, where the worker's
    /// stream clone dropping is what finally EOFs a Bye'd client that
    /// was still receiving alerts for already-ingested datapoints.
    fn drop(&mut self) {
        let need_notify = {
            let mut out = self.out.lock();
            out.writer_gone = true;
            let need = !out.notified;
            out.notified = true;
            need
        };
        if need_notify {
            self.shared.inbox.lock().notify.push(self.token);
            self.shared.waker.wake();
        }
    }
}

/// One slab connection.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Arc<Mutex<Outbound>>,
    /// Currently registered epoll interest.
    interest: Interest,
    token: u64,
    host: u32,
    version: u16,
    handshaken: bool,
    /// A `Subscribe` was sent; close must `Unsubscribe`.
    subscribed: bool,
    /// The close-path `Unsubscribe` is already queued (draining close:
    /// the conn stays until the worker drops its writer).
    unsub_sent: bool,
    /// Shard-bound event that met a full queue; retried every turn.
    /// While parked, read interest is dropped (level-triggered epoll
    /// would otherwise spin) and no later frame is decoded, preserving
    /// per-connection arrival order.
    parked: Option<ShardEvent>,
    /// Peer sent EOF; finish decoding, flush, then close.
    eof: bool,
    /// `Bye` seen (or clean EOF): stop reading, flush outbound, close.
    closing: bool,
}

/// Slab slot; `gen` increments on every reuse so a stale epoll event for
/// a recycled index can't touch the new occupant.
struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(gen: u32, idx: usize) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// Running reactor threads; owned by the serve handle.
pub(crate) struct ReactorPool {
    shareds: Vec<Arc<ReactorShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorPool {
    /// Spawn `n` reactors; reactor 0 takes the (nonblocking) listener.
    pub(crate) fn start(
        listener: TcpListener,
        n: usize,
        outbound_cap: usize,
        inner: Arc<Inner>,
        metrics: Arc<ServeMetrics>,
    ) -> io::Result<ReactorPool> {
        let n = n.max(1);
        // Headroom for the fds the reactors will hold; best-effort.
        crate::poller::raise_nofile_limit(16_384);
        let mut shareds = Vec::with_capacity(n);
        for _ in 0..n {
            shareds.push(Arc::new(ReactorShared {
                waker: Waker::new()?,
                inbox: Mutex::new(Inbox::default()),
            }));
        }
        let mut handles = Vec::with_capacity(n);
        for id in 0..n {
            let poller = Poller::new()?;
            poller.add(shareds[id].waker.fd(), WAKER_TOKEN, Interest::READ)?;
            let listener = if id == 0 {
                poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
                Some(listener.try_clone()?)
            } else {
                None
            };
            let reactor = Reactor {
                id,
                poller,
                shared: Arc::clone(&shareds[id]),
                peers: shareds.clone(),
                listener,
                slots: Vec::new(),
                free: Vec::new(),
                parked: Vec::new(),
                scratch: vec![0u8; READ_CHUNK],
                pending: Vec::new(),
                events: Vec::new(),
                next_peer: 0,
                outbound_cap,
                inner: Arc::clone(&inner),
                metrics: Arc::clone(&metrics),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("f2pm-serve-reactor-{id}"))
                    .spawn(move || reactor.run())
                    .expect("spawn reactor"),
            );
        }
        // Reactor 0 owns the listener through its clone; the bind-time
        // handle closes when `listener` drops here.
        Ok(ReactorPool { shareds, handles })
    }

    /// Wake every reactor (they observe the stop flag and tear down) and
    /// join the threads.
    pub(crate) fn shutdown(self) {
        for s in &self.shareds {
            s.waker.wake();
        }
        for h in self.handles {
            h.join().ok();
        }
    }
}

/// What driving a connection decided.
enum Verdict {
    /// Still live; interest already re-registered.
    Keep,
    /// Close it (counts a plain close).
    Close,
    /// Close it and count a slow-consumer eviction.
    Evict,
}

/// Per-frame processing outcome.
enum Flow {
    Continue,
    /// Protocol violation or dead pool: close without ceremony.
    Fatal,
}

struct Reactor {
    id: usize,
    poller: Poller,
    shared: Arc<ReactorShared>,
    peers: Vec<Arc<ReactorShared>>,
    listener: Option<TcpListener>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Tokens with a parked shard event (retried every turn).
    parked: Vec<u64>,
    /// Shared read scratch: one per reactor, not per connection.
    scratch: Vec<u8>,
    /// Reply staging for the connection currently being pumped.
    pending: Vec<Message>,
    events: Vec<Event>,
    next_peer: usize,
    outbound_cap: usize,
    inner: Arc<Inner>,
    metrics: Arc<ServeMetrics>,
}

impl Reactor {
    fn run(mut self) {
        loop {
            // Parked events poll the shard queue on a short tick; an
            // otherwise-idle reactor sleeps until epoll/eventfd activity.
            let timeout = if self.parked.is_empty() {
                None
            } else {
                Some(Duration::from_millis(1))
            };
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                events.clear();
            }
            self.events = events;
            let turn = Instant::now();
            if self.inner.stop.load(Ordering::SeqCst) {
                self.teardown();
                return;
            }
            for i in 0..self.events.len() {
                let ev = self.events[i];
                match ev.token {
                    WAKER_TOKEN => self.shared.waker.drain(),
                    LISTENER_TOKEN => self.accept_burst(),
                    token => {
                        if let Some(idx) = self.live_idx(token) {
                            if ev.error {
                                self.close_conn(idx, false);
                            } else {
                                self.pump(idx);
                            }
                        }
                    }
                }
            }
            self.drain_inbox();
            self.retry_parked();
            self.metrics.record_reactor_turn(turn.elapsed());
        }
    }

    /// Slab index for `token` if the generation still matches (a stale
    /// event for a recycled slot is ignored).
    fn live_idx(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let slot = self.slots.get(idx)?;
        (slot.gen == gen && slot.conn.is_some()).then_some(idx)
    }

    fn accept_burst(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    if self.inner.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    self.metrics.connection_opened();
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if target == self.id {
                        self.register_conn(stream);
                    } else {
                        let peer = &self.peers[target];
                        peer.inbox.lock().new_conns.push(stream);
                        peer.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // EMFILE/ECONNABORTED etc. Brief pause so the
                    // level-triggered retry doesn't spin the reactor.
                    std::thread::sleep(Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    /// Take ownership of an accepted socket into this reactor's slab.
    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.metrics.connection_closed();
            return;
        }
        stream.set_nodelay(true).ok();
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[idx];
        slot.gen = slot.gen.wrapping_add(1);
        let token = token_of(slot.gen, idx);
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            self.metrics.connection_closed();
            return;
        }
        slot.conn = Some(Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Arc::new(Mutex::new(Outbound::new())),
            interest: Interest::READ,
            token,
            host: 0,
            version: 0,
            handshaken: false,
            subscribed: false,
            unsub_sent: false,
            parked: None,
            eof: false,
            closing: false,
        });
    }

    fn drain_inbox(&mut self) {
        let (new_conns, notify) = {
            let mut inbox = self.shared.inbox.lock();
            (
                std::mem::take(&mut inbox.new_conns),
                std::mem::take(&mut inbox.notify),
            )
        };
        for stream in new_conns {
            if self.inner.stop.load(Ordering::SeqCst) {
                self.metrics.connection_closed();
                continue;
            }
            self.register_conn(stream);
        }
        for token in notify {
            if let Some(idx) = self.live_idx(token) {
                self.flush_notified(idx);
            }
        }
    }

    /// Handle a shard worker's "new outbound bytes" (or eviction) nudge.
    fn flush_notified(&mut self, idx: usize) {
        let verdict = {
            let conn = self.slots[idx].conn.as_mut().expect("live conn");
            conn.out.lock().notified = false;
            finalize(conn, &self.inner, &self.poller)
        };
        self.settle(idx, verdict);
    }

    /// Retry every parked shard event; a freed queue slot resumes the
    /// connection's decode exactly where it stopped.
    fn retry_parked(&mut self) {
        let tokens = std::mem::take(&mut self.parked);
        for token in tokens {
            if let Some(idx) = self.live_idx(token) {
                self.pump(idx);
            }
        }
    }

    /// Drive one connection: deliver a parked event if any, drain the
    /// socket through the shared scratch, answer reads, flush outbound,
    /// and re-register interest.
    fn pump(&mut self, idx: usize) {
        let this = &mut *self;
        let conn = this.slots[idx].conn.as_mut().expect("live conn");
        let verdict = pump_conn(
            conn,
            &mut this.scratch,
            &mut this.pending,
            &this.inner,
            &this.metrics,
            &this.shared,
            this.outbound_cap,
            &this.poller,
        );
        if matches!(verdict, Verdict::Keep) && conn.parked.is_some() {
            let token = conn.token;
            if !this.parked.contains(&token) {
                this.parked.push(token);
            }
        }
        self.settle(idx, verdict);
    }

    fn settle(&mut self, idx: usize, verdict: Verdict) {
        match verdict {
            Verdict::Keep => {}
            Verdict::Close => self.close_conn(idx, false),
            Verdict::Evict => self.close_conn(idx, true),
        }
    }

    fn close_conn(&mut self, idx: usize, evicted: bool) {
        let slot = &mut self.slots[idx];
        let Some(conn) = slot.conn.take() else {
            return;
        };
        self.parked.retain(|&t| t != conn.token);
        // Shard workers holding this writer fail fast from now on (they
        // drop their subscription on the send error).
        conn.out.lock().dead = true;
        self.poller.delete(conn.stream.as_raw_fd()).ok();
        if conn.subscribed && !conn.unsub_sent {
            self.inner
                .pool
                .send(conn.host, ShardEvent::Unsubscribe { host: conn.host })
                .ok();
        }
        self.free.push(idx);
        if evicted {
            self.metrics.connection_evicted_slow();
        }
        self.metrics.connection_closed();
    }

    /// Stop-flag teardown: close every connection (unsubscribing), then
    /// exit; parked events are dropped with the queues about to drain.
    fn teardown(mut self) {
        for idx in 0..self.slots.len() {
            if self.slots[idx].conn.is_some() {
                self.close_conn(idx, false);
            }
        }
    }
}

/// The per-connection drive logic (free function so the disjoint borrows
/// of the reactor's fields stay obvious).
#[allow(clippy::too_many_arguments)]
fn pump_conn(
    conn: &mut Conn,
    scratch: &mut [u8],
    pending: &mut Vec<Message>,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
    shared: &Arc<ReactorShared>,
    outbound_cap: usize,
    poller: &Poller,
) -> Verdict {
    // A parked event always goes first: per-connection order is arrival
    // order, so no later frame may overtake it.
    if let Some(ev) = conn.parked.take() {
        match inner.pool.try_send(conn.host, ev) {
            Ok(None) => {}
            Ok(Some(ev)) => {
                conn.parked = Some(ev);
                return finalize(conn, inner, poller);
            }
            Err(_) => return Verdict::Close,
        }
    }

    let mut reads = 0;
    while !conn.closing && conn.parked.is_none() {
        // Drain whole frames already buffered in the decoder.
        let mut fatal = false;
        loop {
            if conn.closing || conn.parked.is_some() {
                break;
            }
            let started = Instant::now();
            match conn.decoder.try_frame() {
                Ok(Some(msg)) => {
                    metrics.record_decode(started.elapsed());
                    match process_msg(msg, conn, inner, metrics, shared, outbound_cap, pending) {
                        Flow::Continue => {}
                        Flow::Fatal => {
                            fatal = true;
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            return Verdict::Close;
        }
        if conn.closing || conn.parked.is_some() || conn.eof || reads >= MAX_READS_PER_TURN {
            // Level-triggered epoll re-reports a still-readable socket
            // next turn when the read budget ran out.
            break;
        }
        match (&conn.stream).read(scratch) {
            Ok(0) => conn.eof = true,
            Ok(n) => {
                reads += 1;
                let mut off = 0;
                if conn.decoder.buffered() == 0 {
                    // Fast path: decode whole frames straight off the
                    // shared scratch; only a partial tail is copied into
                    // the per-connection decoder below.
                    while !conn.closing && conn.parked.is_none() {
                        let started = Instant::now();
                        match Message::try_frame_from(&scratch[off..n]) {
                            Ok(Some((msg, used))) => {
                                off += used;
                                metrics.record_decode(started.elapsed());
                                match process_msg(
                                    msg,
                                    conn,
                                    inner,
                                    metrics,
                                    shared,
                                    outbound_cap,
                                    pending,
                                ) {
                                    Flow::Continue => {}
                                    Flow::Fatal => return Verdict::Close,
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return Verdict::Close,
                        }
                    }
                }
                conn.decoder.push_bytes(&scratch[off..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close,
        }
    }

    // Clean EOF once everything decoded and delivered; EOF mid-frame is
    // a protocol error (same as the threaded edge).
    if conn.eof && !conn.closing && conn.parked.is_none() {
        if conn.decoder.buffered() > 0 {
            return Verdict::Close;
        }
        conn.closing = true;
    }

    // Stage replies into the outbound buffer (v1 connections have no
    // writer: replies are dropped, matching the threaded edge).
    if !pending.is_empty() {
        if conn.version >= 2 {
            let started = Instant::now();
            let mut out = conn.out.lock();
            if !out.dead {
                for msg in pending.iter() {
                    msg.encode_into(&mut out.buf);
                }
                if out.pending() > outbound_cap {
                    out.dead = true;
                    out.evicted = true;
                }
            }
            drop(out);
            metrics.record_reply(started.elapsed());
        }
        pending.clear();
    }

    finalize(conn, inner, poller)
}

/// Flush what the socket will take, then either close (dead, or a
/// drained closing connection whose writer is gone) or re-register the
/// right interest.
fn finalize(conn: &mut Conn, inner: &Arc<Inner>, poller: &Poller) -> Verdict {
    let mut out = conn.out.lock();
    while out.pos < out.buf.len() {
        let (pos, len) = (out.pos, out.buf.len());
        match (&conn.stream).write(&out.buf[pos..len]) {
            Ok(0) => {
                out.dead = true;
                break;
            }
            Ok(n) => out.pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                out.dead = true;
                break;
            }
        }
    }
    if out.pos >= out.buf.len() {
        out.buf.clear();
        out.pos = 0;
    }
    if out.dead {
        return if out.evicted {
            Verdict::Evict
        } else {
            Verdict::Close
        };
    }
    let unflushed = out.pending() > 0;
    let writer_gone = out.writer_gone;
    drop(out);
    if conn.closing {
        if !conn.subscribed {
            return Verdict::Close;
        }
        // Draining close: in-flight datapoints may still produce alerts,
        // so queue the Unsubscribe (ordered behind them in the shard
        // queue) and hold the socket open until the worker drops its
        // writer and the buffer has flushed — exactly when a threaded-
        // edge client would see EOF.
        if !conn.unsub_sent {
            if inner
                .pool
                .send(conn.host, ShardEvent::Unsubscribe { host: conn.host })
                .is_err()
            {
                return Verdict::Close;
            }
            conn.unsub_sent = true;
        }
        if writer_gone && !unflushed {
            return Verdict::Close;
        }
    }
    let want = Interest {
        readable: !conn.closing && !conn.eof && conn.parked.is_none(),
        writable: unflushed,
    };
    if want != conn.interest {
        if poller
            .modify(conn.stream.as_raw_fd(), conn.token, want)
            .is_err()
        {
            return Verdict::Close;
        }
        conn.interest = want;
    }
    Verdict::Keep
}

fn process_msg(
    msg: Message,
    conn: &mut Conn,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
    shared: &Arc<ReactorShared>,
    outbound_cap: usize,
    pending: &mut Vec<Message>,
) -> Flow {
    if !conn.handshaken {
        return match msg {
            Message::Hello { version, host_id }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                conn.host = host_id;
                conn.version = version;
                conn.handshaken = true;
                if version >= 2 {
                    let writer = ClientWriter::from_reactor(ReactorSink {
                        out: Arc::clone(&conn.out),
                        shared: Arc::clone(shared),
                        token: conn.token,
                        cap: outbound_cap,
                    });
                    if inner
                        .pool
                        .send(
                            conn.host,
                            ShardEvent::Subscribe {
                                host: conn.host,
                                writer,
                            },
                        )
                        .is_err()
                    {
                        return Flow::Fatal;
                    }
                    conn.subscribed = true;
                }
                Flow::Continue
            }
            _ => Flow::Fatal,
        };
    }
    match msg {
        Message::Bye => {
            conn.closing = true;
            Flow::Continue
        }
        Message::Datapoint(d) => {
            metrics.datapoint();
            try_send_or_park(
                conn,
                inner,
                ShardEvent::Datapoint {
                    host: conn.host,
                    d,
                    enqueued: Instant::now(),
                },
            )
        }
        Message::Fail { t } => {
            try_send_or_park(conn, inner, ShardEvent::Fail { host: conn.host, t })
        }
        ref m => {
            handle_read(m, conn.version, inner, metrics, pending);
            Flow::Continue
        }
    }
}

fn try_send_or_park(conn: &mut Conn, inner: &Arc<Inner>, event: ShardEvent) -> Flow {
    match inner.pool.try_send(conn.host, event) {
        Ok(None) => Flow::Continue,
        Ok(Some(ev)) => {
            conn.parked = Some(ev);
            Flow::Continue
        }
        Err(_) => Flow::Fatal,
    }
}
