//! The online prediction server.
//!
//! Accepts FMC connections (wire v1 *and* v2), decodes frames on one
//! reader thread per connection, and routes datapoints to the shard
//! workers over bounded queues (see [`crate::shard`]). v2 connections
//! additionally get:
//!
//! - `PredictRequest` → `RttfEstimate` replies, answered directly from the
//!   last-estimate board (readers never block on a shard worker);
//! - pushed `Alert`s when the host's predicted RTTF stays below the
//!   rejuvenation threshold (see [`AlertPolicy`]);
//! - `StatsRequest` → `Stats` snapshots of the serving metrics.
//!
//! v3 connections additionally get `MetricsRequest` → `MetricsText`:
//! the full Prometheus-style text exposition of the serve registry
//! (per-shard counters and queue depths, latency histogram, model
//! generation) with the process-global registry — training-stage span
//! timings, FMC/FMS transport counters — appended.
//!
//! Model hot-reloads go through the shared [`ModelRegistry`]: calling
//! [`ModelRegistry::install`] (or `reload_from_file`) swaps the model for
//! every host's next prediction without dropping a single connection.

use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::shard::{AlertPolicy, ClientWriter, EstimateBoard, ShardEvent, ShardPool};
use f2pm_monitor::wire::{Message, MAX_FRAME, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use parking_lot::Mutex;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Shard worker count (hosts are pinned `host % shards`).
    pub shards: usize,
    /// Bounded per-shard queue capacity (events).
    pub queue_cap: usize,
    /// When to push rejuvenation alerts.
    pub policy: AlertPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_cap: 1024,
            policy: AlertPolicy::default(),
        }
    }
}

/// Shared server state.
struct Inner {
    stop: AtomicBool,
    registry: Arc<ModelRegistry>,
    board: Arc<EstimateBoard>,
    pool: ShardPool,
}

/// The online prediction server (see the module docs).
pub struct PredictionServer;

impl PredictionServer {
    /// Bind `addr`, spawn the shard workers and the acceptor, and return a
    /// handle controlling the server.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> io::Result<ServeHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start(
            cfg.shards,
            cfg.queue_cap,
            Arc::clone(&registry),
            cfg.policy,
            Arc::clone(&metrics),
        );
        let board = pool.board();
        let inner = Arc::new(Inner {
            stop: AtomicBool::new(false),
            registry,
            board,
            pool,
        });
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let readers = Arc::clone(&readers);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("f2pm-serve-accept".to_string())
                .spawn(move || accept_loop(listener, inner, metrics, readers))
                .expect("spawn acceptor")
        };
        Ok(ServeHandle {
            addr,
            inner: Some(inner),
            metrics,
            accept: Some(accept),
            readers,
        })
    }
}

/// Running-server handle; dropping it without
/// [`ServeHandle::shutdown`] leaves the server running detached.
pub struct ServeHandle {
    addr: SocketAddr,
    inner: Option<Arc<Inner>>,
    metrics: Arc<ServeMetrics>,
    accept: Option<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServeHandle {
    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-reloadable model registry this server predicts with.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.inner.as_ref().expect("server running").registry)
    }

    /// A point-in-time metrics snapshot (queue depths and model generation
    /// included).
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = self.inner.as_ref().expect("server running");
        self.metrics
            .snapshot(inner.pool.queue_depths(), inner.registry.generation())
    }

    /// Stop accepting, close every connection, drain the shard queues and
    /// join all threads. Returns the final metrics snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        let inner = self.inner.take().expect("server running");
        inner.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        TcpStream::connect(self.addr).ok();
        if let Some(a) = self.accept.take() {
            a.join().ok();
        }
        let readers: Vec<_> = std::mem::take(&mut *self.readers.lock());
        for r in readers {
            r.join().ok();
        }
        let depths = inner.pool.queue_depths();
        let generation = inner.registry.generation();
        let snapshot = self.metrics.snapshot(depths, generation);
        match Arc::try_unwrap(inner) {
            Ok(inner) => inner.pool.shutdown(),
            Err(_) => unreachable!("all reader threads joined"),
        }
        snapshot
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<Inner>,
    metrics: Arc<ServeMetrics>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                metrics.connection_opened();
                let inner = Arc::clone(&inner);
                let metrics = Arc::clone(&metrics);
                let handle = std::thread::Builder::new()
                    .name("f2pm-serve-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, &inner, &metrics).ok();
                        metrics.connection_closed();
                    })
                    .expect("spawn reader");
                readers.lock().push(handle);
            }
            Err(_) => {
                // Transient accept errors (EMFILE, ECONNABORTED, EINTR)
                // must not kill the server.
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Read frames, honoring the stop flag: the stream has a short read
/// timeout, and a timeout at a *frame boundary* loops back to check stop.
/// Returns `Ok(None)` on clean EOF or stop.
fn read_frame(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match read_full(stream, &mut len_buf, stop, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed => return Ok(None),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len} (max {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload, stop, false)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed => return Ok(None),
    }
    Message::decode(&payload).map(Some)
}

enum ReadOutcome {
    Done,
    Closed,
}

/// `read_exact` with stop-awareness. `at_boundary` means EOF before the
/// first byte is a clean close (between frames) rather than a truncation.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    at_boundary: bool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Closed);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_boundary => return Ok(ReadOutcome::Closed),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

fn serve_connection(
    mut stream: TcpStream,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();

    // Handshake first: anything else is a protocol violation.
    let (host, version) = match read_frame(&mut stream, &inner.stop)? {
        Some(Message::Hello { version, host_id })
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            (host_id, version)
        }
        _ => return Ok(()),
    };

    // v2 clients get a writer: replies and pushed alerts share it, so
    // frames never interleave.
    let writer = if version >= 2 {
        let w = ClientWriter::new(stream.try_clone()?);
        inner.pool.send(
            host,
            ShardEvent::Subscribe {
                host,
                writer: w.clone(),
            },
        )?;
        Some(w)
    } else {
        None
    };

    let result = connection_loop(&mut stream, host, version, writer.as_ref(), inner, metrics);
    if writer.is_some() {
        inner.pool.send(host, ShardEvent::Unsubscribe { host }).ok();
    }
    result
}

fn connection_loop(
    stream: &mut TcpStream,
    host: u32,
    version: u16,
    writer: Option<&ClientWriter>,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<()> {
    while let Some(msg) = read_frame(stream, &inner.stop)? {
        match msg {
            Message::Datapoint(d) => {
                metrics.datapoint();
                // Blocking send = backpressure through TCP, never a drop.
                inner.pool.send(host, ShardEvent::Datapoint { host, d })?;
            }
            Message::Fail { t } => {
                inner.pool.send(host, ShardEvent::Fail { host, t })?;
            }
            Message::Bye => break,
            Message::PredictRequest { host_id } => {
                metrics.predict_request();
                let reply = match inner.board.get(host_id) {
                    Some(est) => Message::RttfEstimate {
                        host_id,
                        t: est.t,
                        rttf: Some(est.rttf),
                        model_generation: est.generation,
                    },
                    None => Message::RttfEstimate {
                        host_id,
                        t: 0.0,
                        rttf: None,
                        model_generation: inner.registry.generation(),
                    },
                };
                if let Some(w) = writer {
                    w.send(&reply)?;
                }
            }
            Message::StatsRequest => {
                metrics.stats_request();
                let snapshot =
                    metrics.snapshot(inner.pool.queue_depths(), inner.registry.generation());
                if let Some(w) = writer {
                    w.send(&snapshot.to_message())?;
                }
            }
            // Metrics scraping is a v3 feature; a request arriving on an
            // older-versioned connection is a protocol violation we ignore
            // (the handshake already fixed what the client may speak).
            Message::MetricsRequest if version >= 3 => {
                metrics.metrics_request();
                let text =
                    metrics.expose_text(&inner.pool.queue_depths(), inner.registry.generation());
                if let Some(w) = writer {
                    w.send(&Message::metrics_text(text))?;
                }
            }
            // Server-bound only; a client echoing server messages is
            // ignored, like unknown traffic in the passive FMS.
            Message::MetricsRequest
            | Message::MetricsText { .. }
            | Message::Hello { .. }
            | Message::RttfEstimate { .. }
            | Message::Alert { .. }
            | Message::Stats { .. } => {}
        }
    }
    Ok(())
}
