//! The online prediction server.
//!
//! Accepts FMC connections (wire v1 *and* v2) and routes datapoints to
//! the shard workers over bounded queues (see [`crate::shard`]). Two
//! interchangeable edges decode the frames:
//!
//! - the **reactor edge** (Linux, default): `ServeConfig::reactors`
//!   epoll event-loop threads, each owning a slab of nonblocking
//!   connections — the 10k+-client path (see [`crate::reactor`]);
//! - the **threaded edge** (`reactors: 0`, and every non-Linux build):
//!   the original accept loop + one blocking reader thread per
//!   connection.
//!
//! Both edges speak identical wire semantics (pinned by the equivalence
//! tests). v2 connections additionally get:
//!
//! - `PredictRequest` → `RttfEstimate` replies, answered directly from the
//!   last-estimate board (readers never block on a shard worker);
//! - pushed `Alert`s when the host's predicted RTTF stays below the
//!   rejuvenation threshold (see [`AlertPolicy`]);
//! - `StatsRequest` → `Stats` snapshots of the serving metrics.
//!
//! v3 connections additionally get `MetricsRequest` → `MetricsText`:
//! the full Prometheus-style text exposition of the serve registry
//! (per-shard counters and queue depths, latency histogram, model
//! generation) with the process-global registry — training-stage span
//! timings, FMC/FMS transport counters — appended.
//!
//! v4 connections speak the fleet plane (see [`crate::fleet`]):
//! `StatsRequest` → `FleetSnapshot` (the instance-attributable
//! replacement for the anonymous `Stats` shape, which stays gated to
//! pre-v4 clients) and `TopKRequest` → `TopKReply`, the instance's K
//! hosts nearest failure answered from the seqlock estimate board.
//!
//! Model hot-reloads go through the shared [`ModelRegistry`]: calling
//! [`ModelRegistry::install`] (or `reload_from_file`) swaps the model for
//! every host's next prediction without dropping a single connection.

use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::shard::{AlertPolicy, ClientWriter, EstimateBoard, ShardEvent, ShardPool};
use f2pm_monitor::wire::{FrameDecoder, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Shard worker count (hosts are pinned `host % shards`).
    pub shards: usize,
    /// Bounded per-shard queue capacity (events).
    pub queue_cap: usize,
    /// Max events a shard worker drains per wakeup (`1` = per-event
    /// processing; the batched path is bit-identical, just fewer model
    /// calls and wakeups).
    pub batch_cap: usize,
    /// When to push rejuvenation alerts.
    pub policy: AlertPolicy,
    /// Epoll reactor threads serving the connection edge. `0` selects
    /// the thread-per-connection edge (also the only edge off Linux).
    /// Defaults to the machine's available parallelism.
    pub reactors: usize,
    /// Bound (bytes) on one connection's pending outbound buffer on the
    /// reactor edge; a slow consumer exceeding it is disconnected
    /// (`f2pm_serve_conns_evicted_slow`) instead of growing memory.
    pub outbound_cap: usize,
    /// Stable identity of this instance within a fleet. Surfaced in the
    /// v4 `FleetSnapshot`/`TopKReply` frames and in the exposition as
    /// `f2pm_serve_instance_info{instance="<id>"} 1`, so merged fleet
    /// scrapes stay attributable. `0` for a standalone instance.
    pub instance_id: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_cap: 1024,
            batch_cap: 64,
            policy: AlertPolicy::default(),
            reactors: default_reactors(),
            outbound_cap: 256 * 1024,
            instance_id: 0,
        }
    }
}

impl ServeConfig {
    /// Map the validated fleet-facing [`f2pm::ServeOptions`] onto the
    /// server tuning knobs. Model-source resolution (artifact store, model
    /// file, boot-training) stays with the caller — the options only carry
    /// what the server itself needs.
    pub fn from_options(o: &f2pm::ServeOptions) -> ServeConfig {
        ServeConfig {
            shards: o.shards,
            queue_cap: o.queue_cap,
            policy: AlertPolicy {
                rttf_threshold_s: o.alert_threshold_s,
                consecutive_hits: o.alert_hits,
            },
            reactors: o.reactors.unwrap_or_else(default_reactors),
            instance_id: o.instance_id,
            ..ServeConfig::default()
        }
    }
}

/// Default reactor count: one per available core on Linux; `0`
/// (threaded edge) elsewhere, where no poller backend exists.
pub fn default_reactors() -> usize {
    if cfg!(target_os = "linux") {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        0
    }
}

/// Shared server state (both edges; the reactor drives it too).
pub(crate) struct Inner {
    pub(crate) stop: AtomicBool,
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) board: Arc<EstimateBoard>,
    pub(crate) pool: ShardPool,
    pub(crate) instance_id: u32,
    /// Read-half clones of every live *threaded-edge* connection, so
    /// shutdown can `Shutdown::Both` them and wake reads blocked inside
    /// the (long) read timeout instead of polling on a short one.
    /// Reactor connections live in their reactor's slab instead.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// The online prediction server (see the module docs).
pub struct PredictionServer;

impl PredictionServer {
    /// Bind `addr`, spawn the shard workers and the acceptor, and return a
    /// handle controlling the server.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> io::Result<ServeHandle> {
        Self::start_with_tap(addr, cfg, registry, None)
    }

    /// [`PredictionServer::start`] with a continuous-retraining tap: the
    /// shard workers mirror every `Datapoint`/`Fail` into it (lossy,
    /// never blocking the ingest path), feeding the background
    /// [`crate::retrain::RetrainWorker`] that publishes refreshed models
    /// back through the artifact store.
    pub fn start_with_tap(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
        tap: Option<crate::retrain::RetrainTap>,
    ) -> io::Result<ServeHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let pool = ShardPool::start_tapped(
            cfg.shards,
            cfg.queue_cap,
            cfg.batch_cap,
            Arc::clone(&registry),
            cfg.policy,
            Arc::clone(&metrics),
            tap,
        );
        let board = pool.board();
        metrics.set_instance_info(cfg.instance_id);
        let inner = Arc::new(Inner {
            stop: AtomicBool::new(false),
            registry,
            board,
            pool,
            instance_id: cfg.instance_id,
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let edge = start_edge(listener, &cfg, &inner, &metrics)?;
        Ok(ServeHandle {
            addr,
            inner: Some(inner),
            metrics,
            edge: Some(edge),
        })
    }
}

/// The running connection edge: reactor pool or acceptor + readers.
enum Edge {
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorPool),
    Threaded {
        accept: std::thread::JoinHandle<()>,
        readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    },
}

#[cfg(target_os = "linux")]
fn start_edge(
    listener: TcpListener,
    cfg: &ServeConfig,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<Edge> {
    if cfg.reactors == 0 {
        return start_threaded_edge(listener, inner, metrics);
    }
    listener.set_nonblocking(true)?;
    let pool = crate::reactor::ReactorPool::start(
        listener,
        cfg.reactors,
        cfg.outbound_cap.max(1),
        Arc::clone(inner),
        Arc::clone(metrics),
    )?;
    Ok(Edge::Reactor(pool))
}

#[cfg(not(target_os = "linux"))]
fn start_edge(
    listener: TcpListener,
    _cfg: &ServeConfig,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<Edge> {
    start_threaded_edge(listener, inner, metrics)
}

fn start_threaded_edge(
    listener: TcpListener,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<Edge> {
    let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let inner = Arc::clone(inner);
        let readers = Arc::clone(&readers);
        let metrics = Arc::clone(metrics);
        std::thread::Builder::new()
            .name("f2pm-serve-accept".to_string())
            .spawn(move || accept_loop(listener, inner, metrics, readers))
            .expect("spawn acceptor")
    };
    Ok(Edge::Threaded { accept, readers })
}

/// Running-server handle; dropping it without
/// [`ServeHandle::shutdown`] leaves the server running detached.
pub struct ServeHandle {
    addr: SocketAddr,
    inner: Option<Arc<Inner>>,
    metrics: Arc<ServeMetrics>,
    edge: Option<Edge>,
}

impl ServeHandle {
    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-reloadable model registry this server predicts with.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.inner.as_ref().expect("server running").registry)
    }

    /// The live estimate board (what a v4 `TopKRequest` is answered from).
    /// In-process fleet harnesses read it to cross-check wire-level
    /// rankings against ground truth.
    pub fn board(&self) -> Arc<EstimateBoard> {
        Arc::clone(&self.inner.as_ref().expect("server running").board)
    }

    /// This instance's stable fleet identity.
    pub fn instance_id(&self) -> u32 {
        self.inner.as_ref().expect("server running").instance_id
    }

    /// A point-in-time metrics snapshot (queue depths and model generation
    /// included).
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = self.inner.as_ref().expect("server running");
        self.metrics
            .snapshot(inner.pool.queue_depths(), inner.registry.generation())
    }

    /// Stop accepting, close every connection, drain the shard queues and
    /// join all threads. Returns the final metrics snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        let inner = self.inner.take().expect("server running");
        inner.stop.store(true, Ordering::SeqCst);
        match self.edge.take().expect("edge running") {
            #[cfg(target_os = "linux")]
            Edge::Reactor(pool) => {
                // Eventfd wake per reactor: each observes the stop flag,
                // closes its slab, and exits. No throwaway connection.
                pool.shutdown();
            }
            Edge::Threaded { accept, readers } => {
                // Wake every reader blocked in its (long) read timeout: a
                // shutdown connection returns immediately, and the reader
                // sees the stop flag without ever having polled for it.
                for conn in inner.conns.lock().values() {
                    conn.shutdown(Shutdown::Both).ok();
                }
                // Unblock the acceptor with a throwaway connection.
                TcpStream::connect(self.addr).ok();
                accept.join().ok();
                let readers: Vec<_> = std::mem::take(&mut *readers.lock());
                for r in readers {
                    r.join().ok();
                }
            }
        }
        let depths = inner.pool.queue_depths();
        let generation = inner.registry.generation();
        let snapshot = self.metrics.snapshot(depths, generation);
        match Arc::try_unwrap(inner) {
            Ok(inner) => inner.pool.shutdown(),
            Err(_) => unreachable!("all edge threads joined"),
        }
        snapshot
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<Inner>,
    metrics: Arc<ServeMetrics>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                metrics.connection_opened();
                let conn_id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().insert(conn_id, clone);
                }
                let inner = Arc::clone(&inner);
                let metrics = Arc::clone(&metrics);
                let handle = std::thread::Builder::new()
                    .name("f2pm-serve-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, &inner, &metrics).ok();
                        inner.conns.lock().remove(&conn_id);
                        metrics.connection_closed();
                    })
                    .expect("spawn reader");
                // Reap finished readers before tracking the new one:
                // without this a long-lived server leaks one JoinHandle
                // per churned connection.
                let mut readers = readers.lock();
                readers.retain(|h| !h.is_finished());
                readers.push(handle);
            }
            Err(_) => {
                // Transient accept errors (EMFILE, ECONNABORTED, EINTR)
                // must not kill the server.
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Outcome of one buffered read into a connection's [`FrameDecoder`].
enum Fill {
    /// Bytes arrived; the decoder may now hold one or more whole frames.
    Data,
    /// Peer closed (or shutdown woke the socket).
    Eof,
    /// The server is stopping.
    Stopped,
}

/// Pull the next chunk off the socket into the decoder, honoring the stop
/// flag. The stream's read timeout is long (1 s) because it is a backstop,
/// not a poll: shutdown wakes blocked reads by `Shutdown::Both`-ing the
/// tracked connection, so stop is only *checked* here, never waited for.
fn fill_decoder(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    stop: &AtomicBool,
) -> io::Result<Fill> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(Fill::Stopped);
        }
        match decoder.fill_from(stream) {
            Ok(0) => return Ok(Fill::Eof),
            Ok(_) => return Ok(Fill::Data),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Blocking next-frame (handshake path). `Ok(None)` on clean EOF or stop.
fn next_frame(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    stop: &AtomicBool,
) -> io::Result<Option<Message>> {
    loop {
        if let Some(msg) = decoder.try_frame()? {
            return Ok(Some(msg));
        }
        match fill_decoder(stream, decoder, stop)? {
            Fill::Data => {}
            Fill::Stopped => return Ok(None),
            Fill::Eof => {
                return if decoder.buffered() == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(1))).ok();
    let mut decoder = FrameDecoder::new();

    // Handshake first: anything else is a protocol violation.
    let (host, version) = match next_frame(&mut stream, &mut decoder, &inner.stop)? {
        Some(Message::Hello { version, host_id })
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            (host_id, version)
        }
        _ => return Ok(()),
    };

    // v2 clients get a writer: replies and pushed alerts share it, so
    // frames never interleave.
    let writer = if version >= 2 {
        let w = ClientWriter::new(stream.try_clone()?);
        inner.pool.send(
            host,
            ShardEvent::Subscribe {
                host,
                writer: w.clone(),
            },
        )?;
        Some(w)
    } else {
        None
    };

    let result = connection_loop(
        &mut stream,
        &mut decoder,
        host,
        version,
        writer.as_ref(),
        inner,
        metrics,
    );
    if writer.is_some() {
        inner.pool.send(host, ShardEvent::Unsubscribe { host }).ok();
    }
    result
}

fn connection_loop(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    host: u32,
    version: u16,
    writer: Option<&ClientWriter>,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
) -> io::Result<()> {
    let mut pending: Vec<Message> = Vec::new();
    let mut burst: Vec<Message> = Vec::new();
    'conn: loop {
        // Decode every whole frame the last read buffered — one syscall
        // can yield dozens of frames.
        let mut saw_bye = false;
        loop {
            let started = Instant::now();
            let Some(msg) = decoder.try_frame()? else {
                break;
            };
            metrics.record_decode(started.elapsed());
            if matches!(msg, Message::Bye) {
                saw_bye = true;
                break;
            }
            burst.push(msg);
        }
        // Pass 1 — reads first: predict/stats/metrics requests are
        // answered from the board and flushed in one coalesced write
        // BEFORE any ingest work. Board reads carry no ordering guarantee
        // relative to in-flight datapoints (shard workers publish
        // asynchronously), so a reply must never wait out a full shard
        // queue.
        for msg in &burst {
            handle_read(msg, version, inner, metrics, &mut pending);
        }
        flush_replies(writer, &mut pending, metrics)?;
        // Pass 2 — apply shard-bound events in arrival order (blocking
        // send = backpressure through TCP, never a drop).
        for msg in burst.drain(..) {
            match msg {
                Message::Datapoint(d) => {
                    metrics.datapoint();
                    inner.pool.send(
                        host,
                        ShardEvent::Datapoint {
                            host,
                            d,
                            enqueued: Instant::now(),
                        },
                    )?;
                }
                Message::Fail { t } => {
                    inner.pool.send(host, ShardEvent::Fail { host, t })?;
                }
                _ => {}
            }
        }
        if saw_bye {
            break 'conn;
        }
        match fill_decoder(stream, decoder, &inner.stop)? {
            Fill::Data => {}
            Fill::Stopped => break,
            Fill::Eof => {
                if decoder.buffered() == 0 {
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ));
            }
        }
    }
    // Replies queued in the same burst as a Bye still go out.
    flush_replies(writer, &mut pending, metrics)
}

/// Write everything the current burst generated in one coalesced
/// `write_all` under one writer-lock acquisition.
fn flush_replies(
    writer: Option<&ClientWriter>,
    pending: &mut Vec<Message>,
    metrics: &ServeMetrics,
) -> io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    if let Some(w) = writer {
        let started = Instant::now();
        w.send_all(pending)?;
        metrics.record_reply(started.elapsed());
    }
    pending.clear();
    Ok(())
}

/// Answer one read-type request (lock-free board lookup, stats snapshot,
/// metrics exposition); replies queue on `pending` for one coalesced
/// write. Shard-bound events and everything else are left to pass 2.
/// Shared verbatim by the reactor edge, so both edges answer
/// byte-identically.
pub(crate) fn handle_read(
    msg: &Message,
    version: u16,
    inner: &Arc<Inner>,
    metrics: &Arc<ServeMetrics>,
    pending: &mut Vec<Message>,
) {
    match *msg {
        Message::PredictRequest { host_id } => {
            metrics.predict_request();
            let reply = match inner.board.get(host_id) {
                Some(est) => Message::RttfEstimate {
                    host_id,
                    t: est.t,
                    rttf: Some(est.rttf),
                    model_generation: est.generation,
                },
                None => Message::RttfEstimate {
                    host_id,
                    t: 0.0,
                    rttf: None,
                    model_generation: inner.registry.generation(),
                },
            };
            pending.push(reply);
        }
        Message::StatsRequest => {
            metrics.stats_request();
            let snapshot = metrics.snapshot(inner.pool.queue_depths(), inner.registry.generation());
            // The anonymous v2 `Stats` shape is deprecated behind the
            // version gate: v4 clients get the instance-attributable
            // `FleetSnapshot`, older clients keep the shape they know.
            if version >= 4 {
                pending
                    .push(snapshot.to_fleet_snapshot(inner.instance_id, inner.board.len() as u32));
            } else {
                pending.push(snapshot.to_message());
            }
        }
        // Metrics scraping is a v3 feature; a request arriving on an
        // older-versioned connection is a protocol violation we ignore
        // (the handshake already fixed what the client may speak).
        Message::MetricsRequest if version >= 3 => {
            metrics.metrics_request();
            let text = metrics.expose_text(&inner.pool.queue_depths(), inner.registry.generation());
            pending.push(Message::metrics_text(text));
        }
        // Fleet ranking is a v4 feature: the K hosts nearest failure,
        // answered straight off the seqlock estimate board — no connection
        // scan, no worker stall.
        Message::TopKRequest { k } if version >= 4 => {
            metrics.stats_request();
            let entries = inner
                .board
                .top_k((k as usize).min(f2pm_monitor::wire::MAX_TOPK))
                .into_iter()
                .map(|(host_id, est)| f2pm_monitor::wire::TopKEntry {
                    host_id,
                    t: est.t,
                    rttf: est.rttf,
                    model_generation: est.generation,
                })
                .collect();
            pending.push(Message::TopKReply {
                instance_id: inner.instance_id,
                entries,
            });
        }
        // Shard-bound events (pass 2) and server-bound-only traffic a
        // client has no business echoing (ignored, like unknown traffic
        // in the passive FMS).
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use f2pm_features::AggregationConfig;
    use f2pm_ml::linreg::LinearModel;
    use f2pm_ml::persist::SavedModel;

    fn test_registry() -> Arc<crate::ModelRegistry> {
        registry::ModelRegistry::new(
            SavedModel::Linear(LinearModel {
                intercept: 1000.0,
                coefficients: vec![-2.0, 0.0],
            }),
            vec!["swap_used".to_string(), "swap_used_slope".to_string()],
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        )
        .unwrap()
    }

    /// Regression: the threaded edge used to push one `JoinHandle` per
    /// accepted connection and never prune it, so a long-lived server
    /// leaked a handle per churned connection. The acceptor now reaps
    /// finished readers on every accept; the tracked set must stay
    /// bounded by the *live* connection count, not total churn.
    #[test]
    fn threaded_edge_reader_handles_do_not_grow_under_churn() {
        let server = PredictionServer::start(
            "127.0.0.1:0",
            ServeConfig {
                reactors: 0,
                ..ServeConfig::default()
            },
            test_registry(),
        )
        .unwrap();
        let addr = server.addr();
        let readers = match server.edge.as_ref().expect("edge running") {
            Edge::Threaded { readers, .. } => Arc::clone(readers),
            #[cfg(target_os = "linux")]
            Edge::Reactor(_) => unreachable!("reactors: 0 selects the threaded edge"),
        };

        const CHURN: usize = 40;
        for _ in 0..CHURN {
            let mut s = TcpStream::connect(addr).unwrap();
            Message::Hello {
                version: 1,
                host_id: 1,
            }
            .write_to(&mut s)
            .unwrap();
            Message::Bye.write_to(&mut s).unwrap();
            // Wait until this connection's reader actually exited (it
            // removes itself from the conns map on the way out) so every
            // later accept sees a reapable finished handle.
            for _ in 0..2500 {
                if inner_live_conns(&server) == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // One extra accept reaps everything the churn left behind.
        let _nudge = TcpStream::connect(addr).unwrap();
        let mut tracked = usize::MAX;
        for _ in 0..2500 {
            tracked = readers.lock().len();
            if tracked <= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            tracked <= 2,
            "{tracked} reader handles tracked after {CHURN} churned connections"
        );
        server.shutdown();
    }

    fn inner_live_conns(server: &ServeHandle) -> usize {
        server
            .inner
            .as_ref()
            .expect("server running")
            .conns
            .lock()
            .len()
    }

    /// The default config picks the reactor edge on Linux and a sane
    /// outbound bound everywhere.
    #[test]
    fn default_config_edges() {
        let cfg = ServeConfig::default();
        assert!(cfg.outbound_cap > 0);
        if cfg!(target_os = "linux") {
            assert!(cfg.reactors >= 1);
        } else {
            assert_eq!(cfg.reactors, 0);
        }
    }
}
