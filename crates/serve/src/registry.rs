//! Hot-reloadable model registry.
//!
//! The serving path must be able to swap in a freshly trained model (the
//! FMS keeps learning while the service predicts) without dropping
//! connections or resetting per-host window state. The registry therefore
//! separates two lifetimes:
//!
//! - the **registry** lives as long as the server and pins the input
//!   contract (column names + aggregation config, fixed at creation);
//! - the **model entry** is an immutable `Arc` the registry swaps
//!   atomically on every [`ModelRegistry::install`].
//!
//! Predictors never hold a concrete model. They hold a
//! [`ModelRegistry::shared_model`] handle — a thin [`Model`] that forwards
//! each prediction to the entry current *at that moment*. A hot-reload is
//! one `Arc` swap: in-flight predictions finish on the old entry (their
//! clone keeps it alive), the next window scores on the new one, and no
//! per-host `OnlinePredictor` buffer is touched.

use f2pm_features::AggregationConfig;
use f2pm_ml::persist::{self, SavedModel};
use f2pm_ml::Model;
use f2pm_registry::ModelStore;
use parking_lot::RwLock;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One installed model plus its generation stamp.
pub struct ModelEntry {
    /// The fitted model (any of the §III-D method suite).
    pub model: Box<dyn Model>,
    /// 1 for the boot model, +1 per reload.
    pub generation: u64,
    /// Type tag of the persisted model (`"linear"`, `"rep_tree"`, ...).
    pub kind: &'static str,
}

/// The registry: current model entry + the fixed input contract.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelEntry>>,
    generation: AtomicU64,
    columns: Vec<String>,
    agg: AggregationConfig,
}

impl ModelRegistry {
    /// Create a registry serving `saved` with the given input columns and
    /// aggregation config. Fails if the model width does not match the
    /// column count, or a column name is not part of the aggregated
    /// layout `agg` defines.
    pub fn new(
        saved: SavedModel,
        columns: Vec<String>,
        agg: AggregationConfig,
    ) -> io::Result<Arc<Self>> {
        let all = f2pm_features::aggregate::aggregated_column_names_with(&agg);
        for c in &columns {
            if !all.contains(c) {
                return Err(invalid(format!("unknown aggregated column {c:?}")));
            }
        }
        check_width(&saved, columns.len())?;
        let kind = saved.kind();
        let registry = Arc::new(ModelRegistry {
            current: RwLock::new(Arc::new(ModelEntry {
                model: saved.into_model(),
                generation: 1,
                kind,
            })),
            generation: AtomicU64::new(1),
            columns,
            agg,
        });
        Ok(registry)
    }

    /// Create a registry serving a model file, using the full aggregated
    /// column layout (the layout `f2pm train` fits against).
    pub fn from_file(path: impl AsRef<Path>, agg: AggregationConfig) -> io::Result<Arc<Self>> {
        let saved = persist::load(path)?;
        let columns = f2pm_features::aggregate::aggregated_column_names_with(&agg);
        Self::new(saved, columns, agg)
    }

    /// Cold-start from a model store: load the manifest-active artifact
    /// (checksum-verified) and serve it with the input contract the
    /// artifact's own metadata records — no training pass, no `--history`.
    /// Fails if nothing has been published yet.
    pub fn from_store(store: &ModelStore) -> io::Result<Arc<Self>> {
        let (generation, meta, saved) = store
            .load_active()
            .map_err(io::Error::from)?
            .ok_or_else(|| invalid("model store has no published generation".to_string()))?;
        let registry = Self::new(saved, meta.columns, meta.agg)?;
        set_store_generation_gauge(generation);
        Ok(registry)
    }

    /// Install a new model atomically; every shared-model handle sees it
    /// on its next prediction. Returns the new generation.
    pub fn install(&self, saved: SavedModel) -> io::Result<u64> {
        check_width(&saved, self.columns.len())?;
        let kind = saved.kind();
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *self.current.write() = Arc::new(ModelEntry {
            model: saved.into_model(),
            generation,
            kind,
        });
        Ok(generation)
    }

    /// Reload the model from a file (the hot-reload path for `f2pm serve`
    /// watching a model file the trainer overwrites).
    pub fn reload_from_file(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.install(persist::load(path)?)
    }

    /// The entry currently being served.
    pub fn current(&self) -> Arc<ModelEntry> {
        Arc::clone(&self.current.read())
    }

    /// Generation of the current entry (1 = boot model).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// The fixed input columns (in model order).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The fixed aggregation config.
    pub fn agg(&self) -> AggregationConfig {
        self.agg
    }

    /// A [`Model`] handle that always predicts with the registry's current
    /// entry. Hand this to an `OnlinePredictor` to make it hot-reloadable.
    pub fn shared_model(self: &Arc<Self>) -> Box<dyn Model> {
        Box::new(RegistryModel {
            width: self.columns.len(),
            registry: Arc::clone(self),
        })
    }
}

/// A `Model` view of the registry's current entry (see
/// [`ModelRegistry::shared_model`]).
struct RegistryModel {
    registry: Arc<ModelRegistry>,
    /// Cached: install() guarantees every entry has this width.
    width: usize,
}

impl Model for RegistryModel {
    fn width(&self) -> usize {
        self.width
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        // Clone the Arc out of the lock so a concurrent reload never
        // blocks on (or is blocked by) an in-flight prediction.
        let entry = self.registry.current();
        entry.model.predict_row(row)
    }

    fn predict_batch(&self, x: &f2pm_linalg::Matrix) -> Result<Vec<f64>, f2pm_ml::MlError> {
        let entry = self.registry.current();
        entry.model.predict_batch(x)
    }
}

/// Polls a [`ModelStore`]'s manifest and installs newly published (or
/// rolled-back) generations into a live [`ModelRegistry`].
///
/// The cheap path — reading the few-line manifest — runs every
/// [`StoreWatcher::poll`]; the artifact itself is only loaded (and
/// checksum-verified) when the active generation actually changes.
/// A generation that fails to load leaves the registry untouched and is
/// retried on the next poll, so a corrupted or half-visible artifact can
/// never displace a serving model.
pub struct StoreWatcher {
    store: ModelStore,
    registry: Arc<ModelRegistry>,
    last: Option<u64>,
}

impl StoreWatcher {
    /// Watch `store` for generation changes relative to
    /// `installed_generation` (the store generation the registry booted
    /// from, or `None` to treat the first observed manifest as new).
    pub fn new(
        store: ModelStore,
        registry: Arc<ModelRegistry>,
        installed_generation: Option<u64>,
    ) -> Self {
        StoreWatcher {
            store,
            registry,
            last: installed_generation,
        }
    }

    /// One poll tick. Returns `Ok(Some((store_gen, install_gen)))` when a
    /// new generation was installed, `Ok(None)` when the manifest is
    /// unchanged (or absent), and `Err` when the active artifact exists
    /// but cannot be loaded — the previous model keeps serving.
    pub fn poll(&mut self) -> io::Result<Option<(u64, u64)>> {
        let active = match self.store.active_generation() {
            Ok(Some(g)) => g,
            Ok(None) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if self.last == Some(active) {
            return Ok(None);
        }
        let (_, saved) = self.store.load(active).map_err(io::Error::from)?;
        let install_gen = self.registry.install(saved)?;
        self.last = Some(active);
        set_store_generation_gauge(active);
        Ok(Some((active, install_gen)))
    }

    /// The store generation currently installed (if any).
    pub fn installed_generation(&self) -> Option<u64> {
        self.last
    }
}

/// Record the store generation a serve process last installed on the
/// process-global metrics registry, so scrapes carry it.
fn set_store_generation_gauge(generation: u64) {
    f2pm_obs::global()
        .gauge(f2pm_registry::ACTIVE_GENERATION_METRIC)
        .set_u64(generation);
}

fn check_width(saved: &SavedModel, columns: usize) -> io::Result<()> {
    let width = saved.as_model().width();
    if width != columns {
        return Err(invalid(format!(
            "model width {width} != registry column count {columns}"
        )));
    }
    Ok(())
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_ml::linreg::LinearModel;

    fn linear(intercept: f64, coefficients: Vec<f64>) -> SavedModel {
        SavedModel::Linear(LinearModel {
            intercept,
            coefficients,
        })
    }

    fn test_columns() -> Vec<String> {
        vec!["swap_used".to_string(), "swap_used_slope".to_string()]
    }

    #[test]
    fn install_swaps_model_for_shared_handles() {
        let reg = ModelRegistry::new(
            linear(1000.0, vec![-2.0, 0.0]),
            test_columns(),
            AggregationConfig::default(),
        )
        .unwrap();
        let handle = reg.shared_model();
        assert_eq!(handle.width(), 2);
        assert_eq!(handle.predict_row(&[100.0, 0.0]), 800.0);
        assert_eq!(reg.generation(), 1);

        let g = reg.install(linear(500.0, vec![-1.0, 0.0])).unwrap();
        assert_eq!(g, 2);
        assert_eq!(reg.generation(), 2);
        // Same handle, new model — no re-wiring needed.
        assert_eq!(handle.predict_row(&[100.0, 0.0]), 400.0);
        assert_eq!(reg.current().kind, "linear");
    }

    #[test]
    fn width_mismatch_rejected_at_create_and_install() {
        let r = ModelRegistry::new(
            linear(0.0, vec![1.0]),
            test_columns(),
            AggregationConfig::default(),
        );
        assert!(r.is_err(), "1-wide model vs 2 columns");

        let reg = ModelRegistry::new(
            linear(0.0, vec![1.0, 2.0]),
            test_columns(),
            AggregationConfig::default(),
        )
        .unwrap();
        assert!(reg.install(linear(0.0, vec![1.0, 2.0, 3.0])).is_err());
        assert_eq!(reg.generation(), 1, "failed install leaves generation");
        assert_eq!(reg.current().generation, 1);
    }

    #[test]
    fn unknown_column_rejected() {
        let r = ModelRegistry::new(
            linear(0.0, vec![1.0]),
            vec!["bogus".to_string()],
            AggregationConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn file_roundtrip_and_reload() {
        let dir = std::env::temp_dir().join(format!("f2pm_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let agg = AggregationConfig::default();
        let width = f2pm_features::aggregate::aggregated_column_names_with(&agg).len();

        persist::save(&linear(7.0, vec![0.0; width]), &path).unwrap();
        let reg = ModelRegistry::from_file(&path, agg).unwrap();
        let handle = reg.shared_model();
        assert_eq!(handle.predict_row(&vec![1.0; width]), 7.0);

        persist::save(&linear(9.0, vec![0.0; width]), &path).unwrap();
        assert_eq!(reg.reload_from_file(&path).unwrap(), 2);
        assert_eq!(handle.predict_row(&vec![1.0; width]), 9.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_cold_start_and_watcher_follow_manifest() {
        use f2pm_registry::ArtifactMeta;
        let dir = std::env::temp_dir().join(format!("f2pm_store_watch_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ModelStore::open(&dir).unwrap();
        let meta = ArtifactMeta {
            method: "linear".to_string(),
            created_at_unix: 0,
            train_smae: 1.0,
            agg: AggregationConfig::default(),
            columns: test_columns(),
        };

        // Empty store: cold start refuses with a clear error.
        assert!(ModelRegistry::from_store(&store).is_err());

        store.publish(&meta, &linear(10.0, vec![0.0, 0.0])).unwrap();
        let reg = ModelRegistry::from_store(&store).unwrap();
        assert_eq!(reg.columns(), test_columns().as_slice());
        let handle = reg.shared_model();
        assert_eq!(handle.predict_row(&[0.0, 0.0]), 10.0);

        let mut watcher =
            StoreWatcher::new(ModelStore::open(&dir).unwrap(), Arc::clone(&reg), Some(1));
        // Unchanged manifest: no reload, no generation bump.
        assert!(watcher.poll().unwrap().is_none());
        assert_eq!(reg.generation(), 1);

        // Publish → watcher installs the new generation.
        store.publish(&meta, &linear(20.0, vec![0.0, 0.0])).unwrap();
        assert_eq!(watcher.poll().unwrap(), Some((2, 2)));
        assert_eq!(handle.predict_row(&[0.0, 0.0]), 20.0);

        // Rollback → manifest reverts, install generation still advances.
        store.rollback(None).unwrap();
        assert_eq!(watcher.poll().unwrap(), Some((1, 3)));
        assert_eq!(handle.predict_row(&[0.0, 0.0]), 10.0);
        assert_eq!(watcher.installed_generation(), Some(1));

        // A corrupted active artifact errors but never displaces the
        // serving model; the next good publish heals the watcher.
        store.publish(&meta, &linear(30.0, vec![0.0, 0.0])).unwrap();
        let path = dir.join(f2pm_registry::store::artifact_name(3));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 20;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        assert!(watcher.poll().is_err());
        assert_eq!(handle.predict_row(&[0.0, 0.0]), 10.0);
        store.publish(&meta, &linear(40.0, vec![0.0, 0.0])).unwrap();
        assert_eq!(watcher.poll().unwrap(), Some((4, 4)));
        assert_eq!(handle.predict_row(&[0.0, 0.0]), 40.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swapped_out_entry_survives_inflight_use() {
        let reg = ModelRegistry::new(
            linear(10.0, vec![0.0, 0.0]),
            test_columns(),
            AggregationConfig::default(),
        )
        .unwrap();
        let old = reg.current();
        reg.install(linear(20.0, vec![0.0, 0.0])).unwrap();
        // The old entry stays valid for whoever still holds it.
        assert_eq!(old.model.predict_row(&[0.0, 0.0]), 10.0);
        assert_eq!(reg.current().model.predict_row(&[0.0, 0.0]), 20.0);
    }
}
