//! Minimal epoll/eventfd readiness layer (Linux).
//!
//! The workspace builds fully offline against local stubs — no `libc`,
//! `mio`, or `tokio` — so the handful of raw syscalls the reactor edge
//! needs are declared here directly against the C library `std` already
//! links. The unsafe surface is confined to this module; everything above
//! it speaks the safe [`Poller`] / [`Interest`] / [`Waker`] API.
//!
//! Scope is deliberately tiny: level-triggered `epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, an `eventfd` waker for cross-thread
//! wakeups (shutdown, outbound notifications), and a best-effort
//! `RLIMIT_NOFILE` raise so a serve instance can actually hold 10k+
//! sockets. Nonblocking socket setup stays on `std`
//! (`TcpStream::set_nonblocking`).

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

mod sys {
    //! Raw syscall declarations and ABI constants (Linux).
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const RLIMIT_NOFILE: c_int = 7;

    /// Kernel epoll event record. x86-64 packs it (the kernel ABI has no
    /// padding between `events` and `data` there); other architectures
    /// use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// What readiness a registered fd should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (a parked connection that must not be
    /// read from until its shard queue drains, with nothing to write).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        // RDHUP rides along with read interest so a half-closed peer
        // wakes the reactor instead of idling forever.
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (data, EOF, or peer half-close).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the fd is dead regardless of interest.
    pub error: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an integer capability; epoll_ctl/epoll_wait are
// thread-safe in the kernel.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `token` (returned verbatim in events).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change a registered fd's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister `fd` (a closed fd deregisters itself; this is for
    /// removing a live one).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Block until something is ready (or `timeout` passes), appending
    /// events to `out`. `None` = wait forever. Returns the event count
    /// (0 = timeout). EINTR retries internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout polls at 1ms, not busy-spins.
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// An eventfd-backed cross-thread waker. Cloneable and cheap: any thread
/// calls [`Waker::wake`]; the reactor registers [`Waker::fd`] in its
/// poller and [`Waker::drain`]s on wakeup.
#[derive(Clone)]
pub struct Waker {
    fd: std::sync::Arc<EventFd>,
}

struct EventFd(RawFd);

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

impl Waker {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            fd: std::sync::Arc::new(EventFd(fd)),
        })
    }

    /// The fd to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.fd.0
    }

    /// Wake the poller (idempotent until drained).
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) still wakes the reader; any
        // other failure means the reactor is gone, which is fine too.
        unsafe {
            sys::write(
                self.fd.0,
                &one as *const u64 as *const std::os::raw::c_void,
                8,
            )
        };
    }

    /// Reset the wakeup counter (called by the reactor after waking).
    pub fn drain(&self) {
        let mut count: u64 = 0;
        unsafe {
            sys::read(
                self.fd.0,
                &mut count as *mut u64 as *mut std::os::raw::c_void,
                8,
            )
        };
    }
}

/// Best-effort `RLIMIT_NOFILE` raise toward `want` fds (capped at the
/// hard limit). Returns the resulting soft limit. A 10k-connection edge
/// dies on EMFILE under the common 1024 default without this.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    let target = want.max(lim.cur).min(lim.max);
    if target > lim.cur {
        let new = sys::Rlimit {
            cur: target,
            max: lim.max,
        };
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) } == 0 {
            return target;
        }
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_read_readiness_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a short wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        tx.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data re-reports until consumed.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 16];
        let mut rx_ref = &rx;
        assert_eq!(rx_ref.read(&mut buf).unwrap(), 4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained fd goes quiet");
    }

    #[test]
    fn interest_modify_arms_and_disarms_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Registered silent: no events even though the socket is writable.
        poller.add(tx.as_raw_fd(), 1, Interest::NONE).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        // Armed for write: an idle socket is immediately writable.
        poller.modify(tx.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
        poller.delete(tx.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd is silent");
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), u64::MAX, Interest::READ).unwrap();

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, u64::MAX);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained waker goes quiet");
        t.join().unwrap();
    }

    #[test]
    fn hangup_surfaces_as_error_or_readable_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(tx);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable || events[0].error);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let now = raise_nofile_limit(0);
        assert!(now > 0, "rlimit query failed");
        // Asking for what we already have (or less) never shrinks it.
        assert_eq!(raise_nofile_limit(now), now);
    }
}
