//! The fleet plane: deterministic host→instance routing and cluster-wide
//! aggregation over many serve instances.
//!
//! One serve instance already parks 10k+ connections behind its reactor
//! edge; a fleet is N of them. Two pieces make the fleet operable:
//!
//! * [`HashRing`] — a consistent-hash ring with [`VNODES_PER_INSTANCE`]
//!   virtual nodes per instance. Routing layers (the multi-instance
//!   loadgen, FMC-side shims) map every monitored host to exactly one
//!   instance, and an instance joining or leaving moves only ~K/N of the
//!   hosts (the rebalance bound pinned by the property tests below) —
//!   every moved host lands on (or leaves) the changed instance, never a
//!   third party.
//! * [`Fleet`] — a thin client/aggregator that fans wire-v4 requests out
//!   to every instance and merges the answers: per-instance
//!   `FleetSnapshot`s roll up into a [`FleetStats`] (cluster totals +
//!   attributable per-instance rows and alert rollups), per-instance
//!   `TopKReply`s merge into one cluster-wide "top-K hosts nearest
//!   failure" ranking, and per-instance metrics expositions merge through
//!   [`f2pm_obs::merge_expositions`] into a single cluster exposition in
//!   which counters sum *exactly* (the loadgen cross-checks fleet-merged
//!   counters against the sum of per-instance scrapes, zero slack).
//!
//! The aggregator is deliberately thin: instances never talk to each
//! other, rankings are answered from each instance's seqlock estimate
//! board (no connection scans), and the fleet layer owns nothing but N
//! client sockets.

use f2pm_monitor::wire::{FrameDecoder, Message, TopKEntry, MAX_TOPK, PROTOCOL_VERSION};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Virtual nodes per instance on the ring. 64 keeps the per-instance load
/// spread within a few percent of even at fleet sizes the aggregator
/// targets (units to dozens of instances) while keeping the ring tiny.
pub const VNODES_PER_INSTANCE: usize = 64;

/// splitmix64 — the same cheap, well-mixed hash the simulator's RNG
/// family uses; good avalanche behavior for ring points.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Consistent-hash ring mapping host ids to instance ids with bounded
/// movement on membership change (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// Sorted ring points: (hash point, owning instance).
    points: Vec<(u64, u32)>,
    /// Member instances, sorted, deduplicated.
    instances: Vec<u32>,
}

impl HashRing {
    /// A ring over `instances` (duplicates collapse).
    pub fn new(instances: &[u32]) -> Self {
        let mut ring = HashRing::default();
        for &i in instances {
            ring.join(i);
        }
        ring
    }

    /// Member instances, sorted.
    pub fn instances(&self) -> &[u32] {
        &self.instances
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no instance has joined.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Add `instance` (no-op when already a member). Only hosts whose ring
    /// successor becomes one of the new instance's virtual nodes move —
    /// everything else keeps its previous owner.
    pub fn join(&mut self, instance: u32) {
        if let Err(at) = self.instances.binary_search(&instance) {
            self.instances.insert(at, instance);
            for vnode in 0..VNODES_PER_INSTANCE {
                let point = mix64((instance as u64) << 32 | vnode as u64);
                let at = self
                    .points
                    .binary_search(&(point, instance))
                    .unwrap_or_else(|e| e);
                self.points.insert(at, (point, instance));
            }
        }
    }

    /// Remove `instance` (no-op when not a member). Only hosts it owned
    /// move, each to the next surviving instance on the ring.
    pub fn leave(&mut self, instance: u32) {
        if let Ok(at) = self.instances.binary_search(&instance) {
            self.instances.remove(at);
            self.points.retain(|&(_, i)| i != instance);
        }
    }

    /// The instance owning `host`: the first ring point clockwise of the
    /// host's hash. `None` on an empty ring.
    pub fn route(&self, host: u32) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(0x5eed_0000_0000_0000 ^ host as u64);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, instance) = self.points[at % self.points.len()];
        Some(instance)
    }
}

/// A connected wire-v4 client for one serve instance.
///
/// Connections identify as host `u32::MAX` (an id the simulated fleets
/// never use), speak [`PROTOCOL_VERSION`], and skip unsolicited pushed
/// frames while waiting for a reply.
pub struct InstanceClient {
    addr: String,
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl InstanceClient {
    /// Connect and shake hands.
    pub fn connect(addr: &str) -> io::Result<InstanceClient> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect(resolved) {
                Ok(mut stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                    Message::Hello {
                        version: PROTOCOL_VERSION,
                        host_id: u32::MAX,
                    }
                    .write_to(&mut stream)?;
                    return Ok(InstanceClient {
                        addr: addr.to_string(),
                        stream,
                        decoder: FrameDecoder::new(),
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn recv(&mut self) -> io::Result<Message> {
        loop {
            match self.decoder.read_frame(&mut self.stream)? {
                Some(Message::Alert { .. }) | Some(Message::RttfEstimate { .. }) => {}
                Some(msg) => return Ok(msg),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("{}: connection closed mid-request", self.addr),
                    ))
                }
            }
        }
    }

    /// `StatsRequest` → the instance's v4 snapshot.
    pub fn snapshot(&mut self) -> io::Result<InstanceSnapshot> {
        Message::StatsRequest.write_to(&mut self.stream)?;
        match self.recv()? {
            Message::FleetSnapshot {
                instance_id,
                connections,
                datapoints,
                estimates,
                alerts,
                dropped,
                model_generation,
                hosts_tracked,
                shard_depths,
            } => Ok(InstanceSnapshot {
                addr: self.addr.clone(),
                instance_id,
                connections,
                datapoints,
                estimates,
                alerts,
                dropped,
                model_generation,
                hosts_tracked,
                shard_depths,
            }),
            other => Err(unexpected(&self.addr, "FleetSnapshot", &other)),
        }
    }

    /// `TopKRequest` → this instance's at-risk ranking (ascending RTTF).
    pub fn top_k(&mut self, k: usize) -> io::Result<(u32, Vec<TopKEntry>)> {
        Message::TopKRequest {
            k: k.min(MAX_TOPK) as u16,
        }
        .write_to(&mut self.stream)?;
        match self.recv()? {
            Message::TopKReply {
                instance_id,
                entries,
            } => Ok((instance_id, entries)),
            other => Err(unexpected(&self.addr, "TopKReply", &other)),
        }
    }

    /// `MetricsRequest` → this instance's text exposition.
    pub fn scrape(&mut self) -> io::Result<String> {
        Message::MetricsRequest.write_to(&mut self.stream)?;
        match self.recv()? {
            Message::MetricsText { text } => Ok(text),
            other => Err(unexpected(&self.addr, "MetricsText", &other)),
        }
    }
}

fn unexpected(addr: &str, wanted: &str, got: &Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{addr}: expected {wanted}, got {got:?}"),
    )
}

/// One instance's v4 snapshot, annotated with the address it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSnapshot {
    /// Address the snapshot was scraped from.
    pub addr: String,
    /// The instance's stable fleet identity.
    pub instance_id: u32,
    /// Live client connections.
    pub connections: u64,
    /// Datapoints ingested since start.
    pub datapoints: u64,
    /// RTTF estimates produced since start.
    pub estimates: u64,
    /// Rejuvenation alerts fired since start (already debounced per-host
    /// by the instance's [`crate::AlertPolicy`]).
    pub alerts: u64,
    /// Frames dropped since start.
    pub dropped: u64,
    /// Current model generation.
    pub model_generation: u64,
    /// Hosts with a published estimate on the board.
    pub hosts_tracked: u32,
    /// Queue depth per shard at snapshot time.
    pub shard_depths: Vec<u32>,
}

/// Cluster rollup of per-instance snapshots: totals for the additive
/// counters plus the attributable per-instance rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Per-instance snapshots, in fleet address order.
    pub instances: Vec<InstanceSnapshot>,
    /// Live connections across the fleet.
    pub connections: u64,
    /// Datapoints ingested across the fleet.
    pub datapoints: u64,
    /// Estimates produced across the fleet.
    pub estimates: u64,
    /// Alerts fired across the fleet (per-host debouncing happened on the
    /// owning instance; this is the per-fleet count rollup).
    pub alerts: u64,
    /// Frames dropped across the fleet.
    pub dropped: u64,
    /// Hosts with a published estimate anywhere in the fleet (hosts are
    /// routed to exactly one instance, so the sum is a host count).
    pub hosts_tracked: u64,
}

/// One entry of the cluster-wide at-risk ranking: a [`TopKEntry`] plus
/// the instance that owns the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTopKEntry {
    /// Instance the host is routed to.
    pub instance_id: u32,
    /// Host nearest failure.
    pub host_id: u32,
    /// Guest time (s) of the window that produced the estimate.
    pub t: f64,
    /// Predicted remaining time to failure (s).
    pub rttf: f64,
    /// Generation of the model that produced the estimate.
    pub model_generation: u64,
}

/// The fleet aggregator: one [`InstanceClient`] per serve instance (see
/// the module docs).
pub struct Fleet {
    clients: Vec<InstanceClient>,
}

impl Fleet {
    /// Connect to every instance. Fails fast if any address is down — a
    /// partial fleet would silently under-count the cluster.
    pub fn connect(addrs: &[String]) -> io::Result<Fleet> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one instance address",
            ));
        }
        let clients = addrs
            .iter()
            .map(|a| InstanceClient::connect(a))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Fleet { clients })
    }

    /// Instance count.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when the fleet has no instances (never, per [`Fleet::connect`]).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Fan out `StatsRequest` and roll the snapshots up.
    pub fn stats(&mut self) -> io::Result<FleetStats> {
        let instances = self
            .clients
            .iter_mut()
            .map(|c| c.snapshot())
            .collect::<io::Result<Vec<_>>>()?;
        let sum = |f: fn(&InstanceSnapshot) -> u64| instances.iter().map(f).sum();
        Ok(FleetStats {
            connections: sum(|s| s.connections),
            datapoints: sum(|s| s.datapoints),
            estimates: sum(|s| s.estimates),
            alerts: sum(|s| s.alerts),
            dropped: sum(|s| s.dropped),
            hosts_tracked: sum(|s| s.hosts_tracked as u64),
            instances,
        })
    }

    /// Fan out `TopKRequest` and merge the per-instance rankings into the
    /// cluster-wide top `k` (ascending RTTF; ties break by host id, then
    /// instance id, for a deterministic order).
    ///
    /// Each instance returns at most `k` entries, and the cluster top-k is
    /// a subset of the union of per-instance top-k's, so the merge is
    /// exact — no second round trip.
    pub fn top_k(&mut self, k: usize) -> io::Result<Vec<FleetTopKEntry>> {
        let mut all: Vec<FleetTopKEntry> = Vec::new();
        for c in &mut self.clients {
            let (instance_id, entries) = c.top_k(k)?;
            all.extend(entries.into_iter().map(|e| FleetTopKEntry {
                instance_id,
                host_id: e.host_id,
                t: e.t,
                rttf: e.rttf,
                model_generation: e.model_generation,
            }));
        }
        all.sort_by(|a, b| {
            a.rttf
                .partial_cmp(&b.rttf)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.host_id.cmp(&b.host_id))
                .then_with(|| a.instance_id.cmp(&b.instance_id))
        });
        all.truncate(k);
        Ok(all)
    }

    /// Fan out the metrics scrape and merge the per-instance expositions
    /// into one cluster exposition (see [`f2pm_obs::merge_expositions`]:
    /// counters/histograms sum exactly, gauges stay attributable behind an
    /// added `instance` label).
    pub fn merged_scrape(&mut self) -> io::Result<String> {
        let mut per_instance: Vec<(u32, String)> = Vec::new();
        for c in &mut self.clients {
            let id = c.snapshot()?.instance_id;
            let text = c.scrape()?;
            per_instance.push((id, text));
        }
        let borrowed: Vec<(u32, &str)> = per_instance
            .iter()
            .map(|(id, text)| (*id, text.as_str()))
            .collect();
        Ok(f2pm_obs::merge_expositions(&borrowed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn load_per_instance(ring: &HashRing, hosts: u32) -> HashMap<u32, usize> {
        let mut load: HashMap<u32, usize> = HashMap::new();
        for host in 0..hosts {
            *load.entry(ring.route(host).unwrap()).or_default() += 1;
        }
        load
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(&[0, 1, 2]);
        for host in 0..1000 {
            let a = ring.route(host).unwrap();
            let b = ring.route(host).unwrap();
            assert_eq!(a, b);
            assert!(ring.instances().contains(&a));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::default();
        assert!(ring.is_empty());
        assert_eq!(ring.route(7), None);
    }

    #[test]
    fn single_instance_owns_everything() {
        let ring = HashRing::new(&[42]);
        for host in 0..100 {
            assert_eq!(ring.route(host), Some(42));
        }
    }

    #[test]
    fn duplicate_joins_collapse() {
        let mut ring = HashRing::new(&[1, 1, 1]);
        assert_eq!(ring.len(), 1);
        ring.join(1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.points.len(), VNODES_PER_INSTANCE);
    }

    #[test]
    fn load_spreads_within_bound() {
        // 64 vnodes/instance keeps every instance within ~2x of the mean
        // at 10k hosts — the balance bound the fleet plane relies on.
        for n in [2usize, 3, 5, 8] {
            let instances: Vec<u32> = (0..n as u32).collect();
            let ring = HashRing::new(&instances);
            let load = load_per_instance(&ring, 10_000);
            assert_eq!(load.len(), n, "every instance owns hosts");
            let mean = 10_000.0 / n as f64;
            for (&i, &l) in &load {
                assert!(
                    (l as f64) < 2.0 * mean && (l as f64) > mean / 3.0,
                    "instance {i} load {l} outside bound (mean {mean:.0}, n={n})"
                );
            }
        }
    }

    #[test]
    fn join_moves_only_hosts_onto_the_new_instance() {
        const HOSTS: u32 = 10_000;
        let mut ring = HashRing::new(&[0, 1, 2, 3]);
        let before: Vec<u32> = (0..HOSTS).map(|h| ring.route(h).unwrap()).collect();
        ring.join(9);
        let mut moved = 0usize;
        for h in 0..HOSTS {
            let now = ring.route(h).unwrap();
            if now != before[h as usize] {
                assert_eq!(now, 9, "a moved host must land on the joined instance");
                moved += 1;
            }
        }
        // Expected moves ≈ K/N = 10000/5; allow generous variance but pin
        // the bound well below a full reshuffle.
        let expected = HOSTS as f64 / 5.0;
        assert!(moved > 0, "the new instance takes some load");
        assert!(
            (moved as f64) < 2.0 * expected,
            "moved {moved}, expected ≈{expected:.0} (bounded movement)"
        );
    }

    #[test]
    fn leave_moves_only_the_departed_instances_hosts() {
        const HOSTS: u32 = 10_000;
        let mut ring = HashRing::new(&[0, 1, 2, 3, 4]);
        let before: Vec<u32> = (0..HOSTS).map(|h| ring.route(h).unwrap()).collect();
        ring.leave(2);
        for h in 0..HOSTS {
            let now = ring.route(h).unwrap();
            assert_ne!(now, 2, "nothing routes to a departed instance");
            if before[h as usize] != 2 {
                assert_eq!(
                    now, before[h as usize],
                    "host {h} moved although instance 2 never owned it"
                );
            }
        }
    }

    #[test]
    fn join_then_leave_restores_the_original_routing() {
        const HOSTS: u32 = 5_000;
        let mut ring = HashRing::new(&[10, 20, 30]);
        let before: Vec<u32> = (0..HOSTS).map(|h| ring.route(h).unwrap()).collect();
        ring.join(40);
        ring.leave(40);
        for h in 0..HOSTS {
            assert_eq!(ring.route(h).unwrap(), before[h as usize]);
        }
    }

    mod properties {
        //! The rebalance bound, over arbitrary memberships: a membership
        //! change never moves a host between two *surviving* instances.
        use super::*;
        use proptest::prelude::*;

        fn arb_instances() -> impl Strategy<Value = Vec<u32>> {
            proptest::collection::vec(0u32..1000, 2..10)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn join_never_moves_hosts_between_survivors(
                instances in arb_instances(),
                joiner in 1000u32..2000
            ) {
                let mut ring = HashRing::new(&instances);
                let before: Vec<u32> =
                    (0..2000).map(|h| ring.route(h).unwrap()).collect();
                ring.join(joiner);
                for h in 0..2000u32 {
                    let now = ring.route(h).unwrap();
                    if now != before[h as usize] {
                        prop_assert_eq!(now, joiner);
                    }
                }
            }

            #[test]
            fn leave_strands_no_host_and_moves_only_the_departed(
                instances in arb_instances(),
                pick in 0usize..100
            ) {
                let mut ring = HashRing::new(&instances);
                let leaver = ring.instances()[pick % ring.len()];
                prop_assume!(ring.len() > 1);
                let before: Vec<u32> =
                    (0..2000).map(|h| ring.route(h).unwrap()).collect();
                ring.leave(leaver);
                for h in 0..2000u32 {
                    let now = ring.route(h).unwrap();
                    prop_assert_ne!(now, leaver);
                    if before[h as usize] != leaver {
                        prop_assert_eq!(now, before[h as usize]);
                    }
                }
            }

            #[test]
            fn balance_holds_for_arbitrary_memberships(
                instances in arb_instances()
            ) {
                let ring = HashRing::new(&instances);
                let n = ring.len();
                let load = load_per_instance(&ring, 4000);
                prop_assert_eq!(load.len(), n, "every member owns load");
                let mean = 4000.0 / n as f64;
                for &l in load.values() {
                    prop_assert!((l as f64) < 3.0 * mean);
                }
            }
        }
    }
}
