//! Edge-equivalence gate: the epoll reactor edge must be externally
//! indistinguishable from the threaded (reader-per-connection) edge.
//!
//! Both edges share `handle_read` and the shard/board data plane; what
//! differs is everything around it — nonblocking reads, partial-frame
//! tails, outbound staging, backpressure parking, the draining close.
//! The tests here drive the SAME frame script at a `reactors: 1` server
//! and a `reactors: 0` server and require the byte stream pushed back to
//! the client to be identical. `threshold = ∞, hits = 1` turns every
//! estimate into a pushed alert, so the full estimate history of a host
//! is observable as an ordered, deterministic reply stream (the model is
//! hand-built: `rttf = 1000 − 2 × swap_used`).
//!
//! Linux-only: the reactor edge does not exist elsewhere.
#![cfg(target_os = "linux")]

use f2pm_features::AggregationConfig;
use f2pm_ml::linreg::LinearModel;
use f2pm_ml::persist::SavedModel;
use f2pm_monitor::wire::{Message, PROTOCOL_VERSION};
use f2pm_monitor::{Datapoint, FeatureId};
use f2pm_serve::{AlertPolicy, ModelRegistry, PredictionServer, ServeConfig, ServeHandle};
use std::io::Read;
use std::net::TcpStream;

fn agg() -> AggregationConfig {
    AggregationConfig {
        window_s: 30.0,
        min_points: 2,
        ..AggregationConfig::default()
    }
}

fn start_edge(reactors: usize, shards: usize) -> ServeHandle {
    let registry = ModelRegistry::new(
        SavedModel::Linear(LinearModel {
            intercept: 1000.0,
            coefficients: vec![-2.0, 0.0],
        }),
        vec!["swap_used".to_string(), "swap_used_slope".to_string()],
        agg(),
    )
    .unwrap();
    PredictionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            shards,
            queue_cap: 64,
            batch_cap: 16,
            policy: AlertPolicy {
                rttf_threshold_s: f64::INFINITY,
                consecutive_hits: 1,
            },
            reactors,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap()
}

/// One scripted client event. `t` values are assigned by position so any
/// generated script is a valid monotone guest timeline.
#[derive(Clone, Debug)]
enum Op {
    Dp { swap: f64 },
    Fail,
}

/// Replay `ops` as host `host` against an edge with `reactors` reactor
/// threads, then return the raw bytes the server pushed back (the alert
/// stream, then EOF after the draining close). Nothing else is ever
/// pushed: the client sends no predict/stats requests.
fn replay(reactors: usize, shards: usize, host: u32, ops: &[Op]) -> Vec<u8> {
    let server = start_edge(reactors, shards);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    Message::Hello {
        version: PROTOCOL_VERSION,
        host_id: host,
    }
    .write_to(&mut stream)
    .unwrap();
    for (i, op) in ops.iter().enumerate() {
        let t = i as f64 * 5.0;
        let msg = match op {
            Op::Dp { swap } => {
                let mut d = Datapoint {
                    t_gen: t,
                    values: [1.0; 14],
                };
                d.set(FeatureId::SwapUsed, *swap);
                Message::Datapoint(d)
            }
            Op::Fail => Message::Fail { t },
        };
        msg.write_to(&mut stream).unwrap();
    }
    // Bye sits behind every datapoint in the same ordered connection, so
    // the draining close releases the socket only after the shard worker
    // has pushed every alert the script earns.
    Message::Bye.write_to(&mut stream).unwrap();
    let mut pushed = Vec::new();
    stream.read_to_end(&mut pushed).unwrap();
    let snap = server.shutdown();
    assert_eq!(snap.dropped, 0);
    pushed
}

/// Decode a pushed byte stream into its alert payloads (for the failure
/// message — the equality assertion itself is on the raw bytes).
fn alerts_of(bytes: &[u8]) -> Vec<(f64, f64)> {
    let mut src = bytes;
    let mut out = Vec::new();
    while let Ok(Some(m)) = Message::read_from(&mut src) {
        if let Message::Alert { t, rttf, .. } = m {
            out.push((t, rttf));
        }
    }
    out
}

/// A long deterministic script — swap ramps with a mid-life `Fail` reset
/// — must produce bit-identical pushed bytes on both edges.
#[test]
fn deterministic_script_pushes_identical_bytes_on_both_edges() {
    let mut ops = Vec::new();
    for i in 0..240 {
        ops.push(Op::Dp {
            swap: 100.0 + (i % 40) as f64 * 7.0,
        });
        if i == 120 {
            ops.push(Op::Fail);
        }
    }
    let threaded = replay(0, 2, 6, &ops);
    let reactor = replay(1, 2, 6, &ops);
    assert!(
        alerts_of(&threaded).len() >= 10,
        "script produced only {} alerts",
        alerts_of(&threaded).len()
    );
    assert_eq!(
        reactor,
        threaded,
        "edges diverged: reactor {:?} vs threaded {:?}",
        alerts_of(&reactor),
        alerts_of(&threaded)
    );
}

/// After the stream quiesces, a predict round-trip must answer the same
/// estimate on both edges (the board is fed identically).
#[test]
fn predict_after_quiesce_is_identical_on_both_edges() {
    fn run(reactors: usize) -> Vec<u8> {
        let server = start_edge(reactors, 2);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        Message::Hello {
            version: PROTOCOL_VERSION,
            host_id: 12,
        }
        .write_to(&mut stream)
        .unwrap();
        for i in 0..8 {
            let mut d = Datapoint {
                t_gen: i as f64 * 5.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 150.0);
            Message::Datapoint(d).write_to(&mut stream).unwrap();
        }
        // Quiesce: poll predict until the estimate lands (the worker
        // publishes asynchronously on both edges), then keep the frame.
        let reply = loop {
            Message::PredictRequest { host_id: 12 }
                .write_to(&mut stream)
                .unwrap();
            match Message::read_from(&mut stream).unwrap().unwrap() {
                m @ Message::RttfEstimate { rttf: Some(_), .. } => break m.encode().to_vec(),
                Message::RttfEstimate { rttf: None, .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(2))
                }
                Message::Alert { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        };
        Message::Bye.write_to(&mut stream).unwrap();
        server.shutdown();
        reply
    }
    assert_eq!(run(1), run(0), "predict replies diverged across edges");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Scripts mixing datapoints (varied swap levels, so alert payloads
    /// vary) with occasional life-ending `Fail`s.
    fn arb_script() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec((0u8..8, 0.0f64..400.0), 1..60).prop_map(|raw| {
            raw.into_iter()
                .map(
                    |(pick, swap)| {
                        if pick == 0 {
                            Op::Fail
                        } else {
                            Op::Dp { swap }
                        }
                    },
                )
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any frame script pushes byte-identical replies on both edges.
        #[test]
        fn any_script_pushes_identical_bytes(ops in arb_script(), host in 0u32..64) {
            let threaded = replay(0, 2, host, &ops);
            let reactor = replay(1, 2, host, &ops);
            prop_assert_eq!(&reactor, &threaded,
                "edges diverged for {:?}: reactor {:?} vs threaded {:?}",
                ops, alerts_of(&reactor), alerts_of(&threaded));
        }
    }
}
