//! The continuous-retraining plane end to end over real TCP: a client
//! streams failing runs into a serving instance, the tap-fed background
//! worker warm-retrains an LS-SVM over the sliding run window and
//! publishes it into the artifact store, and the manifest watcher
//! hot-reloads each published generation into the live registry — while
//! predictions keep flowing on the same connection, with zero drops.

use f2pm_features::aggregate::aggregated_column_names_with;
use f2pm_features::AggregationConfig;
use f2pm_ml::linreg::LinearModel;
use f2pm_ml::persist::SavedModel;
use f2pm_monitor::wire::{Message, PROTOCOL_VERSION};
use f2pm_monitor::{Datapoint, FeatureId};
use f2pm_registry::{ArtifactMeta, ModelStore};
use f2pm_serve::{
    ModelRegistry, PredictionServer, RetrainWorker, RetrainerConfig, ServeConfig, StoreWatcher,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn agg() -> AggregationConfig {
    AggregationConfig {
        window_s: 30.0,
        min_points: 2,
        ..AggregationConfig::default()
    }
}

/// A linear seed model over the full 30-column aggregated layout (the
/// same layout the retrain worker publishes, so the registry's input
/// contract never changes across generations).
fn seed_model() -> SavedModel {
    let mut coefficients = vec![0.0; 30];
    coefficients[FeatureId::SwapUsed.index()] = -2.0;
    SavedModel::Linear(LinearModel {
        intercept: 1000.0,
        coefficients,
    })
}

fn dp(t: f64, seed: u64) -> Datapoint {
    let mut d = Datapoint {
        t_gen: t,
        values: [1.0; 14],
    };
    for (j, v) in d.values.iter_mut().enumerate() {
        *v = 1.0 + 0.01 * t * (1.0 + j as f64 * 0.1) + (seed as f64 * 0.37 + j as f64).sin();
    }
    d.set(FeatureId::SwapUsed, 2.0 * t + (seed as f64).sin());
    d
}

struct Client {
    stream: TcpStream,
    host: u32,
}

impl Client {
    fn connect(addr: std::net::SocketAddr, host: u32) -> Self {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Message::Hello {
            version: PROTOCOL_VERSION,
            host_id: host,
        }
        .write_to(&mut stream)
        .unwrap();
        Client { stream, host }
    }

    fn send(&mut self, msg: &Message) {
        msg.write_to(&mut self.stream).unwrap();
    }

    /// One complete failing run: datapoints every 5 s over [0, 200), the
    /// fail event at 205 s → six labeled 30 s windows.
    fn stream_run(&mut self, seed: u64) {
        let mut t = 0.0;
        while t < 200.0 {
            self.send(&Message::Datapoint(dp(t, seed)));
            t += 5.0;
        }
        self.send(&Message::Fail { t: 205.0 });
    }

    /// Poll `PredictRequest` until an estimate is present, skipping
    /// alerts pushed in between.
    fn wait_estimate(&mut self) -> (f64, u64) {
        for _ in 0..2000 {
            self.send(&Message::PredictRequest { host_id: self.host });
            loop {
                match Message::read_from(&mut self.stream).unwrap().unwrap() {
                    Message::RttfEstimate {
                        rttf: Some(r),
                        model_generation,
                        ..
                    } => return (r, model_generation),
                    Message::RttfEstimate { rttf: None, .. } => break,
                    Message::Alert { .. } => {}
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("no estimate for host {}", self.host);
    }
}

/// Poll the manifest watcher until it installs a store generation ≥
/// `at_least`, returning `(store_generation, install_generation)`.
fn wait_install(watcher: &mut StoreWatcher, at_least: u64) -> (u64, u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(Some((store_gen, install_gen))) = watcher.poll() {
            if store_gen >= at_least {
                return (store_gen, install_gen);
            }
        }
        assert!(
            Instant::now() < deadline,
            "watcher never installed store generation {at_least}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn streamed_runs_retrain_publish_and_hot_reload_without_disruption() {
    let dir = std::env::temp_dir().join(format!("f2pm_retrain_plane_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Seed the store so the server can cold-start before any run failed.
    let store = ModelStore::open(&dir).unwrap();
    let meta = ArtifactMeta::new("linear", agg(), aggregated_column_names_with(&agg()), 50.0);
    store.publish(&meta, &seed_model()).unwrap();
    let registry = ModelRegistry::from_store(&store).unwrap();
    assert_eq!(registry.current().kind, "linear");

    // The retrain plane: worker publishing into the same store, tap wired
    // through the shard workers.
    let engine = f2pm::RetrainConfig {
        aggregation: registry.agg(),
        ..f2pm::RetrainConfig::new(2)
    };
    let (tap, worker) = RetrainWorker::start(
        RetrainerConfig::new(engine),
        ModelStore::open(&dir).unwrap(),
    );
    let server = PredictionServer::start_with_tap(
        "127.0.0.1:0",
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
        registry,
        Some(tap),
    )
    .unwrap();
    let registry = server.registry();
    let mut watcher = StoreWatcher::new(ModelStore::open(&dir).unwrap(), registry.clone(), Some(1));
    let mut client = Client::connect(server.addr(), 42);

    // Generation 1 serves while the window fills: the linear seed model
    // answers from the very first life.
    let mut t = 0.0;
    while t < 60.0 {
        client.send(&Message::Datapoint(dp(t, 0)));
        t += 5.0;
    }
    let (_, generation) = client.wait_estimate();
    assert_eq!(generation, 1, "the seed artifact serves before any retrain");
    client.send(&Message::Fail { t: 65.0 });

    // Two full failing runs fill the 2-run window → the worker's first
    // (cold) retrain publishes store generation 2, which the manifest
    // watcher hot-reloads into the live registry.
    client.stream_run(1);
    client.stream_run(2);
    let (store_gen, install_gen) = wait_install(&mut watcher, 2);
    assert!(store_gen >= 2);
    assert!(install_gen >= 2);
    assert_eq!(registry.current().kind, "ls_svm");
    assert_eq!(registry.columns(), aggregated_column_names_with(&agg()));

    // The same connection keeps serving across the swap: a fresh life's
    // estimates now come from the retrained LS-SVM's generation.
    let mut t = 0.0;
    while t < 60.0 {
        client.send(&Message::Datapoint(dp(t, 3)));
        t += 5.0;
    }
    let (_, generation) = client.wait_estimate();
    assert!(
        generation >= install_gen,
        "estimates must carry the retrained generation ({generation} < {install_gen})"
    );

    // One more completed run slides the window → a warm retrain publishes
    // the next generation. (The window-shift here retires one run and
    // appends one — exactly the rank-k update path.)
    client.send(&Message::Fail { t: 65.0 });
    client.stream_run(4);
    let (store_gen2, _) = wait_install(&mut watcher, store_gen + 1);
    assert!(store_gen2 > store_gen);
    assert_eq!(registry.current().kind, "ls_svm");

    // The published artifact is a real, loadable LS-SVM over the full
    // aggregated layout with an in-sample S-MAE recorded.
    let (_, meta, saved) = store.load_active().unwrap().unwrap();
    assert_eq!(meta.method, "ls_svm");
    assert_eq!(saved.kind(), "ls_svm");
    assert_eq!(meta.columns, aggregated_column_names_with(&agg()));
    assert!(meta.train_smae.is_finite());

    client.send(&Message::Bye);
    let snap = server.shutdown();
    assert_eq!(snap.dropped, 0, "retraining must not cost a single frame");
    // Every tap clone died with the shard pool, so the worker exits.
    worker.join();
    std::fs::remove_dir_all(&dir).ok();
}
