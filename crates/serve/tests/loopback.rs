//! Loopback integration tests: real TCP, real frames, the full
//! reader → shard → board → reply path.
//!
//! The model is hand-built so estimates are exactly predictable:
//! `rttf = 1000 − 2 × swap_used` over `["swap_used", "swap_used_slope"]`,
//! with a 30 s / 2-point aggregation window.

use f2pm_features::AggregationConfig;
use f2pm_ml::linreg::LinearModel;
use f2pm_ml::persist::SavedModel;
use f2pm_monitor::wire::{Message, PROTOCOL_VERSION};
use f2pm_monitor::{Datapoint, FeatureId, FeatureMonitorClient, FmcConfig};
use f2pm_serve::{AlertPolicy, ModelRegistry, PredictionServer, ServeConfig, ServeHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn agg() -> AggregationConfig {
    AggregationConfig {
        window_s: 30.0,
        min_points: 2,
        ..AggregationConfig::default()
    }
}

fn linear(intercept: f64, swap_coef: f64) -> SavedModel {
    SavedModel::Linear(LinearModel {
        intercept,
        coefficients: vec![swap_coef, 0.0],
    })
}

fn start_server(shards: usize) -> ServeHandle {
    start_server_batched(shards, 64)
}

fn start_server_batched(shards: usize, batch_cap: usize) -> ServeHandle {
    let registry = ModelRegistry::new(
        linear(1000.0, -2.0),
        vec!["swap_used".to_string(), "swap_used_slope".to_string()],
        agg(),
    )
    .unwrap();
    PredictionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            shards,
            queue_cap: 256,
            batch_cap,
            policy: AlertPolicy::default(),
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap()
}

fn dp(t: f64, swap: f64) -> Datapoint {
    let mut d = Datapoint {
        t_gen: t,
        values: [1.0; 14],
    };
    d.set(FeatureId::SwapUsed, swap);
    d
}

/// A raw v2 test client speaking the wire protocol directly.
struct V2Client {
    stream: TcpStream,
    host: u32,
}

impl V2Client {
    fn connect(addr: std::net::SocketAddr, host: u32) -> Self {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Message::Hello {
            version: PROTOCOL_VERSION,
            host_id: host,
        }
        .write_to(&mut stream)
        .unwrap();
        V2Client { stream, host }
    }

    fn send(&mut self, msg: &Message) {
        msg.write_to(&mut self.stream).unwrap();
    }

    fn recv(&mut self) -> Message {
        Message::read_from(&mut self.stream).unwrap().unwrap()
    }

    /// Scrape the v3 text exposition. Pushed alerts and stale estimate
    /// replies that arrive in between are skipped.
    fn scrape(&mut self) -> String {
        self.send(&Message::MetricsRequest);
        loop {
            match self.recv() {
                Message::MetricsText { text } => return text,
                Message::Alert { .. } | Message::RttfEstimate { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }

    /// Poll `PredictRequest` until an estimate is present (the shard
    /// worker publishes asynchronously). Pushed alerts that arrive in
    /// between are skipped.
    fn wait_estimate(&mut self) -> (f64, f64, u64) {
        for _ in 0..500 {
            self.send(&Message::PredictRequest { host_id: self.host });
            loop {
                match self.recv() {
                    Message::RttfEstimate {
                        t,
                        rttf: Some(r),
                        model_generation,
                        ..
                    } => return (t, r, model_generation),
                    Message::RttfEstimate { rttf: None, .. } => break,
                    Message::Alert { .. } => {}
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("no estimate for host {}", self.host);
    }
}

#[test]
fn per_host_estimates_are_isolated() {
    let server = start_server(3);
    let addr = server.addr();

    // Five hosts across three shards, interleaved, each at its own swap
    // level → each must see exactly its own estimate.
    let hosts: Vec<(u32, f64)> = vec![(0, 50.0), (1, 100.0), (2, 150.0), (5, 200.0), (9, 250.0)];
    let mut clients: Vec<V2Client> = hosts
        .iter()
        .map(|&(h, _)| V2Client::connect(addr, h))
        .collect();
    for i in 0..30 {
        let t = i as f64 * 5.0;
        for (c, &(_, swap)) in clients.iter_mut().zip(&hosts) {
            c.send(&Message::Datapoint(dp(t, swap)));
        }
    }
    for (c, &(h, swap)) in clients.iter_mut().zip(&hosts) {
        let (_, rttf, generation) = c.wait_estimate();
        assert_eq!(rttf, 1000.0 - 2.0 * swap, "host {h}");
        assert_eq!(generation, 1);
    }

    // A Fail resets host 1's life; its estimate disappears while host 2's
    // survives untouched.
    clients[1].send(&Message::Fail { t: 150.0 });
    for _ in 0..500 {
        clients[1].send(&Message::PredictRequest { host_id: 1 });
        if matches!(clients[1].recv(), Message::RttfEstimate { rttf: None, .. }) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    clients[1].send(&Message::PredictRequest { host_id: 1 });
    assert!(matches!(
        clients[1].recv(),
        Message::RttfEstimate { rttf: None, .. }
    ));
    let (_, rttf, _) = clients[2].wait_estimate();
    assert_eq!(rttf, 700.0, "host 2 unaffected by host 1's failure");

    for c in &mut clients {
        c.send(&Message::Bye);
    }
    let snap = server.shutdown();
    assert_eq!(snap.dropped, 0);
    assert!(snap.datapoints >= 150);
    assert!(snap.estimates >= 5);
}

#[test]
fn hot_reload_mid_stream_keeps_connection_and_window_state() {
    let server = start_server(2);
    let registry = server.registry();
    let mut client = V2Client::connect(server.addr(), 7);

    // Life under generation 1: estimate = 1000 − 2×100 = 800.
    let mut t = 0.0;
    for _ in 0..8 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
    }
    let (_, rttf, generation) = client.wait_estimate();
    assert_eq!(rttf, 800.0);
    assert_eq!(generation, 1);

    // Hot reload on the SAME connection: new model 500 − 1×swap.
    assert_eq!(registry.install(linear(500.0, -1.0)).unwrap(), 2);

    // Keep streaming without reconnecting; the next closed window scores
    // on the new model: 500 − 100 = 400.
    for _ in 0..30 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
        let (_, rttf, generation) = client.wait_estimate();
        if generation == 2 {
            assert_eq!(rttf, 400.0);
            client.send(&Message::Bye);
            let snap = server.shutdown();
            assert_eq!(snap.model_generation, 2);
            assert_eq!(snap.dropped, 0);
            // One connection, never reset.
            assert_eq!(snap.total_accepted, 1);
            return;
        }
        assert_eq!(rttf, 800.0, "pre-reload estimates from generation 1");
    }
    panic!("never observed a generation-2 estimate");
}

#[test]
fn v1_fmc_client_still_ingests() {
    let server = start_server(2);

    // The stock v1-style FMC (it sends PROTOCOL_VERSION=2 Hello now, so
    // hand-roll a literal v1 handshake instead).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    Message::Hello {
        version: 1,
        host_id: 3,
    }
    .write_to(&mut stream)
    .unwrap();
    for i in 0..40 {
        Message::Datapoint(dp(i as f64 * 5.0, 300.0))
            .write_to(&mut stream)
            .unwrap();
    }
    Message::Bye.write_to(&mut stream).unwrap();

    // The server predicts for v1 hosts too; a v2 observer can read the
    // estimate of host 3 over its own connection.
    let mut observer = V2Client::connect(server.addr(), 1000);
    observer.host = 3; // ask about the v1 host
    let (_, rttf, _) = observer.wait_estimate();
    assert_eq!(rttf, 1000.0 - 2.0 * 300.0);

    let snap = server.shutdown();
    assert!(snap.datapoints >= 40);
    assert_eq!(snap.dropped, 0);
}

#[test]
fn real_fmc_streams_into_serve() {
    // The actual FeatureMonitorClient (wire v2 Hello) against the serve
    // endpoint — datapoints flow and estimates appear.
    let server = start_server(1);
    let mut client = FeatureMonitorClient::connect(
        server.addr(),
        FmcConfig {
            host_id: 11,
            ..FmcConfig::default()
        },
    )
    .unwrap();
    for i in 0..20 {
        client.send_datapoint(&dp(i as f64 * 5.0, 400.0)).unwrap();
    }
    assert_eq!(client.sent(), 20);
    client.close().unwrap();

    let mut observer = V2Client::connect(server.addr(), 11);
    let (_, rttf, _) = observer.wait_estimate();
    assert_eq!(rttf, 1000.0 - 2.0 * 400.0);
    server.shutdown();
}

#[test]
fn stats_and_alerts_over_the_wire() {
    let server = start_server(2);
    let mut client = V2Client::connect(server.addr(), 4);

    // swap 480 → rttf 40 ≤ 180 threshold; two consecutive windows fire a
    // pushed alert.
    let mut t = 0.0;
    let mut saw_alert = None;
    'outer: for _ in 0..20 {
        for _ in 0..7 {
            client.send(&Message::Datapoint(dp(t, 480.0)));
            t += 5.0;
        }
        // Drain everything pushed up to the estimate reply; any alert in
        // between is the one we're waiting for.
        client.send(&Message::PredictRequest { host_id: 4 });
        loop {
            match client.recv() {
                Message::Alert {
                    host_id,
                    rttf,
                    threshold,
                    ..
                } => saw_alert = Some((host_id, rttf, threshold)),
                Message::RttfEstimate { .. } => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        if saw_alert.is_some() {
            break 'outer;
        }
    }
    let (host_id, rttf, threshold) = saw_alert.expect("alert pushed");
    assert_eq!(host_id, 4);
    assert_eq!(rttf, 40.0);
    assert_eq!(threshold, 180.0);

    // Stats over the wire reflect the traffic. A v4 client gets the
    // fleet-aware snapshot shape (instance identity + tracked hosts).
    client.send(&Message::StatsRequest);
    loop {
        match client.recv() {
            Message::FleetSnapshot {
                instance_id,
                connections,
                datapoints,
                estimates,
                alerts,
                dropped,
                model_generation,
                hosts_tracked,
                shard_depths,
            } => {
                assert_eq!(instance_id, 0, "default instance identity");
                assert_eq!(connections, 1);
                assert!(datapoints >= 14);
                assert!(estimates >= 2);
                assert!(alerts >= 1);
                assert_eq!(dropped, 0);
                assert_eq!(model_generation, 1);
                assert_eq!(hosts_tracked, 1);
                assert_eq!(shard_depths.len(), 2);
                break;
            }
            Message::Alert { .. } | Message::RttfEstimate { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    client.send(&Message::Bye);
    let snap = server.shutdown();
    assert!(snap.alerts >= 1);
}

/// The value of the first exposition sample whose name+labels start with
/// `prefix` (e.g. `"f2pm_serve_datapoints_total "` — note the trailing
/// space to match an unlabeled sample exactly).
fn sample(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_scrape_mid_load_and_after_hot_reload() {
    let server = start_server(2);
    let registry = server.registry();
    let mut client = V2Client::connect(server.addr(), 21);

    // Mid-load scrape: stream datapoints, then scrape on the same
    // connection. The blocking shard send means every datapoint was
    // counted by the reader before the scrape request was even read.
    let mut t = 0.0;
    for _ in 0..40 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
    }
    client.wait_estimate();
    let text = client.scrape();
    assert_eq!(
        sample(&text, "f2pm_serve_datapoints_total "),
        Some(40.0),
        "{text}"
    );
    assert_eq!(sample(&text, "f2pm_serve_model_generation "), Some(1.0));
    assert_eq!(sample(&text, "f2pm_serve_dropped_frames_total "), Some(0.0));
    assert_eq!(sample(&text, "f2pm_serve_connections "), Some(1.0));
    // Histogram families render in full: cumulative buckets, +Inf, count.
    assert!(text.contains("# TYPE f2pm_serve_estimate_latency_us histogram"));
    assert!(text.contains(r#"f2pm_serve_estimate_latency_us_bucket{le="+Inf"}"#));
    let estimates = sample(&text, "f2pm_serve_estimates_total ").unwrap();
    assert_eq!(
        sample(&text, "f2pm_serve_estimate_latency_us_count "),
        Some(estimates)
    );
    // Both shards expose queue-depth gauges and event counters.
    assert!(text.contains(r#"f2pm_serve_shard_queue_depth{shard="0"}"#));
    assert!(text.contains(r#"f2pm_serve_shard_queue_depth{shard="1"}"#));
    let ev0 = sample(&text, r#"f2pm_serve_shard_events_total{shard="0"}"#).unwrap_or(0.0);
    let ev1 = sample(&text, r#"f2pm_serve_shard_events_total{shard="1"}"#).unwrap_or(0.0);
    assert!(ev0 + ev1 >= 40.0, "shard events {ev0} + {ev1}");

    // Hot reload, then scrape again on the same connection: the
    // generation gauge must advance without a reconnect.
    assert_eq!(registry.install(linear(500.0, -1.0)).unwrap(), 2);
    let text = client.scrape();
    assert_eq!(
        sample(&text, "f2pm_serve_model_generation "),
        Some(2.0),
        "{text}"
    );
    assert_eq!(
        sample(&text, "f2pm_serve_metrics_requests_total "),
        Some(2.0)
    );

    client.send(&Message::Bye);
    let snap = server.shutdown();
    assert_eq!(snap.metrics_requests, 2);
    assert_eq!(snap.dropped, 0);
}

/// The artifact-store serving cycle end to end over real TCP: cold-start
/// from a published generation, publish a new generation mid-load on an
/// unreset connection, watch the scrape report the advance with zero
/// drops, then roll the store back and watch the model revert — the
/// *store* generation goes backwards while the *install* generation keeps
/// climbing.
#[test]
fn store_publish_and_rollback_swap_models_on_live_connections() {
    use f2pm_registry::{ArtifactMeta, ModelStore};
    use f2pm_serve::StoreWatcher;

    let dir = std::env::temp_dir().join(format!("f2pm_loopback_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ModelStore::open(&dir).unwrap();
    let meta = ArtifactMeta::new(
        "linear",
        agg(),
        vec!["swap_used".to_string(), "swap_used_slope".to_string()],
        50.0,
    );
    store.publish(&meta, &linear(1000.0, -2.0)).unwrap();

    // Cold start: the registry's whole input contract (columns, window)
    // comes from the artifact, not from flags or a training pass.
    let registry = ModelRegistry::from_store(&store).unwrap();
    assert_eq!(registry.agg().window_s, 30.0);
    let server = PredictionServer::start("127.0.0.1:0", ServeConfig::default(), registry).unwrap();
    let mut watcher =
        StoreWatcher::new(ModelStore::open(&dir).unwrap(), server.registry(), Some(1));
    let mut client = V2Client::connect(server.addr(), 17);

    let mut t = 0.0;
    for _ in 0..8 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
    }
    let (_, rttf, generation) = client.wait_estimate();
    assert_eq!((rttf, generation), (800.0, 1));

    // Publish generation 2 while the connection keeps streaming.
    store.publish(&meta, &linear(500.0, -1.0)).unwrap();
    assert_eq!(watcher.poll().unwrap(), Some((2, 2)));
    let mut saw_gen2 = false;
    for _ in 0..30 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
        let (_, rttf, generation) = client.wait_estimate();
        if generation == 2 {
            assert_eq!(rttf, 400.0);
            saw_gen2 = true;
            break;
        }
        assert_eq!(rttf, 800.0, "pre-reload estimates from generation 1");
    }
    assert!(saw_gen2, "never observed a generation-2 estimate");
    let text = client.scrape();
    assert_eq!(sample(&text, "f2pm_serve_model_generation "), Some(2.0));
    assert_eq!(
        sample(&text, "f2pm_registry_active_generation "),
        Some(2.0),
        "{text}"
    );

    // Roll back: the store generation reverts to 1, the install
    // generation advances to 3, and the same connection sees the old
    // model again — never reset, nothing dropped.
    store.rollback(None).unwrap();
    assert_eq!(watcher.poll().unwrap(), Some((1, 3)));
    let mut saw_rollback = false;
    for _ in 0..30 {
        client.send(&Message::Datapoint(dp(t, 100.0)));
        t += 5.0;
        let (_, rttf, generation) = client.wait_estimate();
        if generation == 3 {
            assert_eq!(rttf, 800.0);
            saw_rollback = true;
            break;
        }
    }
    assert!(saw_rollback, "never observed the rolled-back model");
    let text = client.scrape();
    assert_eq!(sample(&text, "f2pm_serve_model_generation "), Some(3.0));
    assert_eq!(sample(&text, "f2pm_registry_active_generation "), Some(1.0));
    // Artifact loads were timed on the same exposition.
    let loads = sample(&text, "f2pm_registry_artifact_load_us_count ").unwrap_or(0.0);
    assert!(loads >= 3.0, "cold start + 2 reloads timed, saw {loads}");

    client.send(&Message::Bye);
    let snap = server.shutdown();
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.total_accepted, 1, "one connection, never reset");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_client_cannot_scrape_metrics() {
    let server = start_server(1);
    // Hand-rolled v2 handshake: the connection may not speak v3 frames,
    // so a MetricsRequest is ignored rather than answered.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    Message::Hello {
        version: 2,
        host_id: 30,
    }
    .write_to(&mut stream)
    .unwrap();
    Message::MetricsRequest.write_to(&mut stream).unwrap();
    // The request is dropped; a StatsRequest after it is still answered,
    // proving the connection survived and nothing was queued before it.
    Message::StatsRequest.write_to(&mut stream).unwrap();
    match Message::read_from(&mut stream).unwrap().unwrap() {
        Message::Stats { .. } => {}
        other => panic!("expected Stats, got {other:?}"),
    }
    Message::Bye.write_to(&mut stream).unwrap();
    let snap = server.shutdown();
    assert_eq!(snap.metrics_requests, 0, "v2 scrape must not be served");
}

/// End-to-end equivalence gate for the batched data plane: a server
/// draining 256-event batches must push the **bit-identical** alert
/// stream (every estimate, in order — `threshold = ∞, hits = 1` turns
/// each estimate into an alert) as a server processing per-event
/// (`batch_cap = 1`), across a mid-stream `Fail` life reset.
#[test]
fn batched_server_publishes_identical_estimate_stream() {
    fn run(batch_cap: usize) -> Vec<(u64, u64)> {
        let registry = ModelRegistry::new(
            linear(1000.0, -2.0),
            vec!["swap_used".to_string(), "swap_used_slope".to_string()],
            agg(),
        )
        .unwrap();
        let server = PredictionServer::start(
            "127.0.0.1:0",
            ServeConfig {
                shards: 2,
                queue_cap: 256,
                batch_cap,
                policy: AlertPolicy {
                    rttf_threshold_s: f64::INFINITY,
                    consecutive_hits: 1,
                },
                ..ServeConfig::default()
            },
            registry,
        )
        .unwrap();
        let mut client = V2Client::connect(server.addr(), 6);
        for i in 0..240 {
            let t = i as f64 * 5.0;
            client.send(&Message::Datapoint(dp(t, 100.0 + (i % 40) as f64 * 7.0)));
            if i == 120 {
                client.send(&Message::Fail { t });
            }
        }
        client.send(&Message::Bye);
        // Bye is processed after every datapoint (same in-order
        // connection), so all alerts precede the EOF.
        let mut out = Vec::new();
        loop {
            match Message::read_from(&mut client.stream) {
                Ok(Some(Message::Alert { t, rttf, .. })) => out.push((t.to_bits(), rttf.to_bits())),
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        let snap = server.shutdown();
        assert_eq!(snap.dropped, 0);
        out
    }

    let per_event = run(1);
    let batched = run(256);
    assert!(per_event.len() >= 10, "only {} alerts", per_event.len());
    assert_eq!(per_event, batched, "estimate stream diverged");
}

#[test]
fn oversized_frame_closes_connection_but_not_server() {
    let server = start_server(1);
    // A corrupt length prefix: connection dies, server survives.
    let mut bad = TcpStream::connect(server.addr()).unwrap();
    Message::Hello {
        version: 2,
        host_id: 8,
    }
    .write_to(&mut bad)
    .unwrap();
    bad.write_all(&u32::MAX.to_be_bytes()).unwrap();
    bad.write_all(&[9u8; 16]).unwrap();
    drop(bad);

    // The server still serves new clients afterwards.
    let mut client = V2Client::connect(server.addr(), 9);
    for i in 0..10 {
        client.send(&Message::Datapoint(dp(i as f64 * 5.0, 100.0)));
    }
    let (_, rttf, _) = client.wait_estimate();
    assert_eq!(rttf, 800.0);
    server.shutdown();
}

/// A pathologically slow sender: every wire byte arrives in its own TCP
/// segment (and, on the reactor edge, usually its own epoll wakeup), so
/// frames are reassembled from partial tails across many turns. The
/// replies must be exactly what a well-paced client gets.
#[test]
fn byte_at_a_time_client_is_reassembled_across_wakeups() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    fn feed(stream: &mut TcpStream, m: &Message) {
        for &b in m.encode().as_ref() {
            stream.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    feed(
        &mut stream,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            host_id: 3,
        },
    );
    for i in 0..8 {
        feed(&mut stream, &Message::Datapoint(dp(i as f64 * 5.0, 100.0)));
    }
    // Predict (also dribbled byte-wise) until the async publish lands.
    let mut rttf = None;
    'wait: for _ in 0..500 {
        feed(&mut stream, &Message::PredictRequest { host_id: 3 });
        loop {
            match Message::read_from(&mut stream).unwrap().unwrap() {
                Message::RttfEstimate { rttf: Some(r), .. } => {
                    rttf = Some(r);
                    break 'wait;
                }
                Message::RttfEstimate { rttf: None, .. } => break,
                Message::Alert { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(rttf, Some(800.0));
    feed(&mut stream, &Message::Bye);
    let snap = server.shutdown();
    assert_eq!(snap.datapoints, 8);
    assert_eq!(snap.dropped, 0);
}

/// A v3 client that floods scrape requests and never reads must be
/// disconnected when its replies exceed the bounded outbound buffer —
/// the reactor trades the connection, never unbounded memory.
#[cfg(target_os = "linux")]
#[test]
fn stalled_reader_is_evicted_at_the_outbound_bound() {
    let registry = ModelRegistry::new(
        linear(1000.0, -2.0),
        vec!["swap_used".to_string(), "swap_used_slope".to_string()],
        agg(),
    )
    .unwrap();
    let server = PredictionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 1,
            queue_cap: 256,
            batch_cap: 64,
            policy: AlertPolicy::default(),
            outbound_cap: 2048,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let mut client = V2Client::connect(server.addr(), 11);
    // Each exposition reply is several KiB; a burst of unread scrapes
    // blows through the 2 KiB outbound bound immediately.
    for _ in 0..64 {
        if Message::MetricsRequest
            .write_to(&mut client.stream)
            .is_err()
        {
            break; // already disconnected mid-burst: exactly the point
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.metrics().evicted_slow == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled reader was never evicted"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The client side observes the disconnect (EOF or reset).
    client
        .stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 4096];
    loop {
        use std::io::Read;
        match client.stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let snap = server.shutdown();
    assert!(snap.evicted_slow >= 1, "eviction counter must record it");
    assert_eq!(snap.dropped, 0);
}

/// Shutdown with a thousand parked idle connections: the eventfd wakeup
/// must tear the whole fleet down promptly — no per-connection timeouts,
/// no leaked sockets, gauge back to zero.
#[cfg(target_os = "linux")]
#[test]
fn shutdown_with_a_thousand_idle_connections_is_prompt() {
    let server = start_server(2);
    let addr = server.addr();
    let conns: Vec<TcpStream> = (0..1000u32)
        .map(|i| {
            let mut s = TcpStream::connect(addr).unwrap();
            Message::Hello {
                version: PROTOCOL_VERSION,
                host_id: 100 + i,
            }
            .write_to(&mut s)
            .unwrap();
            s
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.metrics().connections < 1000 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never saw the full idle fleet ({} live)",
            server.metrics().connections
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let started = std::time::Instant::now();
    let snap = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown took {:?} with idle conns parked",
        started.elapsed()
    );
    assert_eq!(snap.total_accepted, 1000);
    assert_eq!(snap.connections, 0, "every idle conn torn down");
    assert_eq!(snap.dropped, 0);
    drop(conns);
}

/// A v3 client against a v4 server: the deprecated anonymous `Stats`
/// shape still answers `StatsRequest`, and the v4-only `TopKRequest` is
/// ignored without killing the connection — exactly the version-gate
/// contract that lets old fleets scrape new instances.
#[test]
fn v3_client_against_v4_server_gets_legacy_stats() {
    let server = start_server(2);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    Message::Hello {
        version: 3,
        host_id: 77,
    }
    .write_to(&mut stream)
    .unwrap();

    // v4-only request first: must be dropped, not answered, not fatal.
    Message::TopKRequest { k: 5 }.write_to(&mut stream).unwrap();
    Message::StatsRequest.write_to(&mut stream).unwrap();
    match Message::read_from(&mut stream).unwrap().unwrap() {
        Message::Stats {
            connections,
            dropped,
            ..
        } => {
            assert_eq!(connections, 1);
            assert_eq!(dropped, 0);
        }
        other => panic!("expected legacy Stats for a v3 client, got {other:?}"),
    }
    // The v3 scrape path still works on the same connection.
    Message::MetricsRequest.write_to(&mut stream).unwrap();
    match Message::read_from(&mut stream).unwrap().unwrap() {
        Message::MetricsText { text } => {
            assert!(text.contains("f2pm_serve_instance_info"), "{text}")
        }
        other => panic!("expected MetricsText, got {other:?}"),
    }
    Message::Bye.write_to(&mut stream).unwrap();
    server.shutdown();
}

/// `TopKRequest` over the wire: the reply comes off the seqlock estimate
/// board — ascending RTTF, truncated at k, stamped with the instance id.
#[test]
fn topk_over_the_wire_ranks_hosts_nearest_failure_first() {
    let registry = ModelRegistry::new(
        linear(1000.0, -2.0),
        vec!["swap_used".to_string(), "swap_used_slope".to_string()],
        agg(),
    )
    .unwrap();
    let server = PredictionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 2,
            instance_id: 42,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();

    // rttf = 1000 − 2 × swap: host 3 (swap 450 → rttf 100) is nearest
    // failure, then host 1 (300 → 400), then host 2 (100 → 800).
    let hosts: Vec<(u32, f64)> = vec![(1, 300.0), (2, 100.0), (3, 450.0)];
    for &(host, swap) in &hosts {
        let mut client = V2Client::connect(server.addr(), host);
        let mut t = 0.0;
        for _ in 0..8 {
            client.send(&Message::Datapoint(dp(t, swap)));
            t += 5.0;
        }
        client.wait_estimate();
        client.send(&Message::Bye);
    }

    let mut client = V2Client::connect(server.addr(), 99);
    client.send(&Message::TopKRequest { k: 2 });
    loop {
        match client.recv() {
            Message::TopKReply {
                instance_id,
                entries,
            } => {
                assert_eq!(instance_id, 42);
                assert_eq!(entries.len(), 2, "k truncates the board");
                assert_eq!(entries[0].host_id, 3);
                assert_eq!(entries[0].rttf, 100.0);
                assert_eq!(entries[1].host_id, 1);
                assert_eq!(entries[1].rttf, 400.0);
                assert!(entries[0].model_generation >= 1);
                break;
            }
            Message::Alert { .. } | Message::RttfEstimate { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    server.shutdown();
}

/// The whole fleet plane in-process: three serve instances, hosts routed
/// by the consistent-hash ring, and the `Fleet` aggregator's rollup,
/// merged top-K, and merged exposition all cross-checked against the
/// per-instance ground truth (seqlock boards, per-instance scrapes).
#[test]
fn fleet_aggregator_over_three_instances() {
    use f2pm_serve::{Fleet, HashRing};

    let instance_ids = [1u32, 2, 3];
    let servers: Vec<ServeHandle> = instance_ids
        .iter()
        .map(|&id| {
            let registry = ModelRegistry::new(
                linear(1000.0, -2.0),
                vec!["swap_used".to_string(), "swap_used_slope".to_string()],
                agg(),
            )
            .unwrap();
            PredictionServer::start(
                "127.0.0.1:0",
                ServeConfig {
                    shards: 2,
                    instance_id: id,
                    ..ServeConfig::default()
                },
                registry,
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    // Route 24 hosts across the fleet by the ring; distinct swap levels
    // make every host's RTTF unique and exactly predictable.
    let ring = HashRing::new(&instance_ids);
    let hosts: Vec<(u32, f64)> = (0..24u32).map(|h| (h, 20.0 + h as f64 * 15.0)).collect();
    let mut per_instance_hosts = 0usize;
    for &(host, swap) in &hosts {
        let owner = ring.route(host).unwrap();
        let at = instance_ids.iter().position(|&i| i == owner).unwrap();
        per_instance_hosts += 1;
        let mut client = V2Client::connect(servers[at].addr(), host);
        let mut t = 0.0;
        for _ in 0..8 {
            client.send(&Message::Datapoint(dp(t, swap)));
            t += 5.0;
        }
        client.wait_estimate();
        client.send(&Message::Bye);
    }
    assert_eq!(per_instance_hosts, hosts.len());

    let mut fleet = Fleet::connect(&addrs).unwrap();
    assert_eq!(fleet.len(), 3);

    // Rollup: totals are exactly the sums of the per-instance snapshots,
    // and every host is tracked by exactly one instance.
    let stats = fleet.stats().unwrap();
    assert_eq!(stats.instances.len(), 3);
    assert_eq!(stats.hosts_tracked, hosts.len() as u64);
    assert_eq!(stats.datapoints, 8 * hosts.len() as u64);
    assert_eq!(stats.dropped, 0);
    let mut ids: Vec<u32> = stats.instances.iter().map(|s| s.instance_id).collect();
    ids.sort();
    assert_eq!(ids, instance_ids);
    for snap in &stats.instances {
        assert!(
            snap.hosts_tracked > 0,
            "ring left instance {} empty",
            snap.instance_id
        );
    }

    // Merged top-K: globally ascending RTTF, and identical to sorting the
    // union of the per-instance seqlock boards — the ground truth.
    let top = fleet.top_k(10).unwrap();
    assert_eq!(top.len(), 10);
    let mut expected: Vec<(u32, f64)> = Vec::new();
    for server in &servers {
        for (host, est) in server.board().top_k(usize::MAX) {
            expected.push((host, est.rttf));
        }
    }
    expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    expected.truncate(10);
    for (got, want) in top.iter().zip(&expected) {
        assert_eq!((got.host_id, got.rttf), *want);
    }
    for pair in top.windows(2) {
        assert!(pair[0].rttf <= pair[1].rttf, "ranking out of order");
    }
    // The host nearest failure fleet-wide is the one with the most swap.
    assert_eq!(top[0].host_id, 23);
    assert_eq!(top[0].rttf, 1000.0 - 2.0 * (20.0 + 23.0 * 15.0));

    // Merged exposition: the fleet counter equals the *sum* of the
    // per-instance counters, exactly.
    let mut expected_datapoints = 0.0;
    for server in &servers {
        let mut c = V2Client::connect(server.addr(), 90_000);
        expected_datapoints += sample(&c.scrape(), "f2pm_serve_datapoints_total ").unwrap();
        c.send(&Message::Bye);
    }
    let merged = fleet.merged_scrape().unwrap();
    assert_eq!(
        sample(&merged, "f2pm_serve_datapoints_total "),
        Some(expected_datapoints)
    );
    assert_eq!(expected_datapoints, 8.0 * hosts.len() as f64);
    // Instance identity survives the merge as attributable gauges.
    for id in instance_ids {
        assert!(
            merged.contains(&format!("instance=\"{id}\"")),
            "instance {id} missing from merged exposition:\n{merged}"
        );
    }

    for server in servers {
        let snap = server.shutdown();
        assert_eq!(snap.dropped, 0);
    }
}
