//! Free functions over `&[f64]` slices.
//!
//! The hot inner loops of the regressors (coordinate descent, SMO, CG) are
//! built from these primitives. They are deliberately slice-based and
//! allocation-free so the callers can reuse workhorse buffers (perf-book:
//! "Reusing Collections").

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ (the hot path skips the check in
/// release via `debug_assert!`).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Manual 4-way unroll: helps LLVM vectorize the reduction without
    // requiring -ffast-math style reassociation.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute value); 0 for an empty slice.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// `y += alpha * x`, the classic BLAS axpy.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Fused axpy pair `y += a0·x0 + a1·x1` in one sweep: one `y`
/// load/store and one loop per element instead of two, which is what
/// short-vector update kernels (where per-sweep overhead rivals the
/// arithmetic) need to keep the SIMD units fed.
#[inline]
pub fn axpy2(a0: f64, x0: &[f64], a1: f64, x1: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x0.len(), y.len(), "axpy2: length mismatch");
    debug_assert_eq!(x1.len(), y.len(), "axpy2: length mismatch");
    // Explicit 8-wide blocks: the auto-vectorizer's main loop wants ≥ 32
    // elements before it engages, which the short panel vectors of the
    // rank-k kernels never reach — a fixed trip count of 8 compiles to
    // one full-width SIMD op per block on every ISA tier instead.
    let split = y.len() / 8 * 8;
    let (y8, yt) = y.split_at_mut(split);
    let (x08, x0t) = x0.split_at(split);
    let (x18, x1t) = x1.split_at(split);
    for ((yc, xc), zc) in y8
        .chunks_exact_mut(8)
        .zip(x08.chunks_exact(8))
        .zip(x18.chunks_exact(8))
    {
        for i in 0..8 {
            yc[i] += a0 * xc[i] + a1 * zc[i];
        }
    }
    for ((yi, xi), zi) in yt.iter_mut().zip(x0t).zip(x1t) {
        *yi += a0 * xi + a1 * zi;
    }
}

/// `a *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, a: &mut [f64]) {
    for x in a {
        *x *= alpha;
    }
}

/// Element-wise `a - b` into a fresh vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_tail_lengths() {
        // Lengths around the unroll width of 4.
        for n in 0..9 {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expect: f64 = a.iter().map(|x| x * x).sum();
            assert_eq!(dot(&a, &a), expect, "n = {n}");
        }
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_picks_max_abs() {
        assert_eq!(norm_inf(&[1.0, -7.5, 3.0]), 7.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut a = vec![1.0, -2.0];
        scale(-3.0, &mut a);
        assert_eq!(a, vec![-3.0, 6.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[5.0, 1.0], &[2.0, 3.0]), vec![3.0, -2.0]);
    }

    proptest! {
        #[test]
        fn dot_commutes(a in proptest::collection::vec(-1e3_f64..1e3, 0..64)) {
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let ab = dot(&a, &b);
            let ba = dot(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
        }

        #[test]
        fn dot_matches_naive(a in proptest::collection::vec(-1e3_f64..1e3, 0..64)) {
            let b: Vec<f64> = a.iter().map(|x| x - 2.0).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot(&a, &b);
            prop_assert!((naive - fast).abs() <= 1e-6 * (1.0 + naive.abs()));
        }

        #[test]
        fn norm2_nonnegative_and_scales(
            a in proptest::collection::vec(-1e3_f64..1e3, 1..32),
            alpha in -10.0_f64..10.0,
        ) {
            let n = norm2(&a);
            prop_assert!(n >= 0.0);
            let mut b = a.clone();
            scale(alpha, &mut b);
            prop_assert!((norm2(&b) - alpha.abs() * n).abs() <= 1e-8 * (1.0 + n));
        }

        #[test]
        fn axpy_then_sub_roundtrip(
            x in proptest::collection::vec(-1e3_f64..1e3, 0..32),
        ) {
            // y = 0 + 1*x, then x - y == 0
            let mut y = vec![0.0; x.len()];
            axpy(1.0, &x, &mut y);
            let d = sub(&x, &y);
            prop_assert!(norm_inf(&d) == 0.0);
        }
    }
}
