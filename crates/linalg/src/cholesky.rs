//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the OLS normal-equation path, ridge systems, and the LS-SVM
//! kernel solve (`f2pm-ml`). The factorization stores the lower triangle `L`
//! with `A = L Lᵀ` and solves by forward/back substitution.
//!
//! Two factorization kernels share the entry point: the textbook scalar
//! column sweep ([`Cholesky::factor_scalar`], the reference) and a blocked
//! right-looking variant that factors a [`CHOL_BLOCK`]-wide panel, solves
//! the sub-diagonal panel rows against the panel's triangle, and pushes the
//! `O(n³)` trailing-matrix update through the register-tiled, band-parallel
//! [`crate::syrk_rows_upper_scratch`] kernel. Blocking reassociates the
//! trailing sums, so the two factors agree to rounding (~1e-14 relative on
//! well-conditioned Gram matrices), not bit-for-bit — the equivalence
//! suites pin them at 1e-10.

use crate::{LinalgError, Matrix, Result};

/// Panel width of the blocked factorization: 128 columns keep the panel
/// rows (128 × 8 B = 1 KB each) L1-resident through the triangular solve
/// while amortizing each syrk trailing update over a deep rank-128 batch.
pub const CHOL_BLOCK: usize = 128;

/// Below this order the scalar sweep wins: the blocked path's panel
/// copies and syrk dispatch cost more than the whole factorization.
pub const CHOL_BLOCKED_MIN: usize = 256;

/// The lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is left as zeros).
    /// Crate-visible so `crate::update` can maintain it in place.
    pub(crate) l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is trusted on
    /// symmetry (the pipeline always passes Gram/kernel matrices, which are
    /// symmetric by construction).
    ///
    /// Orders at or above [`CHOL_BLOCKED_MIN`] route through the blocked
    /// right-looking kernel; smaller systems use the scalar sweep.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`LinalgError::NonFinite`] if the input has
    /// NaN/inf entries.
    pub fn factor(a: &Matrix) -> Result<Self> {
        check_square_finite(a)?;
        if a.rows() >= CHOL_BLOCKED_MIN {
            Self::factor_blocked_unchecked(a)
        } else {
            Self::factor_scalar_unchecked(a)
        }
    }

    /// The reference scalar factorization (always the textbook column
    /// sweep, regardless of size) — the baseline the blocked kernel is
    /// benchmarked and equivalence-tested against.
    pub fn factor_scalar(a: &Matrix) -> Result<Self> {
        check_square_finite(a)?;
        Self::factor_scalar_unchecked(a)
    }

    fn factor_scalar_unchecked(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // d = a[j][j] - sum_k l[j][k]^2
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Blocked right-looking factorization. Per panel `[k, kend)`:
    ///
    /// 1. factor the panel columns in place (contributions of columns
    ///    `< k` were already folded in by earlier trailing updates, so
    ///    each column only sums over the panel's own columns);
    /// 2. form the sub-diagonal panel `P = L[kend.., k..kend]` and update
    ///    the trailing lower triangle `A[kend.., kend..] -= P Pᵀ` via the
    ///    symmetric rank-k kernel (register tiles, band-parallel).
    ///
    /// The panel work is `O(n² · CHOL_BLOCK)` — vanishing next to the
    /// `O(n³/3)` trailing updates that now run at syrk speed.
    fn factor_blocked_unchecked(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        // Working copy of the lower triangle (upper stays zero — it is
        // the final factor layout).
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        let mut k = 0;
        while k < n {
            let kend = (k + CHOL_BLOCK).min(n);
            // Panel factorization: scalar column sweep over panel columns
            // only (row slices are contiguous, so the inner sums stream).
            for j in k..kend {
                let (head, tail) = l.as_mut_slice().split_at_mut((j + 1) * n);
                let rowj = &mut head[j * n..];
                let mut d = rowj[j];
                for &v in &rowj[k..j] {
                    d -= v * v;
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: j });
                }
                let djj = d.sqrt();
                rowj[j] = djj;
                let rowj = &head[j * n + k..j * n + j];
                for i in j + 1..n {
                    let rowi = &mut tail[(i - j - 1) * n + k..(i - j - 1) * n + j + 1];
                    let mut s = rowi[j - k];
                    for (lv, rv) in rowi[..j - k].iter().zip(rowj) {
                        s -= lv * rv;
                    }
                    rowi[j - k] = s / djj;
                }
            }
            // Trailing update through the syrk kernel.
            if kend < n {
                let nt = n - kend;
                let nb = kend - k;
                let mut p = Matrix::scratch(nt, nb);
                for r in 0..nt {
                    p.row_mut(r).copy_from_slice(&l.row(kend + r)[k..kend]);
                }
                let mut g = crate::syrk_rows_upper_scratch(&p);
                crate::mirror_upper(&mut g);
                for r in 0..nt {
                    let dst = &mut l.row_mut(kend + r)[kend..kend + r + 1];
                    for (d, s) in dst.iter_mut().zip(&g.row(r)[..r + 1]) {
                        *d -= s;
                    }
                }
            }
            k = kend;
        }
        Ok(Cholesky { l })
    }

    /// Factor `a + ridge * I` — convenience for regularized systems. `ridge`
    /// must be ≥ 0.
    pub fn factor_ridged(a: &Matrix, ridge: f64) -> Result<Self> {
        assert!(ridge >= 0.0, "ridge must be non-negative");
        if ridge == 0.0 {
            return Self::factor(a);
        }
        let n = a.rows();
        let mut b = a.clone();
        for i in 0..n {
            b[(i, i)] += ridge;
        }
        Self::factor(&b)
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` using the stored factor.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let li = self.l.row(i);
            let mut s = y[i];
            for k in 0..i {
                s -= li[k] * y[k];
            }
            y[i] = s / li[i];
        }
        // Back substitution: Lᵀ x = y, outer-product form. The gather form
        // strides down a column of `l` per unknown; eliminating each solved
        // x[i] from all earlier equations instead reads row `i` of `l`,
        // which is contiguous and vectorizes.
        for i in (0..n).rev() {
            let li = self.l.row(i);
            let xi = y[i] / li[i];
            y[i] = xi;
            let (head, _) = y.split_at_mut(i);
            for (yk, lik) in head.iter_mut().zip(li) {
                *yk -= lik * xi;
            }
        }
        Ok(y)
    }

    /// Solve for several right-hand sides stacked as matrix columns.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// log-determinant of `A` (numerically stable via the factor diagonal).
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

fn check_square_finite(a: &Matrix) -> Result<()> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite {
            what: "cholesky input",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a fixed M → strictly SPD.
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 3.0], &[2.0, 0.0, 1.0]]);
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut a = spd3();
        a[(1, 1)] = f64::NAN;
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn ridge_rescues_singular() {
        // Rank-1 matrix: not PD, but PD after ridging.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        assert!(Cholesky::factor_ridged(&a, 1e-6).is_ok());
    }

    #[test]
    fn solve_matrix_identity_rhs_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn solve_dimension_check() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    /// Deterministic SPD matrix `M Mᵀ + ridge·I` of order `n`.
    fn spd_n(n: usize, phase: f64, ridge: f64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = ((i * n + j) as f64 * 0.13 + phase).sin();
            }
        }
        let mut a = crate::syrk_rows(&m);
        for i in 0..n {
            a[(i, i)] += ridge;
        }
        a
    }

    #[test]
    fn blocked_matches_scalar_across_panel_boundaries() {
        // Orders straddling CHOL_BLOCK and CHOL_BLOCKED_MIN, including
        // exact multiples and ragged tails.
        for n in [
            CHOL_BLOCKED_MIN,
            CHOL_BLOCKED_MIN + 1,
            2 * CHOL_BLOCK,
            2 * CHOL_BLOCK + 37,
            3 * CHOL_BLOCK - 1,
        ] {
            let a = spd_n(n, 0.4, n as f64);
            let blocked = Cholesky::factor(&a).unwrap();
            let scalar = Cholesky::factor_scalar(&a).unwrap();
            let mut worst = 0.0_f64;
            for i in 0..n {
                for j in 0..n {
                    let scale = scalar.l()[(i, j)].abs().max(1.0);
                    worst = worst.max((blocked.l()[(i, j)] - scalar.l()[(i, j)]).abs() / scale);
                }
            }
            assert!(worst < 1e-10, "n = {n}: worst elementwise diff {worst:e}");
        }
    }

    #[test]
    fn blocked_solve_residual_is_tiny() {
        let n = CHOL_BLOCKED_MIN + 61;
        let a = spd_n(n, 1.3, n as f64);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos() * 3.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        let denom = crate::norm2(&b).max(1.0);
        let resid = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi) * (ri - bi))
            .sum::<f64>()
            .sqrt()
            / denom;
        assert!(resid < 1e-10, "relative residual {resid:e}");
    }

    #[test]
    fn blocked_reports_absolute_pivot_index() {
        // SPD leading block, then a row/column duplicating an earlier one
        // past the first panel: the failing pivot must carry its absolute
        // index, not a panel-local one.
        let n = CHOL_BLOCK + 40;
        let mut a = spd_n(n, 0.9, n as f64);
        let dup = CHOL_BLOCK + 17;
        for j in 0..n {
            let v = a[(3, j)];
            a[(dup, j)] = v;
            a[(j, dup)] = v;
        }
        a[(dup, dup)] = a[(3, 3)];
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => {
                assert!(pivot > CHOL_BLOCK, "pivot {pivot} should be absolute")
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_blocked_matches_scalar_on_random_spd(
            seed in 0u64..1000,
            extra in 0usize..40,
        ) {
            // Random SPD above the blocked threshold: factors agree to
            // 1e-10 elementwise and the solve recovers a known solution.
            let n = CHOL_BLOCKED_MIN + extra;
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = next();
                }
            }
            let mut a = crate::syrk_rows(&m);
            for i in 0..n {
                a[(i, i)] += n as f64; // safely SPD
            }
            let blocked = Cholesky::factor(&a).unwrap();
            let scalar = Cholesky::factor_scalar(&a).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    let scale = scalar.l()[(i, j)].abs().max(1.0);
                    let diff = (blocked.l()[(i, j)] - scalar.l()[(i, j)]).abs() / scale;
                    prop_assert!(diff < 1e-10, "({i},{j}): {diff:e}");
                }
            }
            let x_true: Vec<f64> = (0..n).map(|_| next() * 5.0).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = blocked.solve(&b).unwrap();
            for (g, t) in x.iter().zip(&x_true) {
                prop_assert!((g - t).abs() < 1e-8, "{g} vs {t}");
            }
        }
    }

    proptest! {
        #[test]
        fn random_spd_solve_roundtrip(
            vals in proptest::collection::vec(-3.0_f64..3.0, 16),
            x in proptest::collection::vec(-5.0_f64..5.0, 4),
        ) {
            let m = Matrix::from_vec(4, 4, vals);
            let mut a = m.matmul(&m.transpose()).unwrap();
            for i in 0..4 { a[(i, i)] += 2.0; } // ensure strictly SPD
            let b = a.matvec(&x).unwrap();
            let ch = Cholesky::factor(&a).unwrap();
            let got = ch.solve(&b).unwrap();
            for (g, t) in got.iter().zip(&x) {
                prop_assert!((g - t).abs() < 1e-6);
            }
        }
    }
}
