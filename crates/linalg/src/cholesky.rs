//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the OLS normal-equation path, ridge systems, and the LS-SVM
//! kernel solve (`f2pm-ml`). The factorization stores the lower triangle `L`
//! with `A = L Lᵀ` and solves by forward/back substitution.

use crate::{LinalgError, Matrix, Result};

/// The lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is left as zeros).
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is trusted on
    /// symmetry (the pipeline always passes Gram/kernel matrices, which are
    /// symmetric by construction).
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`LinalgError::NonFinite`] if the input has
    /// NaN/inf entries.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "cholesky input",
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // d = a[j][j] - sum_k l[j][k]^2
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factor `a + ridge * I` — convenience for regularized systems. `ridge`
    /// must be ≥ 0.
    pub fn factor_ridged(a: &Matrix, ridge: f64) -> Result<Self> {
        assert!(ridge >= 0.0, "ridge must be non-negative");
        if ridge == 0.0 {
            return Self::factor(a);
        }
        let n = a.rows();
        let mut b = a.clone();
        for i in 0..n {
            b[(i, i)] += ridge;
        }
        Self::factor(&b)
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` using the stored factor.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let li = self.l.row(i);
            let mut s = y[i];
            for k in 0..i {
                s -= li[k] * y[k];
            }
            y[i] = s / li[i];
        }
        // Back substitution: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solve for several right-hand sides stacked as matrix columns.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// log-determinant of `A` (numerically stable via the factor diagonal).
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a fixed M → strictly SPD.
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 3.0], &[2.0, 0.0, 1.0]]);
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut a = spd3();
        a[(1, 1)] = f64::NAN;
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn ridge_rescues_singular() {
        // Rank-1 matrix: not PD, but PD after ridging.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        assert!(Cholesky::factor_ridged(&a, 1e-6).is_ok());
    }

    #[test]
    fn solve_matrix_identity_rhs_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn solve_dimension_check() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn random_spd_solve_roundtrip(
            vals in proptest::collection::vec(-3.0_f64..3.0, 16),
            x in proptest::collection::vec(-5.0_f64..5.0, 4),
        ) {
            let m = Matrix::from_vec(4, 4, vals);
            let mut a = m.matmul(&m.transpose()).unwrap();
            for i in 0..4 { a[(i, i)] += 2.0; } // ensure strictly SPD
            let b = a.matvec(&x).unwrap();
            let ch = Cholesky::factor(&a).unwrap();
            let got = ch.solve(&b).unwrap();
            for (g, t) in got.iter().zip(&x) {
                prop_assert!((g - t).abs() < 1e-6);
            }
        }
    }
}
