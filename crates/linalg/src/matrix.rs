//! Dense row-major matrix.

use crate::{dot, LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Rows are contiguous in memory, which matches the dominant access pattern
/// of the regression solvers in `f2pm-ml` (iterate over samples = rows).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Minimum element count for the drop-time buffer pool. Smaller
/// allocations are cheap to refault; buffers at or above this (8 MiB)
/// cost milliseconds of page faults to recreate, which dominates the
/// Gram-matrix hot path when models are fit repeatedly (CV folds,
/// benches).
const POOL_MIN_ELEMS: usize = 1 << 20;

thread_local! {
    /// One cached large backing buffer per thread. Holding a single
    /// slot bounds retained memory to the largest recent matrix while
    /// still turning the common alloc-compute-drop-realloc cycle of
    /// equal-sized Gram matrices into a no-fault reuse.
    static BUF_POOL: std::cell::RefCell<Option<Vec<f64>>> = const { std::cell::RefCell::new(None) };
}

/// Fetch a pooled buffer resized to `len` (contents unspecified), or
/// `None` if the pool is empty or too small.
fn pool_take(len: usize) -> Option<Vec<f64>> {
    if len < POOL_MIN_ELEMS {
        return None;
    }
    BUF_POOL.with(|p| {
        let mut slot = p.borrow_mut();
        match slot.take() {
            Some(mut v) if v.capacity() >= len => {
                if v.len() >= len {
                    v.truncate(len);
                } else {
                    v.resize(len, 0.0);
                }
                Some(v)
            }
            other => {
                *slot = other;
                None
            }
        }
    })
}

impl Drop for Matrix {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.data);
        if v.capacity() >= POOL_MIN_ELEMS {
            BUF_POOL.with(|p| {
                let mut slot = p.borrow_mut();
                let keep = slot
                    .as_ref()
                    .is_none_or(|old| old.capacity() < v.capacity());
                if keep {
                    *slot = Some(v);
                }
            });
        }
    }
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows * cols;
        let data = match pool_take(len) {
            Some(mut v) => {
                v.fill(0.0);
                v
            }
            None => vec![0.0; len],
        };
        Matrix { rows, cols, data }
    }

    /// Matrix of the given shape with **unspecified** (but initialized)
    /// contents — a scratch target for kernels that overwrite every
    /// element. Reuses the drop-time buffer pool when possible, which
    /// skips both the zero-fill and the page faults of a fresh
    /// allocation; callers must not read an element before writing it.
    pub fn scratch(rows: usize, cols: usize) -> Self {
        let len = rows * cols;
        let data = pool_take(len).unwrap_or_else(|| vec![0.0; len]);
        Matrix { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an explicit shape and row-major backing vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: backing length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Recover the row-major backing vector (the inverse of
    /// [`Matrix::from_vec`]), so callers that wrap a reusable flat buffer
    /// in a matrix for one batched call can take the allocation back.
    pub fn into_vec(mut self) -> Vec<f64> {
        std::mem::take(&mut self.data)
    }

    /// Build from a slice of row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The raw row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major backing slice, mutably (for in-place kernels).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Whether every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), x)).collect())
    }

    /// Transposed matrix-vector product `Aᵀ x` without forming `Aᵀ`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_t",
                lhs: (self.cols, self.rows),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi != 0.0 {
                crate::axpy(xi, self.row(i), &mut out);
            }
        }
        Ok(out)
    }

    /// Matrix-matrix product `A B`.
    ///
    /// Large products (≥ [`crate::PARALLEL_MIN_ELEMS`] output elements)
    /// delegate to the cache-blocked, parallel [`crate::matmul_blocked`],
    /// which produces bit-identical results.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if self.rows * other.cols >= crate::PARALLEL_MIN_ELEMS {
            return crate::matmul_blocked(self, other);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the inner loop streams over contiguous rows of
        // `other` and `out`, which is the cache-friendly order for row-major
        // storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                crate::axpy(aik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (symmetric, `cols x cols`), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            for j in 0..n {
                let rj = r[j];
                if rj == 0.0 {
                    continue;
                }
                for k in j..n {
                    g[(j, k)] += rj * r[k];
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        g
    }

    /// Append a leading column of ones (intercept column), returning a new
    /// `rows x (cols+1)` matrix.
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out[(i, 0)] = 1.0;
            out.row_mut(i)[1..].copy_from_slice(self.row(i));
        }
        out
    }

    /// Select a subset of columns (in the given order) into a new matrix.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (d, &j) in dst.iter_mut().zip(idx) {
                *d = src[j];
            }
        }
        out
    }

    /// Select a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &i) in (0..idx.len()).zip(idx) {
            out.row_mut(dst).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::norm2(&self.data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn construction_and_indexing() {
        let m = small();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "backing length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 7.0];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_dimension_check() {
        let m = small();
        assert!(matches!(
            m.matvec(&[1.0, 2.0, 3.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_known_product() {
        let a = small();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_equals_at_a() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = m.gram();
        let expect = m.transpose().matmul(&m).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expect[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = vec![1.0, -1.0, 2.0];
        let fast = m.matvec_t(&x).unwrap();
        let slow = m.transpose().matvec(&x).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn with_intercept_prepends_ones() {
        let m = small().with_intercept();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.col(0), vec![1.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let c = m.select_columns(&[2, 0]);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
        let r = m.select_rows(&[1, 0, 1]);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = small();
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn debug_output_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    proptest! {
        #[test]
        fn matmul_associativity_with_identity(
            vals in proptest::collection::vec(-100.0_f64..100.0, 9)
        ) {
            let a = Matrix::from_vec(3, 3, vals);
            let i = Matrix::identity(3);
            let ai = a.matmul(&i).unwrap();
            let ia = i.matmul(&a).unwrap();
            prop_assert_eq!(&ai, &a);
            prop_assert_eq!(&ia, &a);
        }

        #[test]
        fn gram_is_symmetric_psd_diagonal(
            vals in proptest::collection::vec(-10.0_f64..10.0, 12)
        ) {
            let a = Matrix::from_vec(4, 3, vals);
            let g = a.gram();
            for i in 0..3 {
                prop_assert!(g[(i, i)] >= -1e-12);
                for j in 0..3 {
                    prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
                }
            }
        }
    }
}
