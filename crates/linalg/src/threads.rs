//! Effective worker-pool sizing shared by every fan-out in the workspace.

use std::sync::OnceLock;

/// Effective thread-pool width used by the parallel kernels (GEMM bands,
/// kernel-model predict batches, the model-generation grid, columnar
/// chunk scans).
///
/// Defaults to the machine's available parallelism. The `F2PM_THREADS`
/// environment variable overrides it — useful for pinning bench runs to
/// a fixed width so BENCH JSONs stay comparable across machines, and for
/// forcing serial execution when debugging. The value is resolved once
/// and cached for the life of the process.
pub fn pool_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("F2PM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_threads_is_positive_and_stable() {
        let a = pool_threads();
        assert!(a >= 1);
        assert_eq!(a, pool_threads(), "cached value must not change");
    }
}
