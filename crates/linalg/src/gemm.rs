//! Blocked, parallel dense multiply kernels.
//!
//! The F2PM hot paths — kernel Gram matrices for the SVR/LS-SVM solvers and
//! batched model scoring — reduce to three primitives:
//!
//! * [`matmul_blocked`]: cache-blocked general matrix multiply,
//! * [`syrk_rows`] / [`syrk_rows_upper`]: the symmetric rank-k update
//!   `G = X·Xᵀ` over *rows* (a `rows × rows` Gram, the transpose-free
//!   counterpart of [`Matrix::gram`]'s `AᵀA`),
//! * [`row_norms_sq`]: per-row squared norms (the RBF distance trick).
//!
//! All three fall back to straight serial loops below a size threshold and
//! fan out over `std::thread::scope` above it, handing each worker a
//! disjoint band of output rows (no synchronization, no unsafe).
//!
//! The inner loops are axpy-shaped (`y += a·x` over contiguous slices)
//! rather than dot-shaped: a reduction-free unit-stride loop is the form
//! LLVM vectorizes best without float reassociation. Every kernel sums
//! over the shared dimension in plain ascending order (`k = 0, 1, …`), so
//! a naive three-loop reference with a sequential inner sum reproduces
//! the blocked *and* parallel results **bit-for-bit** — the property
//! tests below assert exact equality, not closeness.

use crate::{axpy, LinalgError, Matrix, Result};

/// Column-panel width of the blocked kernels: the inner loops touch only a
/// `GEMM_BLOCK_COLS`-wide strip of the operand and output rows, keeping
/// the working set inside L1/L2 (256 doubles = 2 KiB per row).
pub const GEMM_BLOCK_COLS: usize = 256;

/// Depth of the k-blocking in the blocked GEMM: a block of
/// `GEMM_BLOCK_K` rows of `B` (each `GEMM_BLOCK_COLS` wide) is reused
/// across every row of the output band before moving on.
pub const GEMM_BLOCK_K: usize = 64;

/// Minimum number of output elements before any of the kernels spawns
/// worker threads. Below this the spawn/join overhead (~10 µs/thread)
/// is comparable to the whole computation.
pub const PARALLEL_MIN_ELEMS: usize = 64 * 1024;

/// Worker count for a kernel producing `elems` output elements across
/// `rows` distributable rows: 1 below [`PARALLEL_MIN_ELEMS`], otherwise
/// the effective pool width ([`crate::pool_threads`]) capped by the row
/// count.
pub fn worker_count(rows: usize, elems: usize) -> usize {
    if elems < PARALLEL_MIN_ELEMS || rows < 2 {
        return 1;
    }
    crate::pool_threads().min(rows).max(1)
}

/// Cache-blocked matrix product `A B`, parallel over output row bands.
///
/// Identical results to [`Matrix::matmul`] (the blocking preserves the
/// k-ascending accumulation order of the naive ikj loop), but with the
/// `B` panel reuse and thread fan-out that pay off on large shapes.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_blocked",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, _) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 {
        return Ok(Matrix::zeros(m, n));
    }
    let mut out = Matrix::zeros(m, n);
    let data = out.as_mut_slice();
    let workers = worker_count(m, m * n);
    if workers <= 1 {
        matmul_band(a, b, 0, data);
    } else {
        let band = m.div_ceil(workers);
        std::thread::scope(|scope| {
            for (t, chunk) in data.chunks_mut(band * n).enumerate() {
                scope.spawn(move || matmul_band(a, b, t * band, chunk));
            }
        });
    }
    Ok(out)
}

/// Blocked multiply of one output row band. `out` holds rows
/// `first_row ..` of `C`, row-major with `b.cols()` columns.
fn matmul_band(a: &Matrix, b: &Matrix, first_row: usize, out: &mut [f64]) {
    let n = b.cols();
    let k = a.cols();
    let rows = out.len() / n.max(1);
    for kk in (0..k).step_by(GEMM_BLOCK_K) {
        let kend = (kk + GEMM_BLOCK_K).min(k);
        for jj in (0..n).step_by(GEMM_BLOCK_COLS) {
            let jend = (jj + GEMM_BLOCK_COLS).min(n);
            for local in 0..rows {
                let arow = a.row(first_row + local);
                let crow = &mut out[local * n + jj..local * n + jend];
                for kx in kk..kend {
                    let aik = arow[kx];
                    if aik == 0.0 {
                        continue;
                    }
                    axpy(aik, &b.row(kx)[jj..jend], crow);
                }
            }
        }
    }
}

/// Row Gram matrix `G = X·Xᵀ` (symmetric, `rows × rows`), computing only
/// the upper triangle and mirroring it into the lower one.
pub fn syrk_rows(x: &Matrix) -> Matrix {
    let mut g = syrk_rows_upper_scratch(x);
    mirror_upper(&mut g);
    g
}

/// Upper-triangular half of `X·Xᵀ`: entries `(i, j)` with `j ≥ i` are
/// filled, the strict lower triangle is left at zero. Callers that
/// post-process the triangle (e.g. the RBF distance transform) mirror
/// afterwards via [`mirror_upper`] to avoid touching entries twice.
pub fn syrk_rows_upper(x: &Matrix) -> Matrix {
    let mut g = syrk_rows_upper_scratch(x);
    let n = g.rows();
    let data = g.as_mut_slice();
    for i in 1..n {
        data[i * n..i * n + i].fill(0.0);
    }
    g
}

/// [`syrk_rows_upper`] into a pooled scratch matrix: the upper triangle
/// (including the diagonal) holds `X·Xᵀ`, the strict lower triangle is
/// **unspecified**. The fast path for callers that overwrite the lower
/// half anyway ([`syrk_rows`], the RBF Gram transform) — skipping the
/// zero-fill also skips the page faults of a fresh allocation, which
/// cost more than the arithmetic at campaign scale.
pub fn syrk_rows_upper_scratch(x: &Matrix) -> Matrix {
    let n = x.rows();
    let mut g = Matrix::scratch(n, n);
    if n == 0 {
        return g;
    }
    // One shared transpose so the register tiles stream contiguous
    // feature rows (columns of `x`); for the campaign shapes this is a
    // few hundred KiB, amortized across every band and panel.
    let xt = x.transpose();
    let workers = worker_count(n, n * n / 2);
    on_triangle_bands(g.as_mut_slice(), n, workers, |first_row, band| {
        syrk_band(x, &xt, first_row, band)
    });
    g
}

/// Register-tile shape of the syrk microkernel: [`SYRK_TILE_ROWS`] ×
/// [`SYRK_TILE_COLS`] accumulators live in registers across the whole
/// `k` sweep, so each Gram entry is stored exactly once, and the eight
/// row chains give the FMA units independent work — a single
/// accumulator vector serializes on the multiply-add latency and runs
/// severalfold slower on the same data.
const SYRK_TILE_COLS: usize = 8;
const SYRK_TILE_ROWS: usize = 8;

/// Sequential dot of `a` against column `j` of `xt` (ascending `k`),
/// the scalar edge/tail path of the syrk kernel.
#[inline]
fn dot_col_seq(a: &[f64], xt: &Matrix, j: usize) -> f64 {
    let mut s = 0.0;
    for (k, &aik) in a.iter().enumerate() {
        s += aik * xt[(k, j)];
    }
    s
}

/// Upper-triangle kernel for one row band: walk the band in
/// [`SYRK_TILE_ROWS`]-row groups and [`SYRK_TILE_COLS`]-wide column
/// tiles of the transposed operand, accumulating `Σ_k x_ik · x_jk` in
/// registers in plain ascending-`k` order. The triangle's ragged edge
/// (columns left of the tile rows' diagonals) and tile tails fall back
/// to the scalar column dot, which accumulates in the same order.
fn syrk_band(x: &Matrix, xt: &Matrix, first_row: usize, band: &mut [f64]) {
    // Narrower panels than the GEMM: the tile loop streams `p` rows of
    // `xt` at once, and `p x SYRK_BLOCK_COLS` doubles must stay L1-resident
    // alongside the tile rows of `x` and the output slices.
    const SYRK_BLOCK_COLS: usize = 128;
    let n = x.rows();
    let rows = band.len() / n.max(1);
    for jj in (first_row..n).step_by(SYRK_BLOCK_COLS) {
        let jend = (jj + SYRK_BLOCK_COLS).min(n);
        let mut local = 0;
        while local < rows {
            let i0 = first_row + local;
            if i0 >= jend {
                break;
            }
            if rows - local < SYRK_TILE_ROWS || i0 + SYRK_TILE_ROWS > jend {
                // Not enough rows (or panel too short) for a full tile:
                // single-row scalar sweep.
                let arow = x.row(i0);
                let grow = &mut band[local * n..(local + 1) * n];
                for j in jj.max(i0)..jend {
                    grow[j] = dot_col_seq(arow, xt, j);
                }
                local += 1;
                continue;
            }
            let arows: [&[f64]; SYRK_TILE_ROWS] = std::array::from_fn(|r| x.row(i0 + r));
            // Vectorizable region starts where all tile rows are on or
            // right of the diagonal; the ragged edge before it is scalar.
            let vstart = jj.max(i0 + SYRK_TILE_ROWS - 1);
            for (r, arow) in arows.iter().enumerate() {
                let grow = &mut band[(local + r) * n..(local + r + 1) * n];
                for j in jj.max(i0 + r)..vstart {
                    grow[j] = dot_col_seq(arow, xt, j);
                }
            }
            let mut j = vstart;
            while j + SYRK_TILE_COLS <= jend {
                let mut acc = [[0.0f64; SYRK_TILE_COLS]; SYRK_TILE_ROWS];
                for k in 0..x.cols() {
                    let xr = &xt.row(k)[j..j + SYRK_TILE_COLS];
                    for (accr, arow) in acc.iter_mut().zip(arows.iter()) {
                        let a = arow[k];
                        for w in 0..SYRK_TILE_COLS {
                            accr[w] += a * xr[w];
                        }
                    }
                }
                for (r, vals) in acc.iter().enumerate() {
                    let at = (local + r) * n + j;
                    band[at..at + SYRK_TILE_COLS].copy_from_slice(vals);
                }
                j += SYRK_TILE_COLS;
            }
            for (r, arow) in arows.iter().enumerate() {
                let grow = &mut band[(local + r) * n..(local + r + 1) * n];
                for jt in j..jend {
                    grow[jt] = dot_col_seq(arow, xt, jt);
                }
            }
            local += SYRK_TILE_ROWS;
        }
    }
}

/// Copy the upper triangle of a square matrix onto its strict lower
/// triangle, making it symmetric. Tiled so both the row-wise writes and
/// the column-wise reads stay within a cache-resident square.
pub fn mirror_upper(g: &mut Matrix) {
    let n = g.rows();
    debug_assert_eq!(n, g.cols(), "mirror_upper needs a square matrix");
    const TILE: usize = 32;
    for ii in (0..n).step_by(TILE) {
        let iend = (ii + TILE).min(n);
        for jj in (0..=ii).step_by(TILE) {
            let jend = (jj + TILE).min(n);
            for i in ii..iend {
                for j in jj..jend.min(i) {
                    g[(i, j)] = g[(j, i)];
                }
            }
        }
    }
}

/// Squared Euclidean norm of every row, accumulated in ascending index
/// order (matching the [`syrk_rows`] diagonal bit-for-bit).
pub fn row_norms_sq(x: &Matrix) -> Vec<f64> {
    (0..x.rows())
        .map(|i| x.row(i).iter().fold(0.0, |s, v| s + v * v))
        .collect()
}

/// Run `f(first_row, band)` over row bands of a square `n × n` buffer,
/// fanning out over `workers` scoped threads. Band boundaries equalize
/// *upper-triangle* area (row `i` carries `n − i` entries), so triangular
/// kernels like [`syrk_rows_upper`] stay load-balanced; for full-row
/// kernels the skew is harmless.
pub fn on_triangle_bands<F>(data: &mut [f64], n: usize, workers: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(data.len(), n * n);
    if workers <= 1 || n < 2 {
        f(0, data);
        return;
    }
    // Row boundaries with ~equal triangle area per band.
    let total = n * (n + 1) / 2;
    let target = total.div_ceil(workers);
    let mut bounds = vec![0usize];
    let mut acc = 0usize;
    for i in 0..n {
        acc += n - i;
        if acc >= target && *bounds.last().unwrap() < i + 1 {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    if *bounds.last().unwrap() != n {
        bounds.push(n);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = data;
        for w in bounds.windows(2) {
            let (start, end) = (w[0], w[1]);
            let (band, tail) = rest.split_at_mut((end - start) * n);
            rest = tail;
            scope.spawn(move || f(start, band));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference X·Xᵀ: naive triple loop with a plain sequential inner
    /// sum — the accumulation order every blocked kernel must reproduce.
    fn naive_syrk(x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..x.cols() {
                    s += x[(i, k)] * x[(j, k)];
                }
                g[(i, j)] = s;
            }
        }
        g
    }

    fn deterministic(rows: usize, cols: usize, phase: f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = ((i * cols + j) as f64 * 0.37 + phase).sin() * 3.0;
            }
        }
        m
    }

    #[test]
    fn blocked_matmul_exact_on_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = matmul_blocked(&a, &b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn blocked_matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            matmul_blocked(&a, &Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn blocked_matmul_spans_block_boundaries_exactly() {
        // Shapes straddling every blocking constant, including a k larger
        // than GEMM_BLOCK_K and an n larger than GEMM_BLOCK_COLS.
        for (m, k, n) in [(3, 70, 300), (65, 65, 65), (1, 1, 1), (5, 260, 9)] {
            let a = deterministic(m, k, 0.1);
            let b = deterministic(k, n, 0.7);
            let fast = matmul_blocked(&a, &b).unwrap();
            let slow = a.matmul(&b).unwrap();
            assert_eq!(fast, slow, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_matmul_matches_serial_bitwise() {
        // Big enough to cross PARALLEL_MIN_ELEMS and engage the threaded
        // band path.
        let a = deterministic(300, 40, 0.3);
        let b = deterministic(40, 300, 1.1);
        const { assert!(300 * 300 >= PARALLEL_MIN_ELEMS) };
        let fast = matmul_blocked(&a, &b).unwrap();
        let slow = a.matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn syrk_matches_naive_bitwise_across_sizes() {
        for n in [1, 2, 31, 32, 33, 97, 260] {
            let x = deterministic(n, 7, 0.5);
            assert_eq!(syrk_rows(&x), naive_syrk(&x), "n = {n}");
        }
    }

    #[test]
    fn parallel_syrk_matches_naive_bitwise() {
        let x = deterministic(400, 11, 0.9);
        const { assert!(400 * 400 / 2 >= PARALLEL_MIN_ELEMS) };
        assert_eq!(syrk_rows(&x), naive_syrk(&x));
    }

    #[test]
    fn syrk_upper_leaves_lower_zero() {
        let x = deterministic(5, 3, 0.2);
        let g = syrk_rows_upper(&x);
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(g[(i, j)], 0.0);
            }
            assert!(g[(i, i)] > 0.0 || x.row(i).iter().all(|v| *v == 0.0));
        }
    }

    #[test]
    fn row_norms_match_gram_diagonal_bitwise() {
        let x = deterministic(20, 6, 0.4);
        let g = syrk_rows(&x);
        let sq = row_norms_sq(&x);
        for i in 0..20 {
            assert_eq!(sq[i], g[(i, i)]);
        }
    }

    #[test]
    fn mirror_makes_symmetric() {
        let n = 130; // crosses the mirror tile size
        let mut g = deterministic(n, n, 0.8);
        mirror_upper(&mut g);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g[(i, j)], g[(j, i)], "({i},{j})");
            }
        }
    }

    #[test]
    fn triangle_bands_cover_every_row_once() {
        let n = 130;
        let mut data = vec![0.0; n * n];
        on_triangle_bands(&mut data, n, 4, |first, band| {
            let rows = band.len() / n;
            for local in 0..rows {
                band[local * n] = (first + local) as f64 + 1.0;
            }
        });
        for i in 0..n {
            assert_eq!(data[i * n], i as f64 + 1.0, "row {i} visited once");
        }
    }

    proptest! {
        #[test]
        fn prop_blocked_matmul_matches_naive(
            vals in proptest::collection::vec(-50.0_f64..50.0, 60),
            rows in 1usize..6,
        ) {
            let cols = 60 / (rows * 2) * 2; // keep rows*cols <= 60
            let take = rows * cols;
            prop_assume!(take > 0);
            let a = Matrix::from_vec(rows, cols, vals[..take].to_vec());
            let b = a.transpose();
            let fast = matmul_blocked(&a, &b).unwrap();
            let slow = a.matmul(&b).unwrap();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_syrk_matches_naive(
            vals in proptest::collection::vec(-10.0_f64..10.0, 48),
            cols in 1usize..8,
        ) {
            let rows = 48 / cols;
            let a = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
            prop_assert_eq!(syrk_rows(&a), naive_syrk(&a));
        }

        #[test]
        fn prop_row_norms_match_diagonal(
            vals in proptest::collection::vec(-10.0_f64..10.0, 36),
        ) {
            let a = Matrix::from_vec(6, 6, vals);
            let g = syrk_rows(&a);
            let sq = row_norms_sq(&a);
            for i in 0..6 {
                prop_assert_eq!(sq[i], g[(i, i)]);
            }
        }
    }
}
