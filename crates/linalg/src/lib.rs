//! # f2pm-linalg
//!
//! Minimal, dependency-free dense linear algebra for the F2PM reproduction.
//!
//! The F2PM pipeline hand-rolls all of its regressors (OLS, lasso coordinate
//! descent, LS-SVM kernel solves, SVR), so it needs a small but solid dense
//! linear-algebra kernel: a row-major [`Matrix`], Cholesky and Householder-QR
//! factorizations, triangular solves, a conjugate-gradient fallback for large
//! well-conditioned systems, and column statistics / standardization used by
//! the feature pipeline.
//!
//! Everything operates on `f64`. Matrices are stored row-major in a single
//! contiguous `Vec<f64>` (cache-friendly for the row-wise access patterns of
//! the regression solvers; see the Rust Performance Book guidance on
//! contiguous storage and avoiding per-element allocation).
//!
//! ## Quick example
//!
//! ```
//! use f2pm_linalg::{Matrix, lstsq};
//!
//! // Fit y = 2x + 1 exactly.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
//! let y = [1.0, 3.0, 5.0];
//! let beta = lstsq(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-10);
//! assert!((beta[1] - 2.0).abs() < 1e-10);
//! ```

// Indexed loops in the numeric kernels intentionally mirror the textbook
// algorithm statements (i/j/k over matrix entries).
#![allow(clippy::needless_range_loop)]

mod cg;
mod cholesky;
mod error;
mod gemm;
mod matrix;
mod qr;
mod stats;
mod threads;
mod update;
mod vector;

pub use cg::{conjugate_gradient, CgOptions, CgOutcome};
pub use cholesky::{Cholesky, CHOL_BLOCK, CHOL_BLOCKED_MIN};
pub use error::LinalgError;
pub use gemm::{
    matmul_blocked, mirror_upper, on_triangle_bands, row_norms_sq, syrk_rows, syrk_rows_upper,
    syrk_rows_upper_scratch, worker_count, GEMM_BLOCK_COLS, GEMM_BLOCK_K, PARALLEL_MIN_ELEMS,
};
pub use matrix::Matrix;
pub use qr::{lstsq, residual_norm, QrFactorization};
pub use stats::{mean, variance, ColumnStats, Standardizer};
pub use threads::pool_threads;
pub use update::DOWNDATE_GUARD;
pub use vector::{axpy, axpy2, dot, norm2, norm_inf, scale, sub};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
