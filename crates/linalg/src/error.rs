//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is not positive definite (Cholesky pivot ≤ 0).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is rank deficient (zero diagonal in R during QR solve).
    RankDeficient {
        /// Index of the (near-)zero diagonal entry.
        column: usize,
    },
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// Input contained NaN or infinite values.
    NonFinite {
        /// Description of the offending operand.
        what: &'static str,
    },
    /// A factor update/downdate would lose too much precision to be
    /// trustworthy (e.g. a hyperbolic downdate whose rotation parameter
    /// approaches 1). The factor is left untouched; the caller should
    /// refactorize from scratch instead.
    IllConditioned {
        /// Description of the operation that was refused.
        op: &'static str,
        /// Pivot index at which the conditioning guard tripped.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::RankDeficient { column } => {
                write!(f, "matrix is rank deficient at column {column}")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite values in {what}")
            }
            LinalgError::IllConditioned { op, pivot } => {
                write!(
                    f,
                    "{op} is ill-conditioned at pivot {pivot}; refactorize instead"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_other_variants() {
        assert!(LinalgError::NotPositiveDefinite { pivot: 3 }
            .to_string()
            .contains("pivot 3"));
        assert!(LinalgError::RankDeficient { column: 2 }
            .to_string()
            .contains("column 2"));
        assert!(LinalgError::DidNotConverge {
            iterations: 10,
            residual: 0.5
        }
        .to_string()
        .contains("10 iterations"));
        assert!(LinalgError::NonFinite { what: "rhs" }
            .to_string()
            .contains("rhs"));
        assert!(LinalgError::IllConditioned {
            op: "cholesky downdate",
            pivot: 7
        }
        .to_string()
        .contains("pivot 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::RankDeficient { column: 0 });
    }
}
