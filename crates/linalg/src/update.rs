//! Rank-k maintenance of Cholesky factors.
//!
//! A sliding-window retrain changes the factored matrix in three ways, and
//! each gets a dedicated kernel so the engine never pays the `O(n³)`
//! refactorization for an `O(k)`-row window shift:
//!
//! * **Append** `k` rows/columns ([`Cholesky::extend`]) — bordering: one
//!   multi-RHS triangular solve for the new off-diagonal block, then a
//!   factorization of the `k × k` Schur complement. `O(n²k)`.
//! * **Retire the `r` leading** rows/columns ([`Cholesky::retire_leading`])
//!   — the trailing submatrix `A₂₂` is unchanged, and its new factor
//!   satisfies `L'L'ᵀ = L₂₂L₂₂ᵀ + L₂₁L₂₁ᵀ`: a *positive* rank-`r`
//!   recombination annihilated row-by-row with Householder reflections.
//!   Unconditionally stable (it is a QR factorization in disguise), so it
//!   never needs a conditioning guard. `O(n²r)`.
//! * **Subtract an outer product** `A − WᵀW` ([`Cholesky::downdate_rank_k`])
//!   — hyperbolic rotations. Unlike the two above, this is only
//!   *conditionally* stable: as a rotation parameter `|s| = |vⱼ|/lⱼⱼ`
//!   approaches 1 the transformation amplifies rounding error without
//!   bound. A guard refuses the downdate ([`LinalgError::IllConditioned`])
//!   before any garbage is produced — the factor is only committed after
//!   every pivot clears the guard — and the caller refactorizes instead.
//!
//! [`Cholesky::update_rank_k`] (add `WᵀW`) rides on the same Householder
//! core as `retire_leading` and shares its unconditional stability.
//!
//! The multi-RHS solve ([`Cholesky::solve_multi`]) keeps the right-hand
//! sides interleaved row-major (`n × k`, one row per unknown) so both
//! substitution sweeps run contiguous length-`k` axpys — this is the
//! "triangular-solve plumbing" that lets the LS-SVM refresh its dual
//! solution from an updated factor at `O(n²)` instead of rebuilding and
//! refactoring the Gram matrix.

use crate::{Cholesky, LinalgError, Matrix, Result};

/// Guard threshold for the hyperbolic downdate: pivot `j` is refused when
/// `lⱼⱼ² − vⱼ² ≤ DOWNDATE_GUARD · lⱼⱼ²`, i.e. when the downdate would
/// shrink the pivot by more than ~4 decimal digits. Beyond that the
/// hyperbolic rotation amplifies rounding by ≥ 10⁴ and a refactorization
/// (cheap for the `p × p` Gram systems this path serves) is both safer
/// and barely slower.
pub const DOWNDATE_GUARD: f64 = 1e-8;

impl Cholesky {
    /// Extend the factor of `A` to the factor of `[[A, B], [Bᵀ, C]]`.
    ///
    /// `b` is the `n × k` cross block between the existing and the new
    /// rows; `c` is the `k × k` diagonal block of the new rows (only its
    /// lower triangle is read). Cost `O(n²k)` against `O((n+k)³/3)` for a
    /// cold factorization.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] (with the absolute
    /// pivot index) if the bordered matrix is not positive definite; the
    /// existing factor is left untouched on any error.
    pub fn extend(&mut self, b: &Matrix, c: &Matrix) -> Result<()> {
        let n = self.order();
        let k = c.rows();
        if b.rows() != n || b.cols() != k || c.cols() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky extend",
                lhs: b.shape(),
                rhs: c.shape(),
            });
        }
        if !b.is_finite() || !c.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "cholesky extend blocks",
            });
        }
        if k == 0 {
            return Ok(());
        }
        // Off-diagonal factor block: solve L Y = B for Y (n × k).
        let mut y = b.clone();
        self.forward_multi_in_place(&mut y);
        // New factor rows carry Yᵀ in their first n columns; the transpose
        // also puts each new row's coefficients contiguous for the syrk.
        let yt = y.transpose();
        // Schur complement S = C − YᵀY, then factor it. `factor` only
        // reads the lower triangle, so the upper copy can stay stale.
        let yy = crate::syrk_rows(&yt);
        let mut s = Matrix::scratch(k, k);
        for i in 0..k {
            let si = s.row_mut(i);
            for ((sv, cv), yv) in si[..=i]
                .iter_mut()
                .zip(&c.row(i)[..=i])
                .zip(&yy.row(i)[..=i])
            {
                *sv = cv - yv;
            }
        }
        let ls = match Cholesky::factor(&s) {
            Ok(f) => f,
            Err(LinalgError::NotPositiveDefinite { pivot }) => {
                return Err(LinalgError::NotPositiveDefinite { pivot: n + pivot })
            }
            Err(e) => return Err(e),
        };
        // Assemble [[L, 0], [Yᵀ, L_S]]. Scratch + per-row upper zeroing:
        // one write pass instead of a full memset followed by the copies.
        let m = n + k;
        let mut l = Matrix::scratch(m, m);
        for i in 0..n {
            let row = l.row_mut(i);
            row[..=i].copy_from_slice(&self.l.row(i)[..=i]);
            row[i + 1..].fill(0.0);
        }
        for j in 0..k {
            let row = l.row_mut(n + j);
            row[..n].copy_from_slice(yt.row(j));
            row[n..=n + j].copy_from_slice(&ls.l.row(j)[..=j]);
            row[n + j + 1..].fill(0.0);
        }
        self.l = l;
        Ok(())
    }

    /// Shrink the factor of `A` to the factor of its trailing submatrix
    /// `A[r.., r..]`, retiring the `r` leading rows/columns.
    ///
    /// The trailing block of the old factor already satisfies
    /// `A₂₂ = L₂₂L₂₂ᵀ + L₂₁L₂₁ᵀ`, so the new factor is a positive rank-`r`
    /// recombination — computed with Householder reflections, which are
    /// unconditionally stable (no conditioning guard needed, in contrast
    /// to [`Cholesky::downdate_rank_k`]). Cost `O((n−r)²·r)`.
    pub fn retire_leading(&mut self, r: usize) -> Result<()> {
        let n = self.order();
        if r > n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky retire_leading",
                lhs: (n, n),
                rhs: (r, r),
            });
        }
        if r == 0 {
            return Ok(());
        }
        let m = n - r;
        let mut l = Matrix::scratch(m, m);
        let mut w = Matrix::scratch(m, r);
        for i in 0..m {
            let src = self.l.row(r + i);
            let dst = l.row_mut(i);
            dst[..=i].copy_from_slice(&src[r..=r + i]);
            dst[i + 1..].fill(0.0);
            w.row_mut(i).copy_from_slice(&src[..r]);
        }
        fold_rank_update(&mut l, &mut w)?;
        self.l = l;
        Ok(())
    }

    /// One steady-state sliding-window shift in a single pass: retire the
    /// `r` leading rows/columns and border by `k = c.rows()` incoming
    /// ones. When `r == k` (the factored order is unchanged — the
    /// continuous-retraining steady state) the whole shift happens inside
    /// the factor's own buffer: slide the kept triangle up-left, fold the
    /// retired coupling block into it, then write the new border rows
    /// over the vacated tail — no second `n²` assembly, no reallocation.
    /// When `r ≠ k` it delegates to [`Cholesky::retire_leading`] +
    /// [`Cholesky::extend`].
    ///
    /// `b` is the `(n − r) × k` cross block between the kept and the new
    /// rows; `c` the `k × k` diagonal block of the new rows (only its
    /// lower triangle is read).
    ///
    /// Unlike the two-step sequence, the fused path mutates in place: if
    /// it fails (non-positive-definite shifted window, non-finite border)
    /// **the factor is left unusable** and the caller must rebuild cold —
    /// which is exactly the retrain engine's fallback contract.
    pub fn shift_window(&mut self, r: usize, b: &Matrix, c: &Matrix) -> Result<()> {
        let n = self.order();
        let k = c.rows();
        if r > n || b.rows() != n - r || b.cols() != k || c.cols() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky shift_window",
                lhs: b.shape(),
                rhs: c.shape(),
            });
        }
        if r != k {
            self.retire_leading(r)?;
            return self.extend(b, c);
        }
        if k == 0 {
            return Ok(());
        }
        if !b.is_finite() || !c.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "cholesky shift blocks",
            });
        }
        let m = n - r;
        // Extract the retired coupling block, then slide the kept
        // triangle up-left in place (destination row i sits strictly
        // above source row r+i) with the upper tail zeroed in the same
        // write pass.
        let mut w = Matrix::scratch(m, r);
        {
            let data = self.l.as_mut_slice();
            for i in 0..m {
                let src = (r + i) * n;
                w.row_mut(i).copy_from_slice(&data[src..src + r]);
                data.copy_within(src + r..src + r + i + 1, i * n);
                data[i * n + i + 1..(i + 1) * n].fill(0.0);
            }
        }
        fold_rank_update_sub(&mut self.l, m, &mut w)?;
        // Border against the folded top-left block: Y = L⁻¹B, Schur
        // complement S = C − YᵀY, new rows written straight into the
        // vacated tail.
        let mut y = b.clone();
        self.forward_multi_sub(m, &mut y);
        let yt = y.transpose();
        let yy = crate::syrk_rows(&yt);
        let mut s = Matrix::scratch(k, k);
        for i in 0..k {
            let si = s.row_mut(i);
            for ((sv, cv), yv) in si[..=i]
                .iter_mut()
                .zip(&c.row(i)[..=i])
                .zip(&yy.row(i)[..=i])
            {
                *sv = cv - yv;
            }
        }
        let ls = match Cholesky::factor(&s) {
            Ok(f) => f,
            Err(LinalgError::NotPositiveDefinite { pivot }) => {
                return Err(LinalgError::NotPositiveDefinite { pivot: m + pivot })
            }
            Err(e) => return Err(e),
        };
        for j in 0..k {
            let row = self.l.row_mut(m + j);
            row[..m].copy_from_slice(yt.row(j));
            row[m..=m + j].copy_from_slice(&ls.l.row(j)[..=j]);
            row[m + j + 1..].fill(0.0);
        }
        Ok(())
    }

    /// Rank-k update: replace the factor of `A` with the factor of
    /// `A + WᵀW`, where `w` is `k × n` (one added data row per matrix
    /// row, matching the Gram-matrix convention `G += Σ xxᵀ`).
    ///
    /// Unconditionally stable — shares the Householder recombination core
    /// with [`Cholesky::retire_leading`]. Cost `O(n²k)`.
    pub fn update_rank_k(&mut self, w: &Matrix) -> Result<()> {
        let n = self.order();
        if w.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky update_rank_k",
                lhs: (n, n),
                rhs: w.shape(),
            });
        }
        if !w.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "cholesky update rows",
            });
        }
        if w.rows() == 0 {
            return Ok(());
        }
        // Align the update rows with the factor rows: wt[i] holds the k
        // coefficients that touch unknown i, contiguous per factor row.
        let mut wt = w.transpose();
        fold_rank_update(&mut self.l, &mut wt)
    }

    /// Rank-k downdate: replace the factor of `A` with the factor of
    /// `A − WᵀW`, where `w` is `k × n` (one retired data row per matrix
    /// row).
    ///
    /// Implemented as `k` sequential hyperbolic rank-1 downdates. This is
    /// the one *conditionally* stable factor operation: when a rotation
    /// parameter approaches 1 — the downdated matrix is nearly singular at
    /// that pivot — rounding error is amplified without bound. The guard
    /// ([`DOWNDATE_GUARD`]) returns [`LinalgError::IllConditioned`]
    /// *before* committing anything: on error the stored factor is
    /// bit-for-bit untouched and the caller should refactorize from the
    /// explicitly-maintained matrix instead.
    pub fn downdate_rank_k(&mut self, w: &Matrix) -> Result<()> {
        let n = self.order();
        if w.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky downdate_rank_k",
                lhs: (n, n),
                rhs: w.shape(),
            });
        }
        if !w.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "cholesky downdate rows",
            });
        }
        if w.rows() == 0 {
            return Ok(());
        }
        // Work on a copy so a guard trip at any pivot of any of the k
        // rank-1 passes leaves the stored factor untouched.
        let mut l = self.l.clone();
        let mut v = vec![0.0; n];
        for r in 0..w.rows() {
            v.copy_from_slice(w.row(r));
            downdate_rank1(&mut l, &mut v)?;
        }
        self.l = l;
        Ok(())
    }

    /// Solve `A X = B` for `k` right-hand sides stored *row-major
    /// interleaved*: `b` is `n × k` with row `i` holding the `i`-th entry
    /// of every right-hand side. Both substitution sweeps then run
    /// contiguous length-`k` axpys instead of `k` independent strided
    /// solves. Returns `X` in the same layout.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_multi",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut y = b.clone();
        self.forward_multi_in_place(&mut y);
        self.backward_multi_in_place(&mut y);
        Ok(y)
    }

    /// Forward substitution `L Y = B` over `k` interleaved right-hand
    /// sides, in place.
    fn forward_multi_in_place(&self, y: &mut Matrix) {
        self.forward_multi_sub(self.order(), y);
    }

    /// [`Cholesky::forward_multi_in_place`] against the leading `n × n`
    /// sub-factor only (`y` has `n` rows) — the in-place window shift
    /// solves its border against the already-folded top-left block while
    /// the trailing rows still hold retired state.
    fn forward_multi_sub(&self, n: usize, y: &mut Matrix) {
        let k = y.cols();
        if k == 0 {
            return;
        }
        if k == 2 {
            return self.forward_2rhs(n, y.as_mut_slice());
        }
        // Row-panel blocking: rows [i0, i1) first absorb every already-
        // solved row — j-blocked so a block of solved rows stays in cache
        // across the whole panel instead of being re-streamed per row,
        // and solved-row pairs fused into one sweep of the target row —
        // then solve against the panel's own triangle.
        const PANEL: usize = 64;
        let data = y.as_mut_slice();
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + PANEL).min(n);
            let (solved, rest) = data.split_at_mut(i0 * k);
            let block = &mut rest[..(i1 - i0) * k];
            for jj in (0..i0).step_by(PANEL) {
                let jend = (jj + PANEL).min(i0);
                for (local, yi) in block.chunks_exact_mut(k).enumerate() {
                    let li = self.l.row(i0 + local);
                    let mut j = jj;
                    while j + 1 < jend {
                        crate::axpy2(
                            -li[j],
                            &solved[j * k..(j + 1) * k],
                            -li[j + 1],
                            &solved[(j + 1) * k..(j + 2) * k],
                            yi,
                        );
                        j += 2;
                    }
                    if j < jend {
                        crate::axpy(-li[j], &solved[j * k..(j + 1) * k], yi);
                    }
                }
            }
            for i in i0..i1 {
                let li = self.l.row(i);
                let (done, cur) = block.split_at_mut((i - i0) * k);
                let yi = &mut cur[..k];
                for (j, &lij) in li[i0..i].iter().enumerate() {
                    crate::axpy(-lij, &done[j * k..(j + 1) * k], yi);
                }
                let inv = 1.0 / li[i];
                for a in yi.iter_mut() {
                    *a *= inv;
                }
            }
            i0 = i1;
        }
    }

    /// Forward substitution specialised to two interleaved right-hand
    /// sides (the engine's `(1 | y)` dual refresh): both accumulators
    /// live in registers across the whole gather over the contiguous
    /// `L` row, with two partial chains per side to hide add latency.
    fn forward_2rhs(&self, n: usize, data: &mut [f64]) {
        for i in 0..n {
            let li = self.l.row(i);
            let (solved, cur) = data.split_at_mut(2 * i);
            let (mut a0, mut a1, mut b0, mut b1) = (0.0, 0.0, 0.0, 0.0);
            let mut quads = solved.chunks_exact(4);
            let mut lj = li[..i].chunks_exact(2);
            for (s, l2) in (&mut quads).zip(&mut lj) {
                a0 += l2[0] * s[0];
                b0 += l2[0] * s[1];
                a1 += l2[1] * s[2];
                b1 += l2[1] * s[3];
            }
            if let (&[s0, s1], &[l0]) = (quads.remainder(), lj.remainder()) {
                a0 += l0 * s0;
                b0 += l0 * s1;
            }
            let inv = 1.0 / li[i];
            cur[0] = (cur[0] - (a0 + a1)) * inv;
            cur[1] = (cur[1] - (b0 + b1)) * inv;
        }
    }

    /// Back substitution specialised to two right-hand sides: the solved
    /// pair stays in registers while the pending column is swept once in
    /// scatter form (the gather form would stride down a column of `L`).
    fn backward_2rhs(&self, data: &mut [f64]) {
        let n = self.order();
        for i in (0..n).rev() {
            let li = self.l.row(i);
            let (pending, rest) = data.split_at_mut(2 * i);
            let inv = 1.0 / li[i];
            let a = rest[0] * inv;
            let b = rest[1] * inv;
            rest[0] = a;
            rest[1] = b;
            for (p, &lij) in pending.chunks_exact_mut(2).zip(li[..i].iter()) {
                p[0] -= lij * a;
                p[1] -= lij * b;
            }
        }
    }

    /// Back substitution `Lᵀ X = Y` over `k` interleaved right-hand sides,
    /// in place (outer-product form: row `i` of `L` is read contiguously).
    fn backward_multi_in_place(&self, y: &mut Matrix) {
        let n = self.order();
        let k = y.cols();
        if k == 0 {
            return;
        }
        if k == 2 {
            return self.backward_2rhs(y.as_mut_slice());
        }
        let data = y.as_mut_slice();
        for i in (0..n).rev() {
            let li = self.l.row(i);
            let (pending, rest) = data.split_at_mut(i * k);
            let yi = &mut rest[..k];
            let inv = 1.0 / li[i];
            for a in yi.iter_mut() {
                *a *= inv;
            }
            for (j, &lij) in li[..i].iter().enumerate() {
                let yj = &mut pending[j * k..(j + 1) * k];
                for (a, &b) in yj.iter_mut().zip(yi.iter()) {
                    *a -= lij * b;
                }
            }
        }
    }
}

/// Pivot-panel width of [`fold_rank_update`]. The reflector recurrence
/// is inherently serial, but only rows *inside* the panel need each
/// reflection immediately — every trailing row can absorb the whole
/// panel's reflections in one deferred pass. That pass loads each `w`
/// row once per panel instead of once per pivot (the unblocked loop
/// re-streamed the entire `w` mirror from memory `m` times) and its rows
/// are independent, so it fans out across the thread pool.
const FOLD_PANEL: usize = 32;

/// Replace `l` (lower-triangular, `m × m`) with the factor of
/// `L Lᵀ + W Wᵀ`, consuming `w` (`m × k`, rows aligned with factor rows)
/// as workspace.
///
/// Row `j` is annihilated by one Householder reflection over the
/// `(k+1)`-vector `[lⱼⱼ, wⱼ]`; applying it to each later row `i` touches
/// only `l[i][j]` plus the contiguous `w` row `i`, so the inner loop is a
/// pair of length-`k` fused multiply-adds. The reflector is built in the
/// cancellation-free form `v₀ = −σ/(d + ρ)` so the new pivot comes out
/// `+ρ` directly and the factor keeps a positive diagonal.
///
/// Reflections reach any given row in pivot order whether it sits inside
/// or below the current panel, so the blocked schedule performs exactly
/// the operations of the serial one.
fn fold_rank_update(l: &mut Matrix, w: &mut Matrix) -> Result<()> {
    let m = l.rows();
    fold_rank_update_sub(l, m, w)
}

/// [`fold_rank_update`] over the leading `m × m` sub-triangle of `l`
/// only (`w` has `m` rows); trailing rows and columns of `l` are never
/// read or written, which is what lets the in-place window shift fold
/// the slid-up triangle before overwriting the retired tail rows.
fn fold_rank_update_sub(l: &mut Matrix, m: usize, w: &mut Matrix) -> Result<()> {
    let k = w.cols();
    debug_assert_eq!(w.rows(), m);
    if k == 0 {
        // W Wᵀ = 0: only the pivot-positivity contract remains.
        for j in 0..m {
            let d = l[(j, j)];
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
        }
        return Ok(());
    }
    // Pad the workspace stride to a whole number of 8-wide SIMD blocks.
    // The padded tail starts at zero and stays zero under every
    // reflection (they are linear in the w rows), so the arithmetic over
    // the real k columns is bit-identical — but no inner sweep ever
    // drops into a scalar remainder loop. `w` is workspace the callers
    // discard, so the padded copy needs no write-back.
    let ks = k.next_multiple_of(8);
    if ks != k {
        let mut wp = Matrix::scratch(m, ks);
        for (dst, src) in wp
            .as_mut_slice()
            .chunks_exact_mut(ks)
            .zip(w.as_slice().chunks_exact(k))
        {
            dst[..k].copy_from_slice(src);
            dst[k..].fill(0.0);
        }
        return fold_rank_update_padded(l, m, &mut wp);
    }
    fold_rank_update_padded(l, m, w)
}

/// [`fold_rank_update_sub`] body; requires `w.cols()` to be a multiple
/// of 8 (or the original unpadded width when it already is one).
fn fold_rank_update_padded(l: &mut Matrix, m: usize, w: &mut Matrix) -> Result<()> {
    let k = w.cols();
    let mut v0s = [0.0; FOLD_PANEL];
    let mut taus = [0.0; FOLD_PANEL];
    let mut j0 = 0;
    while j0 < m {
        let j1 = (j0 + FOLD_PANEL).min(m);
        // Serial panel factorization. Pivot j reads w.row(j) after
        // reflections j0..j only — and since no reflection ever touches
        // rows at or above its own pivot, panel rows are *final* here:
        // the deferred pass below reads exactly the reflector states the
        // panel pivots saw.
        for j in j0..j1 {
            let d = l[(j, j)];
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let sigma = crate::dot(w.row(j), w.row(j));
            if sigma == 0.0 {
                v0s[j - j0] = 0.0;
                taus[j - j0] = 0.0;
                continue;
            }
            let rho = (d * d + sigma).sqrt();
            if !rho.is_finite() {
                return Err(LinalgError::NonFinite {
                    what: "cholesky rank update pivot",
                });
            }
            let v0 = -sigma / (d + rho); // = d − ρ without cancellation
            let tau = 2.0 / (v0 * v0 + sigma);
            l[(j, j)] = rho;
            v0s[j - j0] = v0;
            taus[j - j0] = tau;
            // Apply within the panel only; trailing rows take the whole
            // panel at once below.
            let (head, tail) = w.as_mut_slice().split_at_mut((j + 1) * k);
            let wj = &head[j * k..];
            for (t, wi) in tail[..(j1 - j - 1) * k].chunks_exact_mut(k).enumerate() {
                let i = j + 1 + t;
                let lij = l[(i, j)];
                let proj = v0 * lij + crate::dot(wj, wi);
                let coef = tau * proj;
                l[(i, j)] = lij - coef * v0;
                crate::axpy(-coef, wj, wi);
            }
        }
        // Deferred pass: every row below the panel absorbs reflections
        // j0..j1 in pivot order, via the compact-WY form
        // `Q = H_{j0}···H_{j1−1} = I − V T Vᵀ`. A row (over the combined
        // coordinates `x = [l[i][j0..j1] | wᵢ]`, where each reflector is
        // `vⱼ = [v0ⱼ eⱼ | uⱼ]`) becomes `x ← x − ((x·V)·T)·Vᵀ` — every
        // inner loop is a contiguous axpy over L1-resident panel data,
        // with none of the per-pivot dot-reduction chains the sequential
        // application pays. Rows are independent — fan out.
        let lm = l.cols();
        let nb = j1 - j0;
        let rows = m - j1;
        if rows > 0 {
            // uᵢᵀuⱼ cross products, the transposed panel (for the x·V
            // product in axpy form), and the T factor
            // (`T[0..j, j] = −τⱼ · T[0..j, 0..j] · (Vᵀvⱼ)[0..j]`,
            // `T[j][j] = τⱼ`). A τ = 0 pivot (σ was 0, so uⱼ = 0) zeroes
            // its whole T row/column and drops out exactly.
            let (wt, tmat) = {
                let panel = &w.as_slice()[j0 * k..j1 * k];
                let mut wt = Matrix::scratch(k, nb);
                for jj in 0..nb {
                    for (c, &v) in panel[jj * k..(jj + 1) * k].iter().enumerate() {
                        wt[(c, jj)] = v;
                    }
                }
                let mut tm = Matrix::zeros(nb, nb);
                let mut g = vec![0.0; nb];
                for j in 0..nb {
                    tm[(j, j)] = taus[j];
                    if taus[j] == 0.0 {
                        continue;
                    }
                    let uj = &panel[j * k..(j + 1) * k];
                    for i in 0..j {
                        g[i] = crate::dot(&panel[i * k..(i + 1) * k], uj);
                    }
                    for i in 0..j {
                        let mut s = 0.0;
                        for (i2, &gi2) in g[i..j].iter().enumerate() {
                            s += tm[(i, i + i2)] * gi2;
                        }
                        tm[(i, j)] = -taus[j] * s;
                    }
                }
                (wt, tm)
            };
            let l_tail = &mut l.as_mut_slice()[j1 * lm..m * lm];
            let (w_head, w_tail) = w.as_mut_slice().split_at_mut(j1 * k);
            let panel_w = &w_head[j0 * k..];
            let (v0s, taus) = (&v0s[..nb], &taus[..nb]);
            let (wt, tmat) = (&wt, &tmat);
            let apply_band = |l_band: &mut [f64], w_band: &mut [f64]| {
                let mut p = vec![0.0; nb];
                let mut q = vec![0.0; nb];
                for (lrow, wi) in l_band.chunks_exact_mut(lm).zip(w_band.chunks_exact_mut(k)) {
                    let lij = &mut lrow[j0..j1];
                    // p = x·V, absorbing wt rows two at a time so each
                    // sweep of `p` does double the arithmetic.
                    for ((pj, &v0), &t) in p.iter_mut().zip(v0s).zip(lij.iter()) {
                        *pj = v0 * t;
                    }
                    let mut c = 0;
                    while c + 1 < k {
                        crate::axpy2(wi[c], wt.row(c), wi[c + 1], wt.row(c + 1), &mut p);
                        c += 2;
                    }
                    if c < k {
                        crate::axpy(wi[c], wt.row(c), &mut p);
                    }
                    // q = p·T (T upper triangular), row pairs fused over
                    // their common tail.
                    q.fill(0.0);
                    let mut i2 = 0;
                    while i2 + 1 < nb {
                        q[i2] += p[i2] * tmat[(i2, i2)];
                        crate::axpy2(
                            p[i2],
                            &tmat.row(i2)[i2 + 1..],
                            p[i2 + 1],
                            &tmat.row(i2 + 1)[i2 + 1..],
                            &mut q[i2 + 1..],
                        );
                        i2 += 2;
                    }
                    if i2 < nb {
                        q[i2] += p[i2] * tmat[(i2, i2)];
                    }
                    // x ← x − q·Vᵀ, panel_w row pairs fused into one
                    // sweep of wᵢ.
                    for ((t, &qj), &v0) in lij.iter_mut().zip(q.iter()).zip(v0s) {
                        *t -= qj * v0;
                    }
                    let mut jj = 0;
                    while jj + 1 < nb {
                        crate::axpy2(
                            -q[jj],
                            &panel_w[jj * k..(jj + 1) * k],
                            -q[jj + 1],
                            &panel_w[(jj + 1) * k..(jj + 2) * k],
                            wi,
                        );
                        jj += 2;
                    }
                    if jj < nb {
                        crate::axpy(-q[jj], &panel_w[jj * k..(jj + 1) * k], wi);
                    }
                }
            };
            let _ = taus;
            let workers = crate::worker_count(rows, rows * nb * k);
            if workers <= 1 {
                apply_band(l_tail, w_tail);
            } else {
                let band = rows.div_ceil(workers);
                let apply_band = &apply_band;
                std::thread::scope(|scope| {
                    for (lc, wc) in l_tail
                        .chunks_mut(band * lm)
                        .zip(w_tail.chunks_mut(band * k))
                    {
                        scope.spawn(move || apply_band(lc, wc));
                    }
                });
            }
        }
        j0 = j1;
    }
    Ok(())
}

/// One hyperbolic rank-1 downdate `L Lᵀ − v vᵀ`, consuming `v` as
/// workspace. Errors with [`LinalgError::IllConditioned`] when any pivot
/// would shrink below [`DOWNDATE_GUARD`] of its square — `l` may be
/// partially modified on error, so callers stage on a copy.
fn downdate_rank1(l: &mut Matrix, v: &mut [f64]) -> Result<()> {
    let n = l.rows();
    for j in 0..n {
        let ljj = l[(j, j)];
        let vj = v[j];
        let d2 = ljj * ljj - vj * vj;
        if d2 <= DOWNDATE_GUARD * ljj * ljj || !d2.is_finite() {
            return Err(LinalgError::IllConditioned {
                op: "cholesky downdate",
                pivot: j,
            });
        }
        let djj = d2.sqrt();
        let s = vj / ljj;
        let c_inv = ljj / djj; // 1/√(1−s²)
        l[(j, j)] = djj;
        for i in j + 1..n {
            let lij = l[(i, j)];
            l[(i, j)] = (lij - s * v[i]) * c_inv;
            v[i] = (v[i] - s * lij) * c_inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random stream in [-1, 1).
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    /// Random SPD matrix `M Mᵀ + ridge·I` of order `n`.
    fn spd(n: usize, seed: u64, ridge: f64) -> Matrix {
        let mut next = rng(seed);
        let mut m = Matrix::zeros(n, n);
        for v in m.as_mut_slice() {
            *v = next();
        }
        let mut a = crate::syrk_rows(&m);
        for i in 0..n {
            a[(i, i)] += ridge;
        }
        a
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut next = rng(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = next();
        }
        m
    }

    /// Max elementwise difference between two factors, scaled.
    fn factor_diff(a: &Cholesky, b: &Cholesky) -> f64 {
        assert_eq!(a.order(), b.order());
        let mut worst = 0.0_f64;
        for i in 0..a.order() {
            for j in 0..=i {
                let scale = b.l()[(i, j)].abs().max(1.0);
                worst = worst.max((a.l()[(i, j)] - b.l()[(i, j)]).abs() / scale);
            }
        }
        worst
    }

    #[test]
    fn extend_matches_cold_factor() {
        for (n, k) in [(1, 1), (8, 3), (40, 7), (64, 64)] {
            let a = spd(n + k, 11 + n as u64, (n + k) as f64);
            // Leading block, cross block, trailing block.
            let lead = a.select_rows(&(0..n).collect::<Vec<_>>());
            let lead = lead.select_columns(&(0..n).collect::<Vec<_>>());
            let b = a
                .select_rows(&(0..n).collect::<Vec<_>>())
                .select_columns(&(n..n + k).collect::<Vec<_>>());
            let c = a
                .select_rows(&(n..n + k).collect::<Vec<_>>())
                .select_columns(&(n..n + k).collect::<Vec<_>>());
            let mut warm = Cholesky::factor(&lead).unwrap();
            warm.extend(&b, &c).unwrap();
            let cold = Cholesky::factor(&a).unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-10, "n={n} k={k}: {diff:e}");
        }
    }

    #[test]
    fn extend_rejects_indefinite_border_and_keeps_factor() {
        let n = 6;
        let a = spd(n, 3, n as f64);
        let mut ch = Cholesky::factor(&a).unwrap();
        let before = ch.l().clone();
        // A huge cross block makes the Schur complement indefinite.
        let mut b = Matrix::zeros(n, 2);
        for v in b.as_mut_slice() {
            *v = 100.0;
        }
        let c = Matrix::identity(2);
        match ch.extend(&b, &c) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => {
                assert!(pivot >= n, "pivot {pivot} should be absolute");
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
        assert_eq!(
            ch.l().as_slice(),
            before.as_slice(),
            "factor must be untouched"
        );
    }

    #[test]
    fn retire_leading_matches_cold_factor() {
        for (n, r) in [(2, 1), (10, 3), (50, 13), (64, 1)] {
            let a = spd(n, 29 + r as u64, n as f64);
            let mut warm = Cholesky::factor(&a).unwrap();
            warm.retire_leading(r).unwrap();
            let keep: Vec<usize> = (r..n).collect();
            let trailing = a.select_rows(&keep).select_columns(&keep);
            let cold = Cholesky::factor(&trailing).unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-10, "n={n} r={r}: {diff:e}");
        }
    }

    #[test]
    fn retire_all_rows_gives_empty_factor() {
        let a = spd(5, 1, 5.0);
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.retire_leading(5).unwrap();
        assert_eq!(ch.order(), 0);
        assert!(Cholesky::factor(&spd(3, 1, 3.0))
            .unwrap()
            .retire_leading(4)
            .is_err());
    }

    #[test]
    fn update_rank_k_matches_cold_factor() {
        for (n, k) in [(5, 1), (30, 4), (64, 9)] {
            let a = spd(n, 7, n as f64);
            let w = random_matrix(k, n, 17);
            let mut updated = a.clone();
            let wtw = crate::syrk_rows(&w.transpose());
            for i in 0..n {
                for j in 0..n {
                    updated[(i, j)] += wtw[(i, j)];
                }
            }
            let mut warm = Cholesky::factor(&a).unwrap();
            warm.update_rank_k(&w).unwrap();
            let cold = Cholesky::factor_scalar(&updated).unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-10, "n={n} k={k}: {diff:e}");
        }
    }

    #[test]
    fn downdate_reverses_update() {
        for (n, k) in [(4, 1), (24, 5), (48, 3)] {
            let a = spd(n, 41, n as f64);
            let w = random_matrix(k, n, 43);
            let cold = Cholesky::factor_scalar(&a).unwrap();
            let mut warm = cold.clone();
            warm.update_rank_k(&w).unwrap();
            warm.downdate_rank_k(&w).unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-9, "n={n} k={k}: {diff:e}");
        }
    }

    #[test]
    fn downdate_guard_refuses_near_singular_and_keeps_factor() {
        // A = WᵀW + δI with tiny δ: downdating by W leaves ≈ δI, which
        // drives the hyperbolic rotation parameter to 1. The guard must
        // refuse and the stored factor must be bit-for-bit untouched.
        let n = 12;
        let w = random_matrix(3, n, 97);
        let mut a = crate::syrk_rows(&w.transpose());
        for i in 0..n {
            a[(i, i)] += 1e-12;
        }
        let mut ch = Cholesky::factor(&a).unwrap();
        let before = ch.l().clone();
        match ch.downdate_rank_k(&w) {
            Err(LinalgError::IllConditioned { op, .. }) => {
                assert_eq!(op, "cholesky downdate");
            }
            other => panic!("expected IllConditioned, got {other:?}"),
        }
        assert_eq!(ch.l().as_slice(), before.as_slice());
        // And the solve still works off the untouched factor.
        let x = ch.solve(&vec![1.0; n]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn solve_multi_matches_per_column_solve() {
        let n = 20;
        let k = 5;
        let a = spd(n, 5, n as f64);
        let ch = Cholesky::factor(&a).unwrap();
        let b = random_matrix(n, k, 23);
        let x = ch.solve_multi(&b).unwrap();
        for j in 0..k {
            let bj = b.col(j);
            let xj = ch.solve(&bj).unwrap();
            for i in 0..n {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12, "({i},{j})");
            }
        }
        assert!(ch.solve_multi(&Matrix::zeros(n + 1, k)).is_err());
    }

    #[test]
    fn extend_then_retire_roundtrip_slides_the_window() {
        // Factor rows 0..n, slide by r three times, and compare against a
        // cold factor of the final window — the factor lifecycle a
        // sliding-window retrain exercises.
        let total = 60;
        let n = 36;
        let r = 8;
        let a = spd(total, 71, total as f64);
        let idx = |lo: usize, hi: usize| (lo..hi).collect::<Vec<usize>>();
        let window =
            |lo: usize, hi: usize| a.select_rows(&idx(lo, hi)).select_columns(&idx(lo, hi));
        let mut warm = Cholesky::factor(&window(0, n)).unwrap();
        let mut lo = 0;
        let mut hi = n;
        for _ in 0..3 {
            warm.retire_leading(r).unwrap();
            lo += r;
            let b = a.select_rows(&idx(lo, hi)).select_columns(&idx(hi, hi + r));
            let c = window(hi, hi + r);
            warm.extend(&b, &c).unwrap();
            hi += r;
        }
        let cold = Cholesky::factor(&window(lo, hi)).unwrap();
        let diff = factor_diff(&warm, &cold);
        assert!(diff < 1e-9, "{diff:e}");
    }

    #[test]
    fn shift_window_matches_cold_factor() {
        // r == k exercises the fused in-place slide, including sizes on
        // both sides of the fold panel width.
        for (n, r) in [(2, 1), (12, 4), (40, 8), (70, 16), (90, 40)] {
            let total = n + r;
            let a = spd(total, 131 + n as u64, total as f64);
            let idx = |lo: usize, hi: usize| (lo..hi).collect::<Vec<usize>>();
            let mut warm =
                Cholesky::factor(&a.select_rows(&idx(0, n)).select_columns(&idx(0, n))).unwrap();
            let b = a.select_rows(&idx(r, n)).select_columns(&idx(n, total));
            let c = a.select_rows(&idx(n, total)).select_columns(&idx(n, total));
            warm.shift_window(r, &b, &c).unwrap();
            let cold =
                Cholesky::factor(&a.select_rows(&idx(r, total)).select_columns(&idx(r, total)))
                    .unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-9, "n={n} r={r}: {diff:e}");
        }
    }

    #[test]
    fn shift_window_unequal_sizes_delegates() {
        // r != k falls back to retire + extend; the result must still be
        // the cold factor of the shifted window.
        for (n, r, k) in [(20, 3, 7), (30, 9, 2), (16, 0, 5), (16, 5, 0)] {
            let total = n + k;
            let a = spd(total, 177 + (n + r) as u64, total as f64);
            let idx = |lo: usize, hi: usize| (lo..hi).collect::<Vec<usize>>();
            let mut warm =
                Cholesky::factor(&a.select_rows(&idx(0, n)).select_columns(&idx(0, n))).unwrap();
            let b = a.select_rows(&idx(r, n)).select_columns(&idx(n, total));
            let c = a.select_rows(&idx(n, total)).select_columns(&idx(n, total));
            warm.shift_window(r, &b, &c).unwrap();
            let cold =
                Cholesky::factor(&a.select_rows(&idx(r, total)).select_columns(&idx(r, total)))
                    .unwrap();
            let diff = factor_diff(&warm, &cold);
            assert!(diff < 1e-9, "n={n} r={r} k={k}: {diff:e}");
        }
    }

    #[test]
    fn shift_window_rejects_indefinite_border() {
        // The fused path is destructive on error by contract (callers
        // rebuild cold), but the error itself must still be the absolute
        // pivot the extend path would report.
        let n = 10;
        let r = 2;
        let a = spd(n, 53, n as f64);
        let mut ch = Cholesky::factor(&a).unwrap();
        let mut b = Matrix::zeros(n - r, r);
        for v in b.as_mut_slice() {
            *v = 100.0;
        }
        let c = Matrix::identity(r);
        match ch.shift_window(r, &b, &c) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => {
                assert!(pivot >= n - r, "pivot {pivot} should be absolute");
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Warm factor after a random sequence of extends/retires matches
        /// the cold factor of the final window.
        #[test]
        fn prop_window_shifts_match_cold_factor(
            seed in 0u64..500,
            n0 in 6usize..24,
            shifts in proptest::collection::vec((0usize..6, 0usize..6), 1..5),
        ) {
            let total = n0 + shifts.iter().map(|s| s.1).sum::<usize>();
            let a = spd(total.max(n0), seed, total as f64 + 4.0);
            let idx = |lo: usize, hi: usize| (lo..hi).collect::<Vec<usize>>();
            let mut warm = Cholesky::factor(
                &a.select_rows(&idx(0, n0)).select_columns(&idx(0, n0)),
            ).unwrap();
            let (mut lo, mut hi) = (0usize, n0);
            for &(retire, append) in &shifts {
                let retire = retire.min(hi - lo - 1);
                warm.retire_leading(retire).unwrap();
                lo += retire;
                if append > 0 {
                    let b = a.select_rows(&idx(lo, hi)).select_columns(&idx(hi, hi + append));
                    let c = a.select_rows(&idx(hi, hi + append)).select_columns(&idx(hi, hi + append));
                    warm.extend(&b, &c).unwrap();
                    hi += append;
                }
            }
            let cold = Cholesky::factor(
                &a.select_rows(&idx(lo, hi)).select_columns(&idx(lo, hi)),
            ).unwrap();
            let diff = factor_diff(&warm, &cold);
            prop_assert!(diff < 1e-8, "window [{lo},{hi}): {diff:e}");
        }

        /// Repeated equal-size `shift_window` calls (the retrain engine's
        /// steady state) stay equivalent to the cold factor of the final
        /// window.
        #[test]
        fn prop_shift_window_matches_cold_factor(
            seed in 0u64..500,
            n0 in 4usize..28,
            r in 1usize..6,
            steps in 1usize..4,
        ) {
            let r = r.min(n0 - 1);
            let total = n0 + r * steps;
            let a = spd(total, seed, total as f64 + 4.0);
            let idx = |lo: usize, hi: usize| (lo..hi).collect::<Vec<usize>>();
            let mut warm = Cholesky::factor(
                &a.select_rows(&idx(0, n0)).select_columns(&idx(0, n0)),
            ).unwrap();
            let (mut lo, mut hi) = (0usize, n0);
            for _ in 0..steps {
                let b = a.select_rows(&idx(lo + r, hi)).select_columns(&idx(hi, hi + r));
                let c = a.select_rows(&idx(hi, hi + r)).select_columns(&idx(hi, hi + r));
                warm.shift_window(r, &b, &c).unwrap();
                lo += r;
                hi += r;
            }
            let cold = Cholesky::factor(
                &a.select_rows(&idx(lo, hi)).select_columns(&idx(lo, hi)),
            ).unwrap();
            let diff = factor_diff(&warm, &cold);
            prop_assert!(diff < 1e-8, "window [{lo},{hi}): {diff:e}");
        }

        /// Adversarial near-singular downdates: whatever the guard decides,
        /// it must never return garbage — either `Ok` with a factor close
        /// to the cold factor of the downdated matrix, or `IllConditioned`
        /// with the original factor untouched.
        #[test]
        fn prop_downdate_guard_never_returns_garbage(
            seed in 0u64..500,
            n in 3usize..16,
            k in 1usize..4,
            // log10 of the residual ridge left after downdating: spans
            // comfortably-conditioned through hopeless.
            log_delta in -14.0f64..2.0,
        ) {
            let w = random_matrix(k, n, seed.wrapping_add(1));
            let delta = 10f64.powf(log_delta);
            // A = WᵀW + B + δI where B is a mild SPD base scaled by δ:
            // downdating W leaves δ·(B/δ·δ + I)… i.e. conditioning of the
            // result is controlled by how small δ is relative to ‖WᵀW‖.
            let mut a = crate::syrk_rows(&w.transpose());
            let base = spd(n, seed.wrapping_add(2), 1.0);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] += delta * base[(i, j)];
                }
            }
            let mut ch = Cholesky::factor(&a).unwrap();
            let before = ch.l().clone();
            match ch.downdate_rank_k(&w) {
                Ok(()) => {
                    // Result must reconstruct A − WᵀW to a tolerance that
                    // scales with the guard's worst allowed amplification.
                    let mut target = a.clone();
                    let wtw = crate::syrk_rows(&w.transpose());
                    for i in 0..n {
                        for j in 0..n {
                            target[(i, j)] -= wtw[(i, j)];
                        }
                    }
                    let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
                    let scale = (0..n).map(|i| a[(i, i)]).fold(1.0f64, f64::max);
                    for i in 0..n {
                        for j in 0..n {
                            let err = (rec[(i, j)] - target[(i, j)]).abs() / scale;
                            prop_assert!(err < 1e-7, "({i},{j}): {err:e}");
                        }
                    }
                    for i in 0..n {
                        prop_assert!(ch.l()[(i, i)] > 0.0, "diag {i} not positive");
                    }
                }
                Err(LinalgError::IllConditioned { .. }) => {
                    prop_assert_eq!(ch.l().as_slice(), before.as_slice());
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }
}
