//! Householder QR factorization and least-squares solve.
//!
//! OLS (`f2pm-ml::linreg`) prefers QR over the normal equations for
//! numerical stability: the Gram matrix squares the condition number, while
//! QR works on the design matrix directly. M5P/REP-Tree leaf models also use
//! [`lstsq`] for their per-leaf linear fits.

use crate::{dot, LinalgError, Matrix, Result};

/// A Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// Householder vectors are stored compactly in the lower trapezoid of the
/// working matrix; `R` occupies the upper triangle.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    qr: Matrix,
    /// Scalar `tau` coefficients of the Householder reflectors.
    tau: Vec<f64>,
}

/// Relative tolerance under which an `R` diagonal counts as rank-deficient.
const RANK_TOL: f64 = 1e-12;

impl QrFactorization {
    /// Factor `a` (requires `rows >= cols`).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr (needs rows >= cols)",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "qr input" });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        // Workhorse buffer for the reflector (perf-book: reuse collections).
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Build Householder vector from column k, rows k..m.
            let mut norm_sq = 0.0;
            for i in k..m {
                let x = qr[(i, k)];
                norm_sq += x * x;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            v[k] = 1.0;
            for i in k + 1..m {
                v[i] = qr[(i, k)] / v0;
            }
            tau[k] = -v0 / alpha;

            // Apply reflector to remaining columns: A = (I - tau v vᵀ) A.
            for j in k..n {
                let mut s = 0.0;
                for i in k..m {
                    s += v[i] * qr[(i, j)];
                }
                s *= tau[k];
                for i in k..m {
                    qr[(i, j)] -= s * v[i];
                }
            }
            // Store the reflector below the diagonal, R value on it.
            qr[(k, k)] = alpha;
            for i in k + 1..m {
                qr[(i, k)] = v[i];
            }
        }
        Ok(QrFactorization { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            // v = [1, qr[k+1..m, k]]
            let mut s = b[k];
            for i in k + 1..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in k + 1..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least-squares problem `min ||A x - b||₂`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back-substitute R x = y[0..n].
        let scale = self
            .qr
            .as_slice()
            .iter()
            .fold(0.0_f64, |acc, &x| acc.max(x.abs()))
            .max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() <= RANK_TOL * scale {
                return Err(LinalgError::RankDeficient { column: i });
            }
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Extract the `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Whether the factored matrix has full column rank (by diagonal test).
    pub fn is_full_rank(&self) -> bool {
        let scale = self
            .qr
            .as_slice()
            .iter()
            .fold(0.0_f64, |acc, &x| acc.max(x.abs()))
            .max(1.0);
        (0..self.cols()).all(|i| self.qr[(i, i)].abs() > RANK_TOL * scale)
    }
}

/// One-shot least-squares solve `min ||A x - b||₂` via Householder QR.
///
/// Falls back to a tiny ridge-regularized normal-equation solve when `A` is
/// rank deficient — common after lasso selection keeps duplicated features
/// such as `swap_used_slope`/`swap_free_slope`, which are exact negations —
/// or *underdetermined* (fewer samples than columns, e.g. a model fitted on
/// a very short monitoring campaign). Either way the caller gets a usable
/// minimum-norm-ish solution.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() >= a.cols() {
        match QrFactorization::factor(a)?.solve(b) {
            Ok(x) => return Ok(x),
            Err(LinalgError::RankDeficient { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    let gram = a.gram();
    let scale = (0..gram.rows())
        .map(|i| gram[(i, i)])
        .fold(0.0_f64, f64::max);
    let ridge = (scale.max(1.0)) * 1e-8;
    let ch = crate::Cholesky::factor_ridged(&gram, ridge)?;
    let aty = a.matvec_t(b)?;
    ch.solve(&aty)
}

/// Residual 2-norm `||A x - b||₂` — handy for tests and diagnostics.
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x).expect("residual_norm: dimension mismatch");
    let mut s = 0.0;
    for i in 0..b.len() {
        let d = ax[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}

#[allow(dead_code)]
fn column_dot(a: &Matrix, j: usize, k: usize) -> f64 {
    dot(&a.col(j), &a.col(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![1.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_regression() {
        // y = 3 + 2t sampled with no noise at 5 points.
        let t: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let rows: Vec<Vec<f64>> = t.iter().map(|&ti| vec![1.0, ti]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let b: Vec<f64> = t.iter().map(|&ti| 3.0 + 2.0 * ti).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular_and_reproduces_norms() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let f = QrFactorization::factor(&a).unwrap();
        let r = f.r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r[(1, 0)], 0.0);
        // ||A||_F == ||R||_F since Q is orthogonal.
        assert!((a.frobenius_norm() - r.frobenius_norm()).abs() < 1e-10);
    }

    #[test]
    fn underdetermined_rejected_by_qr_but_lstsq_falls_back() {
        let a = Matrix::zeros(2, 3);
        assert!(QrFactorization::factor(&a).is_err());
        // lstsq routes rows < cols through the ridge path: an interpolating
        // solution with small residual exists here.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
        let b = [3.0, 5.0];
        let x = lstsq(&a, &b).unwrap();
        assert!(
            residual_norm(&a, &x, &b) < 1e-3,
            "residual {}",
            residual_norm(&a, &x, &b)
        );
    }

    #[test]
    fn rank_deficient_detected_but_lstsq_falls_back() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let f = QrFactorization::factor(&a).unwrap();
        assert!(!f.is_full_rank());
        assert!(matches!(
            f.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::RankDeficient { .. })
        ));
        // lstsq still produces a small-residual solution via ridge fallback.
        let b = vec![1.0, 2.0, 3.0]; // b = a * [1, 0]
        let x = lstsq(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-3);
    }

    #[test]
    fn zero_column_does_not_crash_factor() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        let f = QrFactorization::factor(&a).unwrap();
        assert!(!f.is_full_rank());
    }

    #[test]
    fn solve_dimension_check() {
        let a = Matrix::identity(3);
        let f = QrFactorization::factor(&a).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_nan_input() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            QrFactorization::factor(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    proptest! {
        #[test]
        fn qr_solve_minimizes_residual(
            vals in proptest::collection::vec(-5.0_f64..5.0, 12),
            xt in proptest::collection::vec(-3.0_f64..3.0, 3),
            noise in proptest::collection::vec(-0.1_f64..0.1, 4),
        ) {
            // Build a well-conditioned 4x3 design (add identity block).
            let mut a = Matrix::from_vec(4, 3, vals);
            for i in 0..3 { a[(i, i)] += 10.0; }
            let clean = a.matvec(&xt).unwrap();
            let b: Vec<f64> = clean.iter().zip(&noise).map(|(c, n)| c + n).collect();
            let x = lstsq(&a, &b).unwrap();
            let r_opt = residual_norm(&a, &x, &b);
            // Any perturbation of the solution must not reduce the residual.
            for j in 0..3 {
                for delta in [-1e-3, 1e-3] {
                    let mut xp = x.clone();
                    xp[j] += delta;
                    prop_assert!(residual_norm(&a, &xp, &b) + 1e-12 >= r_opt);
                }
            }
        }
    }
}
