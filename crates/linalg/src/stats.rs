//! Column statistics and standardization.
//!
//! The lasso path (feature selection, F2PM §III-C) and the kernel methods
//! are scale-sensitive, so the pipeline standardizes features to zero mean
//! and unit variance before fitting, then maps coefficients back to the
//! original units for reporting (Table I of the paper reports raw-unit
//! weights).

use crate::Matrix;

/// Per-column mean and standard deviation of a data matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column standard deviations (population, i.e. divide by n).
    pub std: Vec<f64>,
}

impl ColumnStats {
    /// Compute means and population standard deviations of each column.
    ///
    /// Returns all-zero stats for an empty matrix.
    pub fn compute(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut mean = vec![0.0; cols];
        let mut std = vec![0.0; cols];
        if rows == 0 {
            return ColumnStats { mean, std };
        }
        for i in 0..rows {
            let r = m.row(i);
            for j in 0..cols {
                mean[j] += r[j];
            }
        }
        let n = rows as f64;
        for mj in &mut mean {
            *mj /= n;
        }
        for i in 0..rows {
            let r = m.row(i);
            for j in 0..cols {
                let d = r[j] - mean[j];
                std[j] += d * d;
            }
        }
        for sj in &mut std {
            *sj = (*sj / n).sqrt();
        }
        ColumnStats { mean, std }
    }
}

/// A fitted standardizer: `z = (x - mean) / std`, with constant columns
/// mapped to zero instead of NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    stats: ColumnStats,
}

impl Standardizer {
    /// Fit to the columns of a training matrix.
    pub fn fit(m: &Matrix) -> Self {
        Standardizer {
            stats: ColumnStats::compute(m),
        }
    }

    /// Rebuild from previously computed statistics (model persistence).
    ///
    /// # Panics
    /// Panics if mean/std lengths differ.
    pub fn from_stats(stats: ColumnStats) -> Self {
        assert_eq!(
            stats.mean.len(),
            stats.std.len(),
            "ColumnStats mean/std length mismatch"
        );
        Standardizer { stats }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Number of columns this standardizer was fitted on.
    pub fn width(&self) -> usize {
        self.stats.mean.len()
    }

    /// Standardize a matrix (must have the fitted width).
    ///
    /// # Panics
    /// Panics if `m.cols() != self.width()`.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.width(), "Standardizer width mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            self.transform_row(row);
        }
        out
    }

    /// Standardize a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.width(), "Standardizer width mismatch");
        for (x, (m, s)) in row
            .iter_mut()
            .zip(self.stats.mean.iter().zip(&self.stats.std))
        {
            *x = if *s > 0.0 { (*x - m) / s } else { 0.0 };
        }
    }

    /// Map a coefficient vector fitted in standardized space back to raw
    /// units, returning `(intercept_adjustment, raw_coefficients)` such that
    /// `y ≈ intercept_adjustment + Σ raw_j * x_j` reproduces
    /// `y ≈ Σ std_beta_j * z_j`.
    pub fn unstandardize_coefficients(&self, std_beta: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(std_beta.len(), self.width());
        let mut raw = vec![0.0; std_beta.len()];
        let mut intercept = 0.0;
        for j in 0..std_beta.len() {
            let s = self.stats.std[j];
            if s > 0.0 {
                raw[j] = std_beta[j] / s;
                intercept -= std_beta[j] * self.stats.mean[j] / s;
            }
        }
        (intercept, raw)
    }
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice (0.0 for empty input).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_of_known_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        let s = ColumnStats::compute(&m);
        assert_eq!(s.mean, vec![2.0, 10.0]);
        assert_eq!(s.std, vec![1.0, 0.0]);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let s = ColumnStats::compute(&Matrix::zeros(0, 3));
        assert_eq!(s.mean, vec![0.0; 3]);
        assert_eq!(s.std, vec![0.0; 3]);
    }

    #[test]
    fn transform_centers_and_scales() {
        let m = Matrix::from_rows(&[&[1.0], &[3.0]]);
        let st = Standardizer::fit(&m);
        let z = st.transform(&m);
        assert_eq!(z.col(0), vec![-1.0, 1.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let m = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0]]);
        let st = Standardizer::fit(&m);
        let z = st.transform(&m);
        assert_eq!(z.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn unstandardize_roundtrip() {
        // Model in z-space: y = 2 z0 - 1 z1. Check raw-space equivalence.
        let m = Matrix::from_rows(&[&[1.0, 100.0], &[3.0, 200.0], &[5.0, 300.0]]);
        let st = Standardizer::fit(&m);
        let std_beta = [2.0, -1.0];
        let (b0, raw) = st.unstandardize_coefficients(&std_beta);
        let z = st.transform(&m);
        for i in 0..3 {
            let y_std = std_beta[0] * z[(i, 0)] + std_beta[1] * z[(i, 1)];
            let y_raw = b0 + raw[0] * m[(i, 0)] + raw[1] * m[(i, 1)];
            assert!((y_std - y_raw).abs() < 1e-10);
        }
    }

    #[test]
    fn mean_variance_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let st = Standardizer::fit(&Matrix::zeros(2, 2));
        st.transform(&Matrix::zeros(2, 3));
    }

    proptest! {
        #[test]
        fn standardized_columns_have_zero_mean_unit_var(
            vals in proptest::collection::vec(-100.0_f64..100.0, 30)
        ) {
            let m = Matrix::from_vec(10, 3, vals);
            let st = Standardizer::fit(&m);
            let z = st.transform(&m);
            for j in 0..3 {
                let col = z.col(j);
                let mu = mean(&col);
                let var = variance(&col);
                prop_assert!(mu.abs() < 1e-9);
                // Either the column was constant (var 0) or it is now unit.
                prop_assert!(var < 1e-9 || (var - 1.0).abs() < 1e-6);
            }
        }

        #[test]
        fn transform_row_matches_matrix_transform(
            vals in proptest::collection::vec(-50.0_f64..50.0, 20)
        ) {
            let m = Matrix::from_vec(5, 4, vals);
            let st = Standardizer::fit(&m);
            let z = st.transform(&m);
            for i in 0..5 {
                let mut row = m.row(i).to_vec();
                st.transform_row(&mut row);
                prop_assert_eq!(row.as_slice(), z.row(i));
            }
        }
    }
}
