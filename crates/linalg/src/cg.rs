//! Conjugate-gradient solver for symmetric positive-definite systems.
//!
//! The LS-SVM solve on large kernel matrices is `O(n³)` with a direct
//! factorization; CG gives an `O(k n²)` alternative that `f2pm-ml::lssvm`
//! uses when the kernel matrix is big. It is also exercised as an
//! independent cross-check of the Cholesky path in tests.

use crate::{axpy, dot, LinalgError, Matrix, Result};

/// Options controlling the CG iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum iterations. Defaults to `10 * n`.
    pub max_iter: Option<usize>,
    /// Relative residual tolerance: stop when `||r|| <= tol * ||b||`.
    pub tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iter: None,
            tol: 1e-10,
        }
    }
}

/// Convergence report for a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

/// Solve `A x = b` for SPD `A` with (unpreconditioned) conjugate gradients.
pub fn conjugate_gradient(a: &Matrix, b: &[f64], opts: CgOptions) -> Result<CgOutcome> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg (square matrix required)",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if !a.is_finite() || b.iter().any(|x| !x.is_finite()) {
        return Err(LinalgError::NonFinite { what: "cg input" });
    }

    let max_iter = opts.max_iter.unwrap_or(10 * n.max(1));
    let b_norm = crate::norm2(b);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let threshold = opts.tol * b_norm;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A*0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    for iter in 0..max_iter {
        if rs_old.sqrt() <= threshold {
            return Ok(CgOutcome {
                x,
                iterations: iter,
                residual: rs_old.sqrt(),
            });
        }
        let ap = a.matvec(&p)?;
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 {
            // Not SPD along this direction.
            return Err(LinalgError::NotPositiveDefinite { pivot: iter });
        }
        let alpha = rs_old / p_ap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    if rs_old.sqrt() <= threshold {
        Ok(CgOutcome {
            x,
            iterations: max_iter,
            residual: rs_old.sqrt(),
        })
    } else {
        Err(LinalgError::DidNotConverge {
            iterations: max_iter,
            residual: rs_old.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cholesky;
    use proptest::prelude::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random SPD matrix: A = M Mᵀ + n·I.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
        }
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let out = conjugate_gradient(&a, &b, CgOptions::default()).unwrap();
        for (x, e) in out.x.iter().zip(&b) {
            assert!((x - e).abs() < 1e-10);
        }
        assert!(out.iterations <= 2);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd(4, 7);
        let out = conjugate_gradient(&a, &[0.0; 4], CgOptions::default()).unwrap();
        assert_eq!(out.x, vec![0.0; 4]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn agrees_with_cholesky() {
        let a = spd(12, 42);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64) - 6.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let cg = conjugate_gradient(&a, &b, CgOptions::default()).unwrap();
        let ch = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (c, h) in cg.x.iter().zip(&ch) {
            assert!((c - h).abs() < 1e-6, "cg {c} vs chol {h}");
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let err = conjugate_gradient(&a, &[1.0, 1.0], CgOptions::default());
        assert!(matches!(err, Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn iteration_budget_enforced() {
        let a = spd(20, 3);
        let b = vec![1.0; 20];
        let out = conjugate_gradient(
            &a,
            &b,
            CgOptions {
                max_iter: Some(1),
                tol: 1e-14,
            },
        );
        assert!(matches!(out, Err(LinalgError::DidNotConverge { .. })));
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::zeros(2, 3);
        assert!(conjugate_gradient(&a, &[1.0, 1.0], CgOptions::default()).is_err());
        let a = Matrix::identity(3);
        assert!(conjugate_gradient(&a, &[1.0], CgOptions::default()).is_err());
    }

    #[test]
    fn nan_rejected() {
        let a = Matrix::identity(2);
        assert!(matches!(
            conjugate_gradient(&a, &[f64::NAN, 1.0], CgOptions::default()),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    proptest! {
        #[test]
        fn converges_within_n_iterations_exact_arith(seed in 0u64..1000) {
            // CG converges in at most n steps in exact arithmetic; allow slack.
            let n = 8;
            let a = spd(n, seed);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let out = conjugate_gradient(&a, &b, CgOptions::default()).unwrap();
            prop_assert!(out.iterations <= 10 * n);
            let ax = a.matvec(&out.x).unwrap();
            let res: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
            prop_assert!(res <= 1e-6 * (1.0 + crate::norm2(&b)));
        }
    }
}
