//! The end-to-end F2PM workflow (the paper's Fig. 1).

use crate::config::F2pmConfig;
use crate::error::F2pmError;
use crate::report::{F2pmReport, StageTiming, VariantReport};
use f2pm_features::{aggregate_run, lasso_path, robust_outlier_filter, Dataset, RunTaggedDataset};
use f2pm_ml::{evaluate_grid, GridVariant};
use f2pm_monitor::DataHistory;
use f2pm_sim::Campaign;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum labeled aggregated datapoints (exclusive) the workflow needs to
/// split into train/validation sets.
const MIN_DATAPOINTS: usize = 10;

/// Run the complete workflow against the simulated testbed: monitoring
/// campaign → aggregation → selection → model generation/validation.
pub fn run_workflow(cfg: &F2pmConfig, seed: u64) -> Result<F2pmReport, F2pmError> {
    let campaign = Campaign::new(cfg.campaign.clone(), seed);
    let runs = campaign.run_all();
    let history = DataHistory::from_campaign(&runs);
    run_workflow_on_history(cfg, &history)
}

/// Run the workflow phases downstream of monitoring on an existing data
/// history (e.g. one received by the FMS from real FMC clients).
///
/// Returns [`F2pmError::NotEnoughData`] when the history aggregates to too
/// few labeled datapoints — serve/CLI layers surface this instead of
/// aborting.
pub fn run_workflow_on_history(
    cfg: &F2pmConfig,
    history: &DataHistory,
) -> Result<F2pmReport, F2pmError> {
    // Every stage is timed through the f2pm-obs span API: the duration
    // lands in the process-global `f2pm_stage_duration_us{stage=...}`
    // histogram (scrapeable via `f2pm stats`) *and* in the report's
    // `stage_timings`.
    let mut stage_timings = Vec::new();

    // Phase 2: aggregation + added metrics + RTTF labels, per run so the
    // optional run-aware split knows the provenance of every window. Runs
    // aggregate independently → order-preserving parallel map.
    let span = f2pm_obs::span!("aggregate");
    let failed: Vec<_> = history
        .runs()
        .into_iter()
        .filter(|r| r.fail_time.is_some())
        .collect();
    let per_run = parallel_map(&failed, |r| aggregate_run(r, &cfg.aggregation));
    let tagged = RunTaggedDataset::from_run_points_with(&per_run, &cfg.aggregation);
    let mut dataset = tagged.dataset.clone();
    let mut run_of_row = tagged.run_of_row.clone();

    // Optional data selection: drop outlier windows (monitoring glitches).
    if let Some(threshold) = cfg.outlier_threshold {
        let kept = robust_outlier_filter(&dataset.x, threshold);
        dataset = dataset.select_rows(&kept);
        run_of_row = kept.iter().map(|&i| run_of_row[i]).collect();
    }
    stage_timings.push(StageTiming {
        stage: "aggregate".into(),
        seconds: span.stop(),
    });
    let points = dataset.len();
    if points <= MIN_DATAPOINTS {
        return Err(F2pmError::NotEnoughData {
            points,
            needed: MIN_DATAPOINTS,
        });
    }

    let (train, valid) = if cfg.split_by_runs {
        split_by_runs(&dataset, &run_of_row, tagged.runs, cfg.train_fraction)
    } else {
        dataset.split_holdout(cfg.train_fraction, cfg.split_seed)
    };

    // Phase 3 (optional): lasso regularization path for feature selection.
    let selection = if cfg.lambda_grid.is_empty() {
        None
    } else {
        let span = f2pm_obs::span!("lasso_path");
        let sel = lasso_path(&train, &cfg.lambda_grid, &cfg.lasso_solver);
        stage_timings.push(StageTiming {
            stage: "lasso_path".into(),
            seconds: span.stop(),
        });
        Some(sel)
    };

    // Phase 4: model generation + validation. All training-set variants are
    // assembled first, then the whole (variant × method) grid fans out over
    // one bounded-worker scope — variant- and method-level parallelism in a
    // single pass instead of one sequential evaluate_all per variant.
    // The suite honors the config's optional method filter (validated by
    // the builder against `KNOWN_METHODS`).
    let span = f2pm_obs::span!("model_grid");
    let suite: Vec<_> = f2pm_ml::paper_method_suite(&cfg.lasso_predictor_lambdas)
        .into_iter()
        .filter(|r| cfg.method_enabled(&r.name()))
        .collect();
    if suite.is_empty() {
        return Err(F2pmError::InvalidConfig {
            what: "method filter removed every suite entry".into(),
        });
    }

    struct Pending {
        label: String,
        columns: Vec<String>,
        train: Dataset,
        valid: Dataset,
    }
    let mut pending = Vec::new();
    if let Some(sel) = &selection {
        if let Some(point) = sel.strongest_selection(cfg.min_selected_features) {
            let idx = point
                .selected_names
                .iter()
                .map(|n| {
                    dataset.column_index(n).ok_or_else(|| {
                        // A selection naming a column the dataset lost is an
                        // internal inconsistency; surface it instead of
                        // panicking inside the serve retraining loop.
                        F2pmError::InvalidConfig {
                            what: format!("lasso selected unknown column {n:?}"),
                        }
                    })
                })
                .collect::<Result<Vec<usize>, F2pmError>>()?;
            pending.push(Pending {
                label: format!(
                    "parameters selected by lasso (λ = {:.0e}, {} columns)",
                    point.lambda,
                    idx.len()
                ),
                columns: point.selected_names.clone(),
                train: train.select_columns(&idx),
                valid: valid.select_columns(&idx),
            });
        }
    }
    pending.insert(
        0,
        Pending {
            label: "all parameters".to_string(),
            columns: dataset.names.clone(),
            train,
            valid,
        },
    );

    let cells: Vec<GridVariant<'_>> = pending
        .iter()
        .map(|p| GridVariant {
            train: &p.train,
            valid: &p.valid,
        })
        .collect();
    let grid = evaluate_grid(&suite, &cells, cfg.smae);
    let variants = pending
        .into_iter()
        .zip(grid)
        .map(|(p, reports)| VariantReport {
            variant: p.label,
            columns: p.columns,
            reports,
        })
        .collect();
    stage_timings.push(StageTiming {
        stage: "model_grid".into(),
        seconds: span.stop(),
    });

    Ok(F2pmReport {
        aggregated_points: points,
        runs: history.fail_count(),
        selection,
        variants,
        stage_timings,
    })
}

/// Order-preserving parallel map over independent items with a bounded
/// worker band (used for per-run aggregation — each run aggregates on its
/// own).
fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = f2pm_linalg::pool_threads().min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(&items[i])));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, u) in h.join().expect("aggregation worker panicked") {
                out[i] = Some(u);
            }
        }
    })
    .expect("crossbeam scope");
    out.into_iter().map(|o| o.expect("filled")).collect()
}

/// Deterministic run-aware split: the last ⌈(1 − frac)·runs⌉ runs (by run
/// index) validate, earlier runs train — mimicking deployment, where the
/// model faces runs collected after its training data.
fn split_by_runs(
    dataset: &Dataset,
    run_of_row: &[usize],
    runs: usize,
    train_fraction: f64,
) -> (Dataset, Dataset) {
    let train_runs =
        ((runs as f64 * train_fraction).round() as usize).clamp(1, runs.saturating_sub(1).max(1));
    let mut train_rows = Vec::new();
    let mut valid_rows = Vec::new();
    for (row, &run) in run_of_row.iter().enumerate() {
        if run < train_runs {
            train_rows.push(row);
        } else {
            valid_rows.push(row);
        }
    }
    (
        dataset.select_rows(&train_rows),
        dataset.select_rows(&valid_rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workflow_end_to_end() {
        let cfg = F2pmConfig::quick();
        let report = run_workflow(&cfg, 7).unwrap();

        assert_eq!(report.runs, 4);
        assert!(report.aggregated_points > 50);
        assert!(report.selection.is_some());

        // Fig. 4 shape: monotone non-increasing λ → #selected.
        let series = report.selection.as_ref().unwrap().fig4_series();
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1, "lasso path not monotone: {series:?}");
        }

        // All-parameters variant ran the full suite (5 + 2 lasso rows).
        let all = report.all_parameters();
        assert_eq!(all.reports.len(), 7);
        let ok = all.ok_reports().count();
        assert!(ok >= 6, "only {ok}/7 methods succeeded");

        // The best model predicts substantially better than the naive mean
        // predictor (RAE < 1).
        let best = report.best_by_smae().expect("models exist");
        assert!(
            best.metrics.rae < 0.8,
            "best model RAE {} too close to the mean predictor",
            best.metrics.rae
        );
    }

    #[test]
    fn stage_timings_are_stamped_in_pipeline_order() {
        let cfg = F2pmConfig::quick();
        let report = run_workflow(&cfg, 7).unwrap();
        let stages: Vec<&str> = report
            .stage_timings
            .iter()
            .map(|t| t.stage.as_str())
            .collect();
        assert_eq!(stages, ["aggregate", "lasso_path", "model_grid"]);
        for t in &report.stage_timings {
            assert!(
                t.seconds.is_finite() && t.seconds >= 0.0,
                "{}: {}",
                t.stage,
                t.seconds
            );
        }
        // The same durations landed in the process-global span histogram.
        let snap = f2pm_obs::global()
            .histogram_snapshot_with(f2pm_obs::STAGE_DURATION_METRIC, "stage", "model_grid")
            .expect("span recorded");
        assert!(snap.count >= 1);
    }

    #[test]
    fn method_filter_restricts_the_suite() {
        let cfg = F2pmConfig::quick_builder()
            .methods(["m5p", "linear_regression"])
            .build()
            .unwrap();
        let report = run_workflow(&cfg, 7).unwrap();
        let all = report.all_parameters();
        assert_eq!(all.reports.len(), 2);
        assert!(all.by_name("m5p").is_some());
        assert!(all.by_name("linear_regression").is_some());
        assert!(all.by_name("svm").is_none());
    }

    #[test]
    fn lasso_filter_keeps_every_lambda_row() {
        let cfg = F2pmConfig::quick_builder()
            .methods(["lasso"])
            .build()
            .unwrap();
        let report = run_workflow(&cfg, 7).unwrap();
        let all = report.all_parameters();
        // quick() evaluates two predictor λ values.
        assert_eq!(all.reports.len(), 2);
        for r in all.ok_reports() {
            assert!(r.name.starts_with("lasso_lambda_"), "{}", r.name);
        }
    }

    #[test]
    fn selection_disabled_when_grid_empty() {
        let mut cfg = F2pmConfig::quick();
        cfg.lambda_grid.clear();
        let report = run_workflow(&cfg, 9).unwrap();
        assert!(report.selection.is_none());
        assert_eq!(report.variants.len(), 1);
    }

    #[test]
    fn empty_history_returns_not_enough_data_error() {
        let cfg = F2pmConfig::quick();
        let err = match run_workflow_on_history(&cfg, &DataHistory::new()) {
            Err(e) => e,
            Ok(_) => panic!("empty history must not produce a report"),
        };
        assert!(matches!(
            err,
            crate::error::F2pmError::NotEnoughData { points: 0, .. }
        ));
        assert!(err.to_string().contains("not enough labeled"));
    }

    #[test]
    fn extended_stddev_layout_flows_through_the_workflow() {
        let mut cfg = F2pmConfig::quick();
        cfg.aggregation.include_stddev = true;
        let report = run_workflow(&cfg, 23).unwrap();
        let all = report.all_parameters();
        assert_eq!(all.columns.len(), 44, "extended layout expected");
        assert!(all.columns.contains(&"swap_used_std".to_string()));
        let best = report.best_by_smae().expect("models");
        assert!(best.metrics.rae < 1.0);
    }

    #[test]
    fn run_aware_split_also_works_end_to_end() {
        let mut cfg = F2pmConfig::quick();
        cfg.split_by_runs = true;
        let report = run_workflow(&cfg, 13).unwrap();
        let best = report.best_by_smae().expect("models");
        // Cross-run generalization is harder than the row split, but the
        // model must still clearly beat the mean predictor.
        assert!(best.metrics.rae < 1.0, "RAE {}", best.metrics.rae);
    }

    #[test]
    fn outlier_filter_threshold_semantics() {
        // Run trajectories are explosive near the crash, so moderate
        // thresholds trim the tail; only an enormous one keeps everything
        // (that is why the config docs say "use large values").
        let cfg_plain = F2pmConfig::quick();
        let report_plain = run_workflow(&cfg_plain, 17).unwrap();
        let mut cfg_filtered = F2pmConfig::quick();
        cfg_filtered.outlier_threshold = Some(1e9);
        let report_filtered = run_workflow(&cfg_filtered, 17).unwrap();
        assert_eq!(
            report_filtered.aggregated_points,
            report_plain.aggregated_points
        );

        // Aggressive thresholds drop rows — checked against the filter
        // directly (the full workflow would rightly refuse to train on the
        // remnant).
        let runs = f2pm_sim::Campaign::new(cfg_plain.campaign.clone(), 17).run_all();
        let history = DataHistory::from_campaign(&runs);
        let per_run: Vec<_> = history
            .runs()
            .iter()
            .filter(|r| r.fail_time.is_some())
            .map(|r| aggregate_run(r, &cfg_plain.aggregation))
            .collect();
        let tagged = RunTaggedDataset::from_run_points(&per_run);
        let kept = robust_outlier_filter(&tagged.dataset.x, 3.0);
        assert!(
            kept.len() < tagged.dataset.len(),
            "threshold 3 should trim the explosive tail"
        );
    }
}
