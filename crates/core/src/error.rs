//! Workflow-level errors.
//!
//! The orchestration layer used to `assert!` on unusable inputs, which
//! aborts the whole process — unacceptable once the workflow runs inside
//! the serve layer's retraining loop or a long-lived CLI session. These
//! variants let callers surface the condition and keep going.

/// Errors surfaced by the F2PM workflow orchestration layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum F2pmError {
    /// Too few labeled aggregated datapoints survived aggregation and
    /// outlier filtering to split into train/validation sets.
    NotEnoughData {
        /// Labeled aggregated datapoints available.
        points: usize,
        /// Minimum the workflow requires (exclusive).
        needed: usize,
    },
}

impl std::fmt::Display for F2pmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            F2pmError::NotEnoughData { points, needed } => write!(
                f,
                "not enough labeled aggregated datapoints ({points}, need more than {needed}); \
                 run more campaigns"
            ),
        }
    }
}

impl std::error::Error for F2pmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = F2pmError::NotEnoughData {
            points: 3,
            needed: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("not enough labeled"));
        assert!(msg.contains('3'));
        assert!(msg.contains("run more campaigns"));
    }
}
