//! The unified workflow error.
//!
//! The orchestration layer used to `assert!` on unusable inputs, which
//! aborts the whole process — unacceptable once the workflow runs inside
//! the serve layer's retraining loop or a long-lived CLI session. Three
//! fast-moving PRs then left three error types (`LinalgError`, `MlError`,
//! raw `io::Error`) leaking through public `Result`s. [`F2pmError`] absorbs
//! all of them via `From` impls, so every cross-crate boundary surfaces one
//! type with a stable machine-readable [`F2pmError::kind`].

use f2pm_linalg::LinalgError;
use f2pm_ml::MlError;

/// Errors surfaced by the F2PM workflow orchestration layer and the
/// crates it coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum F2pmError {
    /// Too few labeled aggregated datapoints survived aggregation and
    /// outlier filtering to split into train/validation sets.
    NotEnoughData {
        /// Labeled aggregated datapoints available.
        points: usize,
        /// Minimum the workflow requires (exclusive).
        needed: usize,
    },
    /// A model-layer failure (empty training set, width mismatch, ...).
    Ml(MlError),
    /// A numeric kernel failure (singular system, non-convergence, ...).
    /// `MlError::Linalg` flattens to this variant so the kind is stable
    /// regardless of which layer noticed first.
    Linalg(LinalgError),
    /// An I/O failure from the serve/monitor transport or model files.
    /// Stores the kind plus rendered message (`std::io::Error` is neither
    /// `Clone` nor `PartialEq`).
    Io {
        /// The original [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// Rendered message of the original error.
        message: String,
    },
    /// A configuration rejected by validation (builder or method filter).
    InvalidConfig {
        /// What was wrong, human-readable.
        what: String,
    },
}

impl F2pmError {
    /// Stable machine-readable error category — the contract CLI exit
    /// paths, logs, and serve-side retraining loops match on (variant
    /// details may grow; these strings do not change).
    pub fn kind(&self) -> &'static str {
        match self {
            F2pmError::NotEnoughData { .. } => "not_enough_data",
            F2pmError::Ml(_) => "ml",
            F2pmError::Linalg(_) => "linalg",
            F2pmError::Io { .. } => "io",
            F2pmError::InvalidConfig { .. } => "invalid_config",
        }
    }
}

impl From<MlError> for F2pmError {
    fn from(e: MlError) -> Self {
        match e {
            // Flatten so a Cholesky failure has kind "linalg" whether it
            // bubbled straight from the kernel or through the ml layer.
            MlError::Linalg(inner) => F2pmError::Linalg(inner),
            other => F2pmError::Ml(other),
        }
    }
}

impl From<LinalgError> for F2pmError {
    fn from(e: LinalgError) -> Self {
        F2pmError::Linalg(e)
    }
}

impl From<std::io::Error> for F2pmError {
    fn from(e: std::io::Error) -> Self {
        F2pmError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for F2pmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            F2pmError::NotEnoughData { points, needed } => write!(
                f,
                "not enough labeled aggregated datapoints ({points}, need more than {needed}); \
                 run more campaigns"
            ),
            F2pmError::Ml(e) => write!(f, "model layer: {e}"),
            F2pmError::Linalg(e) => write!(f, "numeric kernel: {e}"),
            F2pmError::Io { kind, message } => write!(f, "io ({kind:?}): {message}"),
            F2pmError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for F2pmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            F2pmError::Ml(e) => Some(e),
            F2pmError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = F2pmError::NotEnoughData {
            points: 3,
            needed: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("not enough labeled"));
        assert!(msg.contains('3'));
        assert!(msg.contains("run more campaigns"));
    }

    #[test]
    fn kinds_are_stable() {
        let cases: Vec<(F2pmError, &str)> = vec![
            (
                F2pmError::NotEnoughData {
                    points: 0,
                    needed: 10,
                },
                "not_enough_data",
            ),
            (F2pmError::Ml(MlError::EmptyTrainingSet), "ml"),
            (
                F2pmError::Linalg(LinalgError::NotPositiveDefinite { pivot: 0 }),
                "linalg",
            ),
            (
                F2pmError::Io {
                    kind: std::io::ErrorKind::NotFound,
                    message: "gone".into(),
                },
                "io",
            ),
            (
                F2pmError::InvalidConfig {
                    what: "train_fraction".into(),
                },
                "invalid_config",
            ),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn ml_linalg_errors_flatten_to_linalg_kind() {
        let nested: F2pmError =
            MlError::Linalg(LinalgError::NotPositiveDefinite { pivot: 0 }).into();
        assert_eq!(nested.kind(), "linalg");
        let direct: F2pmError = LinalgError::NotPositiveDefinite { pivot: 0 }.into();
        assert_eq!(nested, direct);
        let plain: F2pmError = MlError::EmptyTrainingSet.into();
        assert_eq!(plain.kind(), "ml");
    }

    #[test]
    fn io_errors_keep_their_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope");
        let e: F2pmError = io.into();
        assert_eq!(e.kind(), "io");
        match &e {
            F2pmError::Io { kind, message } => {
                assert_eq!(*kind, std::io::ErrorKind::ConnectionRefused);
                assert!(message.contains("nope"));
            }
            other => panic!("wrong variant {other:?}"),
        }
        assert!(e.to_string().contains("ConnectionRefused"));
    }

    #[test]
    fn source_chain_reaches_the_inner_error() {
        use std::error::Error;
        let e: F2pmError = MlError::EmptyTrainingSet.into();
        assert!(e.source().is_some());
    }
}
