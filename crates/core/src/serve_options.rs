//! The validated fleet-facing serve configuration.
//!
//! `f2pm serve` grew one flag at a time — `--model`, `--history`,
//! `--models-dir`, `--watch`, `--window`, `--shards`, `--reactors`,
//! `--threshold`, `--hits`, ... — with the mutual-exclusion rules encoded
//! as ad-hoc `if` chains inside the CLI. Fleet tooling (the multi-instance
//! loadgen, `f2pm fleet` spawn helpers) needs the *same* configuration
//! surface without re-implementing those rules, so they live here instead:
//! [`ServeOptions`] is the one validated description of a serve instance,
//! [`ModelSource`] makes the three-way model choice a type instead of
//! three optional flags, and every invalid combination is a single typed
//! [`F2pmError::InvalidConfig`].
//!
//! The CLI parses flags into [`ServeOptionsBuilder`]; `f2pm-serve` maps
//! the validated result onto its `ServeConfig` (`ServeConfig::from_options`)
//! and resolves the [`ModelSource`] into a model registry. Nothing here
//! touches the network — the struct is plain data, so the loadgen can
//! build one per simulated instance.

use crate::error::F2pmError;
use std::path::PathBuf;

/// Where a serve instance gets its model — the three boot modes that used
/// to be the `--models-dir` / `--model` / `--history` flag triangle.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSource {
    /// Cold-start from a versioned artifact store directory (`f2pm models`)
    /// and hot-reload whenever the manifest advances. The artifact records
    /// its own aggregation config, so an explicit window is rejected.
    Artifact(PathBuf),
    /// Load a text model file; optionally hot-reload on mtime change
    /// (the only source `watch` is valid for).
    File(PathBuf),
    /// Boot-train in-process from a history CSV with the named §III-D
    /// method, so the exposition carries the training-stage timings.
    BootTrain {
        /// History CSV to aggregate and train on.
        history: PathBuf,
        /// Training method name (`linear`, `rep_tree`, `m5p`, `svm`,
        /// `ls_svm`).
        method: String,
    },
}

/// A validated serve-instance description (see the module docs). Build
/// through [`ServeOptions::builder`]; a successfully built value is
/// internally consistent by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Where the model comes from.
    pub source: ModelSource,
    /// Shard worker count (hosts are pinned `host % shards`).
    pub shards: usize,
    /// Epoll reactor threads; `None` = server default (one per core on
    /// Linux), `Some(0)` = the thread-per-connection edge.
    pub reactors: Option<usize>,
    /// Bounded per-shard queue capacity (events).
    pub queue_cap: usize,
    /// Push a rejuvenation alert when predicted RTTF ≤ this (seconds).
    pub alert_threshold_s: f64,
    /// Consecutive below-threshold estimates required before alerting.
    pub alert_hits: usize,
    /// Aggregation window override (seconds); `None` keeps the default
    /// (or, for [`ModelSource::Artifact`], the artifact's own config).
    pub window_s: Option<f64>,
    /// Hot-reload a [`ModelSource::File`] model on mtime change.
    pub watch: bool,
    /// Bound the run (seconds); `None` = run until killed.
    pub seconds: Option<u64>,
    /// Stable fleet identity of this instance, surfaced in the v4
    /// `FleetSnapshot`/`TopKReply` frames and the
    /// `f2pm_serve_instance_info` exposition gauge.
    pub instance_id: u32,
    /// Continuous retraining: keep a warm [`crate::RetrainEngine`] over
    /// the last N completed failing runs and publish each refreshed model
    /// back through the artifact store. Only valid with
    /// [`ModelSource::Artifact`] — the published generations need a store
    /// to land in (and the manifest poll to hot-reload them from).
    pub retrain_window_runs: Option<usize>,
}

impl ServeOptions {
    /// Start describing an instance serving from `source`.
    pub fn builder(source: ModelSource) -> ServeOptionsBuilder {
        ServeOptionsBuilder {
            addr: "127.0.0.1:7878".to_string(),
            source,
            shards: 4,
            reactors: None,
            queue_cap: 1024,
            alert_threshold_s: crate::RejuvenationPolicy::default().rttf_threshold_s,
            alert_hits: crate::RejuvenationPolicy::default().consecutive_hits,
            window_s: None,
            watch: false,
            seconds: None,
            instance_id: 0,
            retrain_window_runs: None,
        }
    }
}

/// Accumulates serve options, validated as one unit by
/// [`ServeOptionsBuilder::build`].
#[derive(Debug, Clone)]
pub struct ServeOptionsBuilder {
    addr: String,
    source: ModelSource,
    shards: usize,
    reactors: Option<usize>,
    queue_cap: usize,
    alert_threshold_s: f64,
    alert_hits: usize,
    window_s: Option<f64>,
    watch: bool,
    seconds: Option<u64>,
    instance_id: u32,
    retrain_window_runs: Option<usize>,
}

impl ServeOptionsBuilder {
    /// Listen address (`host:port`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Shard worker count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Reactor thread count (`0` = threaded edge).
    pub fn reactors(mut self, reactors: usize) -> Self {
        self.reactors = Some(reactors);
        self
    }

    /// Bounded per-shard queue capacity.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Alert when predicted RTTF ≤ `threshold_s` seconds.
    pub fn alert_threshold_s(mut self, threshold_s: f64) -> Self {
        self.alert_threshold_s = threshold_s;
        self
    }

    /// Debounce: require this many consecutive below-threshold estimates.
    pub fn alert_hits(mut self, hits: usize) -> Self {
        self.alert_hits = hits;
        self
    }

    /// Aggregation window override (seconds).
    pub fn window_s(mut self, window_s: f64) -> Self {
        self.window_s = Some(window_s);
        self
    }

    /// Hot-reload the model file on mtime change.
    pub fn watch(mut self, watch: bool) -> Self {
        self.watch = watch;
        self
    }

    /// Bound the run to `seconds`.
    pub fn seconds(mut self, seconds: u64) -> Self {
        self.seconds = Some(seconds);
        self
    }

    /// Stable fleet identity of this instance.
    pub fn instance_id(mut self, id: u32) -> Self {
        self.instance_id = id;
        self
    }

    /// Continuously retrain on a sliding window of the last `runs`
    /// completed failing runs, publishing into the artifact store.
    pub fn retrain_window_runs(mut self, runs: usize) -> Self {
        self.retrain_window_runs = Some(runs);
        self
    }

    /// Validate the whole description. Every rule that used to be an
    /// ad-hoc CLI check lives here, and each violation is the same typed
    /// [`F2pmError::InvalidConfig`].
    pub fn build(self) -> Result<ServeOptions, F2pmError> {
        fn invalid(what: impl Into<String>) -> F2pmError {
            F2pmError::InvalidConfig { what: what.into() }
        }
        if self.addr.is_empty() {
            return Err(invalid("serve addr must not be empty"));
        }
        if self.shards == 0 {
            return Err(invalid("shards must be positive"));
        }
        if self.queue_cap == 0 {
            return Err(invalid("queue_cap must be positive"));
        }
        if self.alert_hits == 0 {
            return Err(invalid("alert_hits must be positive"));
        }
        if !(self.alert_threshold_s.is_finite() && self.alert_threshold_s >= 0.0) {
            return Err(invalid("alert_threshold_s must be finite and non-negative"));
        }
        if let Some(w) = self.window_s {
            if !(w.is_finite() && w > 0.0) {
                return Err(invalid("window_s must be positive"));
            }
        }
        if let Some(runs) = self.retrain_window_runs {
            if runs == 0 {
                return Err(invalid("retrain window must hold at least one run"));
            }
            if !matches!(self.source, ModelSource::Artifact(_)) {
                return Err(invalid(
                    "retrain needs an artifact store (--models-dir) to publish refreshed \
                     models into",
                ));
            }
        }
        match &self.source {
            ModelSource::Artifact(_) => {
                if self.window_s.is_some() {
                    return Err(invalid(
                        "window conflicts with an artifact store: the artifact records \
                         its own aggregation config",
                    ));
                }
                if self.watch {
                    return Err(invalid(
                        "watch is implicit with an artifact store (the manifest is \
                         always polled)",
                    ));
                }
            }
            ModelSource::File(_) => {}
            ModelSource::BootTrain { method, .. } => {
                if self.watch {
                    return Err(invalid(
                        "watch needs a model file to watch; a boot-trained model has none",
                    ));
                }
                const METHODS: [&str; 5] = ["linear", "rep_tree", "m5p", "svm", "ls_svm"];
                if !METHODS.contains(&method.as_str()) {
                    return Err(invalid(format!(
                        "unknown training method {method:?} (expected one of {METHODS:?})"
                    )));
                }
            }
        }
        Ok(ServeOptions {
            addr: self.addr,
            source: self.source,
            shards: self.shards,
            reactors: self.reactors,
            queue_cap: self.queue_cap,
            alert_threshold_s: self.alert_threshold_s,
            alert_hits: self.alert_hits,
            window_s: self.window_s,
            watch: self.watch,
            seconds: self.seconds,
            instance_id: self.instance_id,
            retrain_window_runs: self.retrain_window_runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_source() -> ModelSource {
        ModelSource::File(PathBuf::from("model.txt"))
    }

    #[test]
    fn defaults_build_and_mirror_the_rejuvenation_policy() {
        let o = ServeOptions::builder(file_source()).build().unwrap();
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert_eq!(o.shards, 4);
        assert_eq!(o.queue_cap, 1024);
        assert_eq!(o.reactors, None, "None defers to the server default");
        let policy = crate::RejuvenationPolicy::default();
        assert_eq!(o.alert_threshold_s, policy.rttf_threshold_s);
        assert_eq!(o.alert_hits, policy.consecutive_hits);
        assert!(!o.watch);
        assert_eq!(o.instance_id, 0);
        assert_eq!(o.retrain_window_runs, None);
    }

    #[test]
    fn every_knob_is_settable() {
        let o = ServeOptions::builder(ModelSource::BootTrain {
            history: PathBuf::from("h.csv"),
            method: "linear".to_string(),
        })
        .addr("0.0.0.0:9000")
        .shards(8)
        .reactors(2)
        .queue_cap(64)
        .alert_threshold_s(120.0)
        .alert_hits(3)
        .window_s(15.0)
        .seconds(30)
        .instance_id(7)
        .build()
        .unwrap();
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.shards, 8);
        assert_eq!(o.reactors, Some(2));
        assert_eq!(o.queue_cap, 64);
        assert_eq!(o.alert_threshold_s, 120.0);
        assert_eq!(o.alert_hits, 3);
        assert_eq!(o.window_s, Some(15.0));
        assert_eq!(o.seconds, Some(30));
        assert_eq!(o.instance_id, 7);
    }

    #[test]
    fn invalid_combinations_are_one_typed_kind() {
        let cases: Vec<ServeOptionsBuilder> = vec![
            ServeOptions::builder(file_source()).addr(""),
            ServeOptions::builder(file_source()).shards(0),
            ServeOptions::builder(file_source()).queue_cap(0),
            ServeOptions::builder(file_source()).alert_hits(0),
            ServeOptions::builder(file_source()).alert_threshold_s(f64::NAN),
            ServeOptions::builder(file_source()).alert_threshold_s(-1.0),
            ServeOptions::builder(file_source()).window_s(0.0),
            ServeOptions::builder(ModelSource::Artifact(PathBuf::from("store"))).window_s(10.0),
            ServeOptions::builder(ModelSource::Artifact(PathBuf::from("store"))).watch(true),
            ServeOptions::builder(ModelSource::BootTrain {
                history: PathBuf::from("h.csv"),
                method: "rep_tree".to_string(),
            })
            .watch(true),
            ServeOptions::builder(ModelSource::BootTrain {
                history: PathBuf::from("h.csv"),
                method: "gradient_boost".to_string(),
            }),
        ];
        for b in cases {
            let err = b.clone().build().unwrap_err();
            assert_eq!(err.kind(), "invalid_config", "{b:?} → {err}");
        }
    }

    #[test]
    fn watch_is_valid_only_for_file_sources() {
        let ok = ServeOptions::builder(file_source()).watch(true).build();
        assert!(ok.is_ok());
        let store = ServeOptions::builder(ModelSource::Artifact(PathBuf::from("s")))
            .watch(true)
            .build();
        assert_eq!(store.unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn retrain_is_valid_only_for_artifact_sources() {
        let o = ServeOptions::builder(ModelSource::Artifact(PathBuf::from("models")))
            .retrain_window_runs(6)
            .build()
            .unwrap();
        assert_eq!(o.retrain_window_runs, Some(6));
        for b in [
            ServeOptions::builder(file_source()).retrain_window_runs(6),
            ServeOptions::builder(ModelSource::BootTrain {
                history: PathBuf::from("h.csv"),
                method: "ls_svm".to_string(),
            })
            .retrain_window_runs(6),
            ServeOptions::builder(ModelSource::Artifact(PathBuf::from("models")))
                .retrain_window_runs(0),
        ] {
            assert_eq!(b.clone().build().unwrap_err().kind(), "invalid_config");
        }
    }

    #[test]
    fn artifact_source_without_overrides_builds() {
        let o = ServeOptions::builder(ModelSource::Artifact(PathBuf::from("models")))
            .build()
            .unwrap();
        assert_eq!(o.source, ModelSource::Artifact(PathBuf::from("models")));
        assert_eq!(o.window_s, None);
    }
}
