//! Response-time correlation (the paper's Fig. 3).
//!
//! §III-B demonstrates that the *inter-generation time* of monitoring
//! datapoints — how much the FMC's nominally fixed sampling clock stretches
//! under load — correlates with the response time remote clients observe.
//! The paper fits a linear-regression model mapping inter-generation time
//! to response time and overlays three curves: measured generation time,
//! measured RT (ground truth from instrumented emulated browsers), and the
//! "Correlated RT" the model produces.
//!
//! This matters beyond the figure: it gives operators a pragmatic estimate
//! of end-user latency with zero instrumentation at the endpoints.

use f2pm_linalg::Matrix;
use f2pm_ml::{LinearRegression, Regressor};
use f2pm_sim::Run;

/// One time-series sample of the Fig. 3 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtPoint {
    /// Time within the run (s).
    pub t: f64,
    /// Inter-generation time of the monitor datapoints (s).
    pub generation_time: f64,
    /// Ground-truth mean client response time (s).
    pub response_time: f64,
    /// Response time estimated from the generation time alone.
    pub correlated_rt: f64,
}

/// The fitted correlation and its series.
#[derive(Debug, Clone)]
pub struct RtCorrelation {
    /// The fitted linear map `rt ≈ intercept + slope × generation_time`.
    pub intercept: f64,
    /// Slope of the linear map.
    pub slope: f64,
    /// Pearson correlation between generation time and response time.
    pub pearson_r: f64,
    /// The three Fig. 3 curves.
    pub series: Vec<RtPoint>,
}

/// Fit the Fig. 3 correlation on one monitored run.
///
/// Samples with no completed requests (response time 0) are excluded from
/// the fit, mirroring the paper's per-interaction ground truth.
pub fn correlate_response_time(run: &Run) -> RtCorrelation {
    // Build (generation_time, response_time) pairs per sample.
    let mut t = Vec::new();
    let mut gen = Vec::new();
    let mut rt = Vec::new();
    for pair in run.samples.windows(2) {
        let dt = pair[1].t - pair[0].t;
        if pair[1].response_time_s > 0.0 {
            t.push(pair[1].t);
            gen.push(dt);
            rt.push(pair[1].response_time_s);
        }
    }
    assert!(
        gen.len() >= 8,
        "run too short to correlate ({} usable samples)",
        gen.len()
    );

    // Fit rt ~ gen with the framework's own linear regression.
    let mut x = Matrix::zeros(gen.len(), 1);
    for (i, &g) in gen.iter().enumerate() {
        x[(i, 0)] = g;
    }
    let model = LinearRegression::new()
        .fit(&x, &rt)
        .expect("correlation fit");
    let intercept = model.predict_row(&[0.0]);
    let slope = model.predict_row(&[1.0]) - intercept;

    let pearson_r = pearson(&gen, &rt);

    let series = t
        .iter()
        .zip(gen.iter().zip(&rt))
        .map(|(&ti, (&g, &r))| RtPoint {
            t: ti,
            generation_time: g,
            response_time: r,
            correlated_rt: model.predict_row(&[g]),
        })
        .collect();

    RtCorrelation {
        intercept,
        slope,
        pearson_r,
        series,
    }
}

/// Online response-time estimator built from a fitted [`RtCorrelation`].
///
/// §III-B: "this technique can be effectively used ... to have a pragmatic
/// estimation of the response time seen by end users, without any
/// modification to the software at the end point." Feed it raw datapoint
/// timestamps (e.g. from a live FMC stream); it converts the observed
/// inter-generation gaps into end-user latency estimates using the linear
/// map fitted offline.
#[derive(Debug, Clone)]
pub struct RtEstimator {
    intercept: f64,
    slope: f64,
    last_t: Option<f64>,
    /// Exponentially weighted estimate (smooths single-gap jitter).
    ewma: Option<f64>,
    /// EWMA weight of the newest observation.
    alpha: f64,
}

impl RtEstimator {
    /// Build from a fitted correlation. `alpha` is the EWMA weight of the
    /// newest observation (0 < alpha ≤ 1; 1 disables smoothing).
    pub fn new(corr: &RtCorrelation, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
        RtEstimator {
            intercept: corr.intercept,
            slope: corr.slope,
            last_t: None,
            ewma: None,
            alpha,
        }
    }

    /// Observe the timestamp of the next datapoint; returns the updated
    /// response-time estimate once two timestamps have been seen. Estimates
    /// are floored at zero (the linear map can go negative for very short
    /// gaps).
    pub fn observe(&mut self, t_gen: f64) -> Option<f64> {
        let estimate = match self.last_t {
            None => None,
            Some(prev) => {
                let gap = (t_gen - prev).max(0.0);
                let raw = (self.intercept + self.slope * gap).max(0.0);
                let smoothed = match self.ewma {
                    None => raw,
                    Some(e) => self.alpha * raw + (1.0 - self.alpha) * e,
                };
                self.ewma = Some(smoothed);
                Some(smoothed)
            }
        };
        self.last_t = Some(t_gen);
        estimate
    }

    /// The current estimate, if any.
    pub fn current(&self) -> Option<f64> {
        self.ewma
    }

    /// Forget stream state (e.g. after the monitored system restarted).
    pub fn reset(&mut self) {
        self.last_t = None;
        self.ewma = None;
    }
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_sim::{AnomalyConfig, Campaign, CampaignConfig, SimConfig};

    fn one_run() -> Run {
        let cfg = CampaignConfig {
            sim: SimConfig {
                anomaly: AnomalyConfig {
                    leak_size_mib: (5.0, 9.0),
                    leak_prob_per_home: (0.7, 0.9),
                    ..AnomalyConfig::default()
                },
                ..SimConfig::default()
            },
            runs: 1,
            ..CampaignConfig::default()
        };
        Campaign::new(cfg, 77).run_all().remove(0)
    }

    #[test]
    fn correlation_is_positive_and_meaningful() {
        let run = one_run();
        let corr = correlate_response_time(&run);
        assert!(
            corr.pearson_r > 0.3,
            "generation time should track RT (r = {})",
            corr.pearson_r
        );
        assert!(corr.slope > 0.0, "slope {}", corr.slope);
        assert!(corr.series.len() > 100);
    }

    #[test]
    fn correlated_rt_tracks_measured_rt_better_than_a_constant() {
        let run = one_run();
        let corr = correlate_response_time(&run);
        let mean_rt =
            corr.series.iter().map(|p| p.response_time).sum::<f64>() / corr.series.len() as f64;
        let model_err: f64 = corr
            .series
            .iter()
            .map(|p| (p.correlated_rt - p.response_time).abs())
            .sum();
        let const_err: f64 = corr
            .series
            .iter()
            .map(|p| (mean_rt - p.response_time).abs())
            .sum();
        assert!(
            model_err < const_err,
            "model {model_err:.2} vs constant {const_err:.2}"
        );
    }

    #[test]
    fn both_curves_rise_toward_failure() {
        // Fig. 3's qualitative content: generation time and RT both grow
        // as anomalies accumulate.
        let run = one_run();
        let corr = correlate_response_time(&run);
        let n = corr.series.len();
        let q = n / 4;
        let early_rt: f64 = corr.series[..q]
            .iter()
            .map(|p| p.response_time)
            .sum::<f64>()
            / q as f64;
        let late_rt: f64 = corr.series[n - q..]
            .iter()
            .map(|p| p.response_time)
            .sum::<f64>()
            / q as f64;
        let early_gen: f64 = corr.series[..q]
            .iter()
            .map(|p| p.generation_time)
            .sum::<f64>()
            / q as f64;
        let late_gen: f64 = corr.series[n - q..]
            .iter()
            .map(|p| p.generation_time)
            .sum::<f64>()
            / q as f64;
        assert!(late_rt > 2.0 * early_rt, "rt {early_rt:.3} → {late_rt:.3}");
        assert!(late_gen > early_gen, "gen {early_gen:.3} → {late_gen:.3}");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_run_panics() {
        let run = Run {
            seed: 0,
            samples: vec![],
            fail_time: None,
        };
        correlate_response_time(&run);
    }

    #[test]
    fn rt_estimator_tracks_live_latency_from_timestamps_alone() {
        // Fit on one run, then replay a *fresh* run's datapoint timestamps
        // through the online estimator and compare with its measured RT.
        let corr = correlate_response_time(&one_run());
        let mut est = RtEstimator::new(&corr, 0.3);

        let fresh = {
            let cfg = CampaignConfig {
                sim: SimConfig {
                    anomaly: AnomalyConfig {
                        leak_size_mib: (5.0, 9.0),
                        leak_prob_per_home: (0.7, 0.9),
                        ..AnomalyConfig::default()
                    },
                    ..SimConfig::default()
                },
                runs: 1,
                ..CampaignConfig::default()
            };
            Campaign::new(cfg, 1234).run_all().remove(0)
        };

        let mut pairs = Vec::new();
        for s in &fresh.samples {
            if let Some(e) = est.observe(s.t) {
                if s.response_time_s > 0.0 {
                    pairs.push((e, s.response_time_s));
                }
            }
        }
        assert!(pairs.len() > 100);
        // The estimate must track the trend: correlation with measured RT
        // clearly positive on unseen data.
        let (es, rs): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let r = pearson(&es, &rs);
        assert!(r > 0.4, "online estimate should track RT (r = {r:.3})");
    }

    #[test]
    fn rt_estimator_stream_semantics() {
        let corr = correlate_response_time(&one_run());
        let mut est = RtEstimator::new(&corr, 1.0);
        assert!(est.observe(0.0).is_none(), "first timestamp primes only");
        assert!(est.observe(1.5).is_some());
        assert!(est.current().is_some());
        est.reset();
        assert!(est.current().is_none());
        assert!(est.observe(100.0).is_none(), "reset forgets the stream");
        // Estimates are never negative even for tiny gaps.
        assert!(est.observe(100.0001).unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha in (0, 1]")]
    fn rt_estimator_rejects_bad_alpha() {
        let corr = correlate_response_time(&one_run());
        RtEstimator::new(&corr, 0.0);
    }

    #[test]
    fn pearson_edge_cases() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }
}
