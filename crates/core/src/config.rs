//! Framework configuration.

use crate::error::F2pmError;
use f2pm_features::{AggregationConfig, LassoSolverConfig};
use f2pm_ml::SMaeThreshold;
use f2pm_sim::CampaignConfig;

/// Method names accepted by [`F2pmConfigBuilder::methods`]. `"lasso"`
/// selects every `lasso_lambda_*` row of the suite.
pub const KNOWN_METHODS: [&str; 6] = [
    "linear_regression",
    "m5p",
    "rep_tree",
    "svm",
    "ls_svm",
    "lasso",
];

/// Complete configuration of an F2PM workflow run.
///
/// Construct via [`F2pmConfig::builder`] (validated) or the
/// [`F2pmConfig::quick`] / [`Default`] presets. The fields stay public for
/// inspection and for tests that intentionally build edge-case setups, but
/// new code should go through the builder — it is the only path that
/// validates and the only one that stays source-compatible as fields grow.
#[derive(Debug, Clone)]
pub struct F2pmConfig {
    /// The monitoring campaign (simulated testbed + sampling clock).
    pub campaign: CampaignConfig,
    /// Datapoint aggregation (window width, Fig. 2).
    pub aggregation: AggregationConfig,
    /// λ grid for the Lasso regularization path (§III-C). Empty disables
    /// feature selection — the phase is optional in the paper's Fig. 1.
    pub lambda_grid: Vec<f64>,
    /// Lasso solver options.
    pub lasso_solver: LassoSolverConfig,
    /// λ values at which "Lasso as a Predictor" rows are evaluated
    /// (Table II evaluates the whole grid).
    pub lasso_predictor_lambdas: Vec<f64>,
    /// S-MAE tolerance (Table II uses a 10 % threshold).
    pub smae: SMaeThreshold,
    /// Fraction of aggregated datapoints used for training (the rest
    /// validate).
    pub train_fraction: f64,
    /// Holdout shuffle seed.
    pub split_seed: u64,
    /// Minimum features a lasso selection must retain to be used as the
    /// "selected parameters" training set.
    pub min_selected_features: usize,
    /// Drop aggregated windows whose robust z-score exceeds this threshold
    /// in any column (monitoring glitches, mid-restart samples). `None`
    /// keeps everything — the paper's §IV setup. Caution: run trajectories
    /// are explosive near the crash, so tight thresholds trim exactly the
    /// near-failure windows the RTTF models need most; use large values
    /// (≫ 10) and check the retained count.
    pub outlier_threshold: Option<f64>,
    /// Split train/validation by *run* instead of by row. Rows of one run
    /// are autocorrelated, so the run-aware split is the honest
    /// generalization estimate; the row split mirrors a WEKA-style holdout.
    pub split_by_runs: bool,
    /// Restrict the method suite to these names (see [`KNOWN_METHODS`]).
    /// `None` runs the paper's full Table-II suite.
    pub methods: Option<Vec<String>>,
}

impl Default for F2pmConfig {
    fn default() -> Self {
        let lambda_grid = f2pm_features::paper_lambda_grid();
        F2pmConfig {
            campaign: CampaignConfig::default(),
            aggregation: AggregationConfig::default(),
            lasso_predictor_lambdas: lambda_grid.clone(),
            lambda_grid,
            lasso_solver: LassoSolverConfig::default(),
            smae: SMaeThreshold::paper_default(),
            train_fraction: 0.7,
            split_seed: 0xf2b1,
            min_selected_features: 3,
            outlier_threshold: None,
            split_by_runs: false,
            methods: None,
        }
    }
}

impl F2pmConfig {
    /// A configuration sized for fast tests and examples: fewer, shorter
    /// runs with aggressive anomaly rates.
    pub fn quick() -> Self {
        use f2pm_sim::{AnomalyConfig, SimConfig};
        let mut cfg = F2pmConfig::default();
        cfg.campaign.runs = 4;
        cfg.campaign.sim = SimConfig {
            anomaly: AnomalyConfig {
                leak_size_mib: (4.0, 8.0),
                leak_prob_per_home: (0.6, 0.9),
                ..AnomalyConfig::default()
            },
            ..SimConfig::default()
        };
        cfg.aggregation.window_s = 20.0;
        cfg.lasso_predictor_lambdas = vec![1.0, 1e9];
        cfg
    }

    /// Validated builder starting from the paper-default configuration.
    pub fn builder() -> F2pmConfigBuilder {
        F2pmConfigBuilder {
            cfg: F2pmConfig::default(),
        }
    }

    /// Validated builder starting from the [`F2pmConfig::quick`] preset.
    pub fn quick_builder() -> F2pmConfigBuilder {
        F2pmConfigBuilder {
            cfg: F2pmConfig::quick(),
        }
    }

    /// Validate an already-assembled configuration (the builder's
    /// [`F2pmConfigBuilder::build`] calls this; exposed for configs built
    /// field-by-field in legacy code).
    pub fn validate(&self) -> Result<(), F2pmError> {
        fn bad(what: impl Into<String>) -> Result<(), F2pmError> {
            Err(F2pmError::InvalidConfig { what: what.into() })
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return bad(format!(
                "train_fraction must be in (0, 1), got {}",
                self.train_fraction
            ));
        }
        if !(self.aggregation.window_s.is_finite() && self.aggregation.window_s > 0.0) {
            return bad(format!(
                "aggregation window must be positive, got {} s",
                self.aggregation.window_s
            ));
        }
        if self.campaign.runs == 0 {
            return bad("campaign.runs must be at least 1");
        }
        if self.min_selected_features == 0 {
            return bad("min_selected_features must be at least 1");
        }
        for &l in self.lambda_grid.iter().chain(&self.lasso_predictor_lambdas) {
            if !(l.is_finite() && l > 0.0) {
                return bad(format!(
                    "lasso λ values must be positive and finite, got {l}"
                ));
            }
        }
        if let Some(t) = self.outlier_threshold {
            if !(t.is_finite() && t > 0.0) {
                return bad(format!("outlier_threshold must be positive, got {t}"));
            }
        }
        if let Some(methods) = &self.methods {
            if methods.is_empty() {
                return bad("methods list is empty — omit it to run the full suite");
            }
            for m in methods {
                if !KNOWN_METHODS.contains(&m.as_str()) {
                    return bad(format!(
                        "unknown method {m:?}; known: {}",
                        KNOWN_METHODS.join(", ")
                    ));
                }
            }
        }
        Ok(())
    }

    /// Does the method filter (if any) keep a suite entry with this name?
    /// `"lasso"` matches every `lasso_lambda_*` row.
    pub fn method_enabled(&self, name: &str) -> bool {
        match &self.methods {
            None => true,
            Some(ms) => ms
                .iter()
                .any(|m| m == name || (m == "lasso" && name.starts_with("lasso_lambda_"))),
        }
    }
}

/// Validated builder for [`F2pmConfig`] — the supported construction path
/// (`F2pmConfig::builder().window_secs(20.0).methods(["m5p"]).build()?`).
#[derive(Debug, Clone)]
pub struct F2pmConfigBuilder {
    cfg: F2pmConfig,
}

impl F2pmConfigBuilder {
    /// Aggregation window width in seconds (Fig. 2).
    pub fn window_secs(mut self, secs: f64) -> Self {
        self.cfg.aggregation.window_s = secs;
        self
    }

    /// Include per-window standard deviations in the aggregated layout.
    pub fn include_stddev(mut self, on: bool) -> Self {
        self.cfg.aggregation.include_stddev = on;
        self
    }

    /// Number of monitoring campaign runs.
    pub fn runs(mut self, runs: usize) -> Self {
        self.cfg.campaign.runs = runs;
        self
    }

    /// λ grid driving the Lasso regularization path; empty disables
    /// feature selection.
    pub fn lambda_grid(mut self, grid: impl Into<Vec<f64>>) -> Self {
        self.cfg.lambda_grid = grid.into();
        self
    }

    /// λ values evaluated as "Lasso as a Predictor" rows.
    pub fn lasso_predictor_lambdas(mut self, lambdas: impl Into<Vec<f64>>) -> Self {
        self.cfg.lasso_predictor_lambdas = lambdas.into();
        self
    }

    /// S-MAE tolerance.
    pub fn smae(mut self, smae: SMaeThreshold) -> Self {
        self.cfg.smae = smae;
        self
    }

    /// Fraction of aggregated datapoints used for training.
    pub fn train_fraction(mut self, frac: f64) -> Self {
        self.cfg.train_fraction = frac;
        self
    }

    /// Holdout shuffle seed.
    pub fn split_seed(mut self, seed: u64) -> Self {
        self.cfg.split_seed = seed;
        self
    }

    /// Minimum features a lasso selection must retain.
    pub fn min_selected_features(mut self, n: usize) -> Self {
        self.cfg.min_selected_features = n;
        self
    }

    /// Robust z-score outlier threshold (`None` keeps everything).
    pub fn outlier_threshold(mut self, t: Option<f64>) -> Self {
        self.cfg.outlier_threshold = t;
        self
    }

    /// Split train/validation by run instead of by row.
    pub fn split_by_runs(mut self, on: bool) -> Self {
        self.cfg.split_by_runs = on;
        self
    }

    /// Restrict the suite to these methods (see [`KNOWN_METHODS`]).
    pub fn methods<I, S>(mut self, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.cfg.methods = Some(methods.into_iter().map(Into::into).collect());
        self
    }

    /// Replace the whole campaign configuration.
    pub fn campaign(mut self, campaign: CampaignConfig) -> Self {
        self.cfg.campaign = campaign;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<F2pmConfig, F2pmError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shapes() {
        let cfg = F2pmConfig::default();
        assert_eq!(cfg.lambda_grid.len(), 10);
        assert_eq!(cfg.lambda_grid[9], 1e9);
        assert_eq!(cfg.lasso_predictor_lambdas.len(), 10);
        assert!(matches!(cfg.smae, SMaeThreshold::Relative(f) if (f - 0.1).abs() < 1e-12));
        assert!(cfg.train_fraction > 0.5 && cfg.train_fraction < 1.0);
        cfg.validate().expect("defaults validate");
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = F2pmConfig::quick();
        assert!(q.campaign.runs < F2pmConfig::default().campaign.runs);
        assert_eq!(q.lasso_predictor_lambdas.len(), 2);
        q.validate().expect("quick preset validates");
    }

    #[test]
    fn builder_sets_fields_and_validates() {
        let cfg = F2pmConfig::builder()
            .window_secs(30.0)
            .runs(6)
            .train_fraction(0.8)
            .split_seed(42)
            .methods(["m5p", "lasso"])
            .build()
            .expect("valid config");
        assert_eq!(cfg.aggregation.window_s, 30.0);
        assert_eq!(cfg.campaign.runs, 6);
        assert_eq!(cfg.train_fraction, 0.8);
        assert!(cfg.method_enabled("m5p"));
        assert!(cfg.method_enabled("lasso_lambda_1e0"));
        assert!(!cfg.method_enabled("svm"));
    }

    #[test]
    fn builder_rejects_bad_values() {
        for (result, needle) in [
            (
                F2pmConfig::builder().train_fraction(1.5).build(),
                "train_fraction",
            ),
            (F2pmConfig::builder().window_secs(0.0).build(), "window"),
            (F2pmConfig::builder().runs(0).build(), "runs"),
            (
                F2pmConfig::builder().min_selected_features(0).build(),
                "min_selected_features",
            ),
            (
                F2pmConfig::builder().lambda_grid([1.0, -2.0]).build(),
                "λ values",
            ),
            (
                F2pmConfig::builder().outlier_threshold(Some(-1.0)).build(),
                "outlier_threshold",
            ),
            (
                F2pmConfig::builder().methods(["quantum_forest"]).build(),
                "unknown method",
            ),
            (
                F2pmConfig::builder().methods(Vec::<String>::new()).build(),
                "empty",
            ),
        ] {
            let err = result.expect_err(needle);
            assert_eq!(err.kind(), "invalid_config");
            assert!(err.to_string().contains(needle), "{err} ∌ {needle}");
        }
    }

    #[test]
    fn quick_builder_starts_from_the_preset() {
        let cfg = F2pmConfig::quick_builder().runs(2).build().unwrap();
        assert_eq!(cfg.campaign.runs, 2);
        assert_eq!(cfg.lasso_predictor_lambdas.len(), 2, "quick preset kept");
    }

    #[test]
    fn unfiltered_config_enables_everything() {
        let cfg = F2pmConfig::default();
        for m in ["linear_regression", "svm", "lasso_lambda_1e9", "anything"] {
            assert!(cfg.method_enabled(m));
        }
    }
}
