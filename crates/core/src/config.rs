//! Framework configuration.

use f2pm_features::{AggregationConfig, LassoSolverConfig};
use f2pm_ml::SMaeThreshold;
use f2pm_sim::CampaignConfig;

/// Complete configuration of an F2PM workflow run.
#[derive(Debug, Clone)]
pub struct F2pmConfig {
    /// The monitoring campaign (simulated testbed + sampling clock).
    pub campaign: CampaignConfig,
    /// Datapoint aggregation (window width, Fig. 2).
    pub aggregation: AggregationConfig,
    /// λ grid for the Lasso regularization path (§III-C). Empty disables
    /// feature selection — the phase is optional in the paper's Fig. 1.
    pub lambda_grid: Vec<f64>,
    /// Lasso solver options.
    pub lasso_solver: LassoSolverConfig,
    /// λ values at which "Lasso as a Predictor" rows are evaluated
    /// (Table II evaluates the whole grid).
    pub lasso_predictor_lambdas: Vec<f64>,
    /// S-MAE tolerance (Table II uses a 10 % threshold).
    pub smae: SMaeThreshold,
    /// Fraction of aggregated datapoints used for training (the rest
    /// validate).
    pub train_fraction: f64,
    /// Holdout shuffle seed.
    pub split_seed: u64,
    /// Minimum features a lasso selection must retain to be used as the
    /// "selected parameters" training set.
    pub min_selected_features: usize,
    /// Drop aggregated windows whose robust z-score exceeds this threshold
    /// in any column (monitoring glitches, mid-restart samples). `None`
    /// keeps everything — the paper's §IV setup. Caution: run trajectories
    /// are explosive near the crash, so tight thresholds trim exactly the
    /// near-failure windows the RTTF models need most; use large values
    /// (≫ 10) and check the retained count.
    pub outlier_threshold: Option<f64>,
    /// Split train/validation by *run* instead of by row. Rows of one run
    /// are autocorrelated, so the run-aware split is the honest
    /// generalization estimate; the row split mirrors a WEKA-style holdout.
    pub split_by_runs: bool,
}

impl Default for F2pmConfig {
    fn default() -> Self {
        let lambda_grid = f2pm_features::paper_lambda_grid();
        F2pmConfig {
            campaign: CampaignConfig::default(),
            aggregation: AggregationConfig::default(),
            lasso_predictor_lambdas: lambda_grid.clone(),
            lambda_grid,
            lasso_solver: LassoSolverConfig::default(),
            smae: SMaeThreshold::paper_default(),
            train_fraction: 0.7,
            split_seed: 0xf2b1,
            min_selected_features: 3,
            outlier_threshold: None,
            split_by_runs: false,
        }
    }
}

impl F2pmConfig {
    /// A configuration sized for fast tests and examples: fewer, shorter
    /// runs with aggressive anomaly rates.
    pub fn quick() -> Self {
        use f2pm_sim::{AnomalyConfig, SimConfig};
        let mut cfg = F2pmConfig::default();
        cfg.campaign.runs = 4;
        cfg.campaign.sim = SimConfig {
            anomaly: AnomalyConfig {
                leak_size_mib: (4.0, 8.0),
                leak_prob_per_home: (0.6, 0.9),
                ..AnomalyConfig::default()
            },
            ..SimConfig::default()
        };
        cfg.aggregation.window_s = 20.0;
        cfg.lasso_predictor_lambdas = vec![1.0, 1e9];
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shapes() {
        let cfg = F2pmConfig::default();
        assert_eq!(cfg.lambda_grid.len(), 10);
        assert_eq!(cfg.lambda_grid[9], 1e9);
        assert_eq!(cfg.lasso_predictor_lambdas.len(), 10);
        assert!(matches!(cfg.smae, SMaeThreshold::Relative(f) if (f - 0.1).abs() < 1e-12));
        assert!(cfg.train_fraction > 0.5 && cfg.train_fraction < 1.0);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = F2pmConfig::quick();
        assert!(q.campaign.runs < F2pmConfig::default().campaign.runs);
        assert_eq!(q.lasso_predictor_lambdas.len(), 2);
    }
}
