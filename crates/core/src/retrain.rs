//! Warm-start incremental retraining over a sliding run window.
//!
//! The knowledge-base loop (§III-A) retrains on "the last W failing
//! runs" every time a run completes. Cold retraining repeats three
//! super-linear costs on every shift even though only one run changed:
//! re-aggregating the whole window, rebuilding the `n × n` LS-SVM kernel
//! system, and refactoring it (`O(n³)`). [`RetrainEngine`] keeps the
//! expensive state *live* across shifts and updates it by exactly the
//! rows that entered and left:
//!
//! - **Aggregation** — a [`SlidingAggregator`] caches each run's
//!   aggregated points, so a shift aggregates only the new run.
//! - **LS-SVM factor** — the Cholesky factor of `A = K + I/γ` is
//!   maintained with [`Cholesky::shift_window`]: the evicted runs are
//!   always the *leading* rows in window order, so a steady-state shift
//!   (rows out == rows in) slides the surviving triangle up-left in
//!   place, folds the retired columns back in, and borders by the new
//!   run's kernel rows — the only kernel entries computed — without
//!   ever assembling a second `n × n` buffer. Unequal shifts take the
//!   two-step [`Cholesky::retire_leading`] + [`Cholesky::extend`] path
//!   inside the same call. The dual is refreshed with one two-RHS
//!   [`Cholesky::solve_multi`] plus [`eliminate_bias`], and the model is
//!   assembled via [`LsSvmModel::from_parts`] — bit-compatible with what
//!   a cold [`LsSvmRegressor::fit_prestandardized`] produces, within
//!   rounding.
//! - **Linear ridge factor** — the `(p+1) × (p+1)` Gram factor of
//!   `G = Z̃ᵀZ̃ + λI` (intercept-augmented standardized rows) is
//!   maintained with [`Cholesky::update_rank_k`] /
//!   [`Cholesky::downdate_rank_k`]; the downdate's conditioning guard
//!   ([`f2pm_linalg::DOWNDATE_GUARD`]) makes this the one genuinely
//!   *conditionally* stable path, so a guard trip falls back to an exact
//!   refactorization ([`FactorPath::Fallback`]) instead of committing an
//!   amplified factor.
//! - **Lasso sufficient statistics** — [`LassoStats`] keeps the window's
//!   uncentered moments; each retrain derives the centered problem in
//!   `O(p²)` and warm-starts coordinate descent from the previous β.
//!   The solver's final full KKT sweep still certifies the optimum, so
//!   warm starting changes sweep counts, never the solution.
//!
//! **Standardization contract.** The engine freezes one [`Standardizer`]
//! at the first retrain and reuses it for every later shift: kernel
//! entries depend on the standardized coordinates, so refitting the
//! standardizer per window would invalidate every cached factor entry
//! and silently break warm/cold comparability. [`RetrainEngine::retrain_cold`]
//! uses the same frozen standardizer, which is what makes the
//! warm-equals-cold 1e-6 equivalence contract testable at all. Callers
//! that need to re-calibrate scaling start a fresh engine.

use std::collections::VecDeque;

use crate::error::F2pmError;
use f2pm_features::{
    AggregatedPoint, AggregationConfig, LassoSolution, LassoSolverConfig, LassoStats,
    SlidingAggregator, WindowShift,
};
use f2pm_linalg::{Cholesky, Matrix, Standardizer};
use f2pm_ml::lssvm::{eliminate_bias, LsSvmModel};
use f2pm_ml::{Kernel, LsSvmRegressor};
use f2pm_monitor::RunData;

/// How a maintained factor reached its post-retrain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorPath {
    /// Rebuilt from scratch (first retrain, scheduled refactorization, or
    /// a whole-window replacement where incremental work would cost more
    /// than a cold build).
    Cold,
    /// Updated in place by exactly the rows that entered and left.
    Warm,
    /// A warm update was attempted but refused (downdate conditioning
    /// guard or a non-positive-definite border), so the factor was
    /// rebuilt from scratch. The *result* is identical to [`Cold`]
    /// (`Cold` = [`FactorPath::Cold`]); the flag exists so callers can
    /// count how often the guard fires.
    Fallback,
}

/// Configuration of a [`RetrainEngine`].
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Aggregation scheme for incoming runs (must stay fixed — cached
    /// aggregations and the frozen standardizer depend on it).
    pub aggregation: AggregationConfig,
    /// Sliding window length in *runs* (must be ≥ 1).
    pub window_runs: usize,
    /// LS-SVM kernel.
    pub kernel: Kernel,
    /// LS-SVM regularization γ (the maintained SPD block is `K + I/γ`).
    pub gamma: f64,
    /// Ridge λ of the maintained linear Gram factor.
    pub ridge_lambda: f64,
    /// Lasso λ solved (with warm starts) each retrain; `None` skips the
    /// lasso stage entirely.
    pub lasso_lambda: Option<f64>,
    /// Cold-refactor after this many consecutive warm retrains to bound
    /// floating-point drift (0 = never on schedule; fallbacks still
    /// refactor). Drift per warm shift is at the rounding level, so the
    /// default of 64 keeps the warm/cold gap far below the 1e-6 contract.
    pub refactor_every: usize,
}

impl RetrainConfig {
    /// Defaults matching the CLI's LS-SVM configuration.
    pub fn new(window_runs: usize) -> Self {
        RetrainConfig {
            aggregation: AggregationConfig::default(),
            window_runs,
            kernel: Kernel::Rbf { gamma: 0.03 },
            gamma: 10.0,
            ridge_lambda: 1e-6,
            lasso_lambda: Some(0.05),
            refactor_every: 64,
        }
    }
}

/// The linear ridge model maintained alongside the LS-SVM: `β` solved
/// from the intercept-augmented Gram factor `(Z̃ᵀZ̃ + λI) β = Z̃ᵀy`.
///
/// The intercept coefficient is regularized together with the rest (the
/// price of exact rank-k maintenance — centering `y` would make every
/// coefficient depend on the window mean and break the update algebra);
/// with the tiny default λ the bias this introduces is negligible.
#[derive(Debug, Clone)]
pub struct RidgeModel {
    standardizer: Standardizer,
    /// `beta[0]` is the intercept, `beta[1..]` the per-column weights in
    /// standardized space.
    beta: Vec<f64>,
}

impl RidgeModel {
    /// Predict the RTTF of one raw (unstandardized) input row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut z = row.to_vec();
        self.standardizer.transform_row(&mut z);
        self.beta[0]
            + z.iter()
                .zip(&self.beta[1..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// The solved coefficients (`[intercept, weights...]`, standardized
    /// space).
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }
}

/// What one [`RetrainEngine::retrain`] produced.
#[derive(Debug, Clone)]
pub struct RetrainOutcome {
    /// The refreshed LS-SVM model.
    pub model: LsSvmModel,
    /// The refreshed linear ridge model.
    pub ridge: RidgeModel,
    /// Lasso solution at [`RetrainConfig::lasso_lambda`] (warm-started;
    /// `None` when no λ is configured).
    pub lasso: Option<LassoSolution>,
    /// How the LS-SVM kernel factor was obtained.
    pub lssvm_path: FactorPath,
    /// How the ridge Gram factor was obtained.
    pub ridge_path: FactorPath,
    /// Labeled rows in the trained window.
    pub rows: usize,
    /// Leading rows retired by this retrain.
    pub retired_rows: usize,
    /// Trailing rows appended by this retrain.
    pub appended_rows: usize,
}

/// Warm-start incremental retraining engine (see module docs).
#[derive(Debug, Clone)]
pub struct RetrainEngine {
    cfg: RetrainConfig,
    slider: SlidingAggregator,
    /// Frozen at the first retrain; never refitted (see module docs).
    standardizer: Option<Standardizer>,
    /// Standardized window rows in window order, row-major, mirroring the
    /// rows the maintained factors were built from.
    zdata: Vec<f64>,
    /// Labels matching `zdata` rows.
    y: Vec<f64>,
    /// Input width (columns of `zdata`).
    width: usize,
    /// Runs reflected in `zdata`/factors: `(run_id, rows)` in window order.
    applied: VecDeque<(u64, usize)>,
    /// Maintained factor of the LS-SVM block `A = K + I/γ`.
    factor: Option<Cholesky>,
    /// Maintained factor of the augmented ridge Gram `Z̃ᵀZ̃ + λI`.
    ridge_factor: Option<Cholesky>,
    /// Maintained `Z̃ᵀy` for the ridge solve.
    ridge_xty: Vec<f64>,
    /// Maintained lasso sufficient statistics over `zdata`/`y`.
    lasso_stats: Option<LassoStats>,
    /// Previous lasso solution — the warm start seed.
    lasso_beta: Option<Vec<f64>>,
    /// Warm retrains since the last cold build (scheduled-refactor clock).
    warm_streak: usize,
}

impl RetrainEngine {
    /// Create an empty engine.
    ///
    /// # Panics
    /// Panics when `window_runs` is 0 or γ/λ are not positive.
    pub fn new(cfg: RetrainConfig) -> Self {
        assert!(cfg.window_runs >= 1, "window must hold at least one run");
        assert!(cfg.gamma > 0.0, "LS-SVM gamma must be positive");
        assert!(cfg.ridge_lambda > 0.0, "ridge lambda must be positive");
        let slider = SlidingAggregator::new(cfg.aggregation, cfg.window_runs);
        RetrainEngine {
            cfg,
            slider,
            standardizer: None,
            zdata: Vec::new(),
            y: Vec::new(),
            width: 0,
            applied: VecDeque::new(),
            factor: None,
            ridge_factor: None,
            ridge_xty: Vec::new(),
            lasso_stats: None,
            lasso_beta: None,
            warm_streak: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RetrainConfig {
        &self.cfg
    }

    /// Push one completed run into the window (aggregates only that run).
    /// Cheap — call it from the ingest path; call [`retrain`](Self::retrain)
    /// when a refreshed model is wanted.
    pub fn push_run(&mut self, run: &RunData) -> WindowShift {
        self.slider.push_run(run)
    }

    /// Labeled rows currently in the window.
    pub fn window_rows(&self) -> usize {
        self.slider.len_points()
    }

    /// Runs currently in the window.
    pub fn window_runs(&self) -> usize {
        self.slider.len_runs()
    }

    /// The frozen standardizer, once the first retrain has happened.
    pub fn standardizer(&self) -> Option<&Standardizer> {
        self.standardizer.as_ref()
    }

    /// Retrain on the current window, reusing every stale factor that can
    /// be updated in place. Errors with
    /// [`F2pmError::NotEnoughData`] until the window holds at least two
    /// labeled rows.
    pub fn retrain(&mut self) -> Result<RetrainOutcome, F2pmError> {
        let rows = self.slider.len_points();
        if rows < 2 {
            return Err(F2pmError::NotEnoughData {
                points: rows,
                needed: 2,
            });
        }

        // Diff the slider window against the rows the factors reflect.
        // Run ids are monotonic and eviction is strictly from the head, so
        // the applied runs that left form a prefix and the new runs a
        // suffix.
        let window: Vec<(u64, usize)> = self
            .slider
            .runs()
            .map(|r| (r.run_id, r.points.len()))
            .collect();
        let first_kept = window.first().map(|&(id, _)| id).unwrap_or(0);
        let mut retired_rows = 0;
        while let Some(&(id, n)) = self.applied.front() {
            if id < first_kept {
                retired_rows += n;
                self.applied.pop_front();
            } else {
                break;
            }
        }
        let last_applied = self.applied.back().map(|&(id, _)| id);
        let appended: Vec<&AggregatedPoint> = self
            .slider
            .runs()
            .filter(|r| last_applied.is_none_or(|last| r.run_id > last))
            .flat_map(|r| r.points.iter())
            .collect();
        let appended_rows = appended.len();
        debug_assert!(self
            .applied
            .iter()
            .map(|&(id, _)| id)
            .eq(window.iter().map(|&(id, _)| id).take(self.applied.len())));

        let n_old: usize = self.applied.iter().map(|&(_, n)| n).sum();
        let scheduled = self.cfg.refactor_every > 0 && self.warm_streak >= self.cfg.refactor_every;
        // A whole-window replacement (or the first retrain) gains nothing
        // from incremental updates — retire-everything-then-extend does
        // strictly more work than a cold build.
        let warm_viable = self.standardizer.is_some()
            && self.factor.is_some()
            && !scheduled
            && retired_rows < n_old;

        if self.standardizer.is_none() {
            // First retrain: freeze standardization on the initial window.
            let raw = self.window_matrix_raw();
            self.standardizer = Some(Standardizer::fit(&raw));
            self.width = raw.cols();
        }
        let std = self.standardizer.clone().expect("frozen above");

        // Standardize the appended rows and save the retired ones before
        // the mirror moves (the ridge downdate needs their values).
        let zk = self.standardize_points(&std, &appended);
        let yk: Vec<f64> = appended
            .iter()
            .map(|p| p.rttf.expect("cached points are labeled"))
            .collect();
        let retired_z = Matrix::from_vec(
            retired_rows,
            self.width,
            self.zdata[..retired_rows * self.width].to_vec(),
        );
        let retired_y: Vec<f64> = self.y[..retired_rows].to_vec();

        let (lssvm_path, ridge_path) = if warm_viable {
            let ridge_path = self.ridge_shift_warm(&retired_z, &retired_y, &zk, &yk);
            self.lasso_shift_warm(&retired_z, &retired_y, &zk, &yk);
            let lssvm_path = self.lssvm_shift_warm(retired_rows, &zk, &yk);
            if lssvm_path == FactorPath::Warm {
                self.warm_streak += 1;
            } else {
                self.warm_streak = 0;
            }
            (lssvm_path, ridge_path)
        } else {
            // Cold: move the mirror wholesale, then rebuild every factor.
            self.drain_leading(retired_rows);
            self.append_rows(&zk, &yk);
            self.rebuild_all()?;
            self.warm_streak = 0;
            (FactorPath::Cold, FactorPath::Cold)
        };

        self.applied = window.into();
        debug_assert_eq!(self.y.len(), rows);

        self.assemble(&std, lssvm_path, ridge_path, retired_rows, appended_rows)
    }

    /// Cold-reference retrain: rebuild everything for the current window
    /// from scratch, through the same public entry points an offline fit
    /// would use ([`LsSvmRegressor::fit_prestandardized`],
    /// [`f2pm_features::LassoProblem::new`]). Does not touch any engine
    /// state — this is the oracle the warm path is tested against.
    pub fn retrain_cold(&self) -> Result<RetrainOutcome, F2pmError> {
        let points: Vec<&AggregatedPoint> = self.slider.points().collect();
        if points.len() < 2 {
            return Err(F2pmError::NotEnoughData {
                points: points.len(),
                needed: 2,
            });
        }
        let raw = self.window_matrix_raw();
        let std = self
            .standardizer
            .clone()
            .unwrap_or_else(|| Standardizer::fit(&raw));
        let z = std.transform(&raw);
        let y: Vec<f64> = points
            .iter()
            .map(|p| p.rttf.expect("cached points are labeled"))
            .collect();

        let reg = LsSvmRegressor::new(self.cfg.kernel, self.cfg.gamma);
        let model = reg.fit_prestandardized(std.clone(), &z, &y)?;

        let aug = augment(&z);
        let gram = ridge_gram(&aug, self.cfg.ridge_lambda);
        let ch = Cholesky::factor(&gram)?;
        let xty = xty_of(&aug, &y);
        let beta = ch.solve(&xty)?;
        let ridge = RidgeModel {
            standardizer: std,
            beta,
        };

        let lasso = self.cfg.lasso_lambda.map(|lambda| {
            f2pm_features::LassoProblem::new(&z, &y).solve(lambda, None, &lasso_solver_config())
        });

        Ok(RetrainOutcome {
            model,
            ridge,
            lasso,
            lssvm_path: FactorPath::Cold,
            ridge_path: FactorPath::Cold,
            rows: y.len(),
            retired_rows: 0,
            appended_rows: 0,
        })
    }

    // ---- warm update stages ------------------------------------------

    /// Ridge Gram: downdate the retired rows, update the appended ones.
    /// The downdate is the conditionally-stable op — a guard trip rebuilds
    /// the factor exactly and reports [`FactorPath::Fallback`].
    fn ridge_shift_warm(
        &mut self,
        retired_z: &Matrix,
        retired_y: &[f64],
        zk: &Matrix,
        yk: &[f64],
    ) -> FactorPath {
        for (i, &yi) in retired_y.iter().enumerate() {
            axpy_aug(&mut self.ridge_xty, -yi, retired_z.row(i));
        }
        for (i, &yi) in yk.iter().enumerate() {
            axpy_aug(&mut self.ridge_xty, yi, zk.row(i));
        }
        let ok = (|| -> f2pm_linalg::Result<()> {
            let f = self.ridge_factor.as_mut().expect("warm path has factors");
            if retired_z.rows() > 0 {
                f.downdate_rank_k(&augment(retired_z))?;
            }
            if zk.rows() > 0 {
                f.update_rank_k(&augment(zk))?;
            }
            Ok(())
        })();
        match ok {
            Ok(()) => FactorPath::Warm,
            Err(_) => {
                // Mirror isn't shifted yet — rebuild from first principles
                // once it is. assemble() runs after the mirror moves, so
                // just mark the factor stale here. The lasso sufficient
                // statistics are condemned by the same evidence: the guard
                // fires exactly when the retired rows' mass dominates what
                // remains, and that is also the regime where subtracting
                // them from the maintained moment sums cancels
                // catastrophically.
                self.ridge_factor = None;
                self.lasso_stats = None;
                FactorPath::Fallback
            }
        }
    }

    /// Lasso sufficient statistics: exact rank-k subtract/add — sums
    /// cannot become indefinite, so there is no fallback to take.
    fn lasso_shift_warm(&mut self, retired_z: &Matrix, retired_y: &[f64], zk: &Matrix, yk: &[f64]) {
        if let Some(stats) = self.lasso_stats.as_mut() {
            if retired_z.rows() > 0 {
                stats.remove_rows(retired_z, retired_y);
            }
            if zk.rows() > 0 {
                stats.add_rows(zk, yk);
            }
        }
    }

    /// LS-SVM kernel factor: retire the leading rows, then border by the
    /// new run's kernel rows — the only kernel entries computed.
    fn lssvm_shift_warm(&mut self, retired_rows: usize, zk: &Matrix, yk: &[f64]) -> FactorPath {
        self.drain_leading(retired_rows);
        let border = (zk.rows() > 0).then(|| self.kernel_border(zk));
        let attempt = {
            let factor = self.factor.as_mut().expect("warm path has factors");
            match &border {
                // The steady-state case (one run out, one run in) runs the
                // fused in-place shift; shape-changing shifts take the
                // two-step path inside shift_window.
                Some((b, c)) => factor.shift_window(retired_rows, b, c),
                None => factor.retire_leading(retired_rows),
            }
        };
        self.append_rows(zk, yk);

        match attempt {
            Ok(()) => FactorPath::Warm,
            Err(_) => {
                self.factor = None;
                FactorPath::Fallback
            }
        }
    }

    // ---- shared assembly ---------------------------------------------

    /// Solve every model off the (possibly rebuilt) factors and package
    /// the outcome. Factors marked stale by a fallback are rebuilt here,
    /// after the mirror reached its final state.
    fn assemble(
        &mut self,
        std: &Standardizer,
        lssvm_path: FactorPath,
        ridge_path: FactorPath,
        retired_rows: usize,
        appended_rows: usize,
    ) -> Result<RetrainOutcome, F2pmError> {
        let n = self.y.len();
        if self.factor.is_none() {
            self.factor = Some(self.lssvm_factor_cold()?);
        }
        if self.ridge_factor.is_none() {
            let z = self.window_matrix_std();
            let aug = augment(&z);
            self.ridge_factor = Some(Cholesky::factor(&ridge_gram(&aug, self.cfg.ridge_lambda))?);
            // A fallback is a full cold rebuild of the ridge system: also
            // recompute `Z̃ᵀy` from the mirror, discarding whatever
            // cancellation residue the maintained sums accumulated from
            // the rows that forced the fallback.
            self.ridge_xty = xty_of(&aug, &self.y);
        }
        if self.lasso_stats.is_none() {
            let z = self.window_matrix_std();
            self.lasso_stats = Some(LassoStats::from_data(&z, &self.y));
        }

        // Dual refresh: one interleaved two-RHS solve (1 | y).
        let mut rhs = Matrix::zeros(n, 2);
        for i in 0..n {
            rhs[(i, 0)] = 1.0;
            rhs[(i, 1)] = self.y[i];
        }
        let sol = self
            .factor
            .as_ref()
            .expect("built above")
            .solve_multi(&rhs)?;
        let s: Vec<f64> = (0..n).map(|i| sol[(i, 0)]).collect();
        let zvec: Vec<f64> = (0..n).map(|i| sol[(i, 1)]).collect();
        let (alpha, bias) = eliminate_bias(&s, &zvec)?;
        let model = LsSvmModel::from_parts(
            self.cfg.kernel,
            std.clone(),
            self.window_matrix_std(),
            alpha,
            bias,
        );

        let beta = self
            .ridge_factor
            .as_ref()
            .expect("built above")
            .solve(&self.ridge_xty)?;
        let ridge = RidgeModel {
            standardizer: std.clone(),
            beta,
        };

        let lasso = self.cfg.lasso_lambda.map(|lambda| {
            let sol = self
                .lasso_stats
                .as_ref()
                .expect("built above")
                .to_problem()
                .solve(lambda, self.lasso_beta.as_deref(), &lasso_solver_config());
            self.lasso_beta = Some(sol.beta.clone());
            sol
        });

        Ok(RetrainOutcome {
            model,
            ridge,
            lasso,
            lssvm_path,
            ridge_path,
            rows: n,
            retired_rows,
            appended_rows,
        })
    }

    /// Rebuild every factor and statistic from the mirror (cold path).
    fn rebuild_all(&mut self) -> Result<(), F2pmError> {
        self.factor = Some(self.lssvm_factor_cold()?);
        let z = self.window_matrix_std();
        let aug = augment(&z);
        self.ridge_factor = Some(Cholesky::factor(&ridge_gram(&aug, self.cfg.ridge_lambda))?);
        self.ridge_xty = xty_of(&aug, &self.y);
        self.lasso_stats = Some(LassoStats::from_data(&z, &self.y));
        Ok(())
    }

    fn lssvm_factor_cold(&self) -> Result<Cholesky, F2pmError> {
        let z = self.window_matrix_std();
        let mut a = self.cfg.kernel.matrix(&z);
        for i in 0..a.rows() {
            a[(i, i)] += 1.0 / self.cfg.gamma;
        }
        Ok(Cholesky::factor(&a)?)
    }

    /// Kernel border of the appended rows against the surviving window:
    /// `b[i][j] = k(zᵢ, z̃ⱼ)` (`n_kept × k`) and `c = K(z̃) + I/γ` (`k × k`).
    fn kernel_border(&self, zk: &Matrix) -> (Matrix, Matrix) {
        let n = self.y.len();
        let k = zk.rows();
        let mut b = Matrix::zeros(n, k);
        for i in 0..n {
            let zi = &self.zdata[i * self.width..(i + 1) * self.width];
            let row = b.row_mut(i);
            for (j, bij) in row.iter_mut().enumerate() {
                *bij = self.cfg.kernel.eval(zi, zk.row(j));
            }
        }
        let mut c = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                c[(i, j)] = self.cfg.kernel.eval(zk.row(i), zk.row(j));
            }
            c[(i, i)] += 1.0 / self.cfg.gamma;
        }
        (b, c)
    }

    // ---- mirror helpers ----------------------------------------------

    fn drain_leading(&mut self, rows: usize) {
        self.zdata.drain(..rows * self.width);
        self.y.drain(..rows);
    }

    fn append_rows(&mut self, zk: &Matrix, yk: &[f64]) {
        for i in 0..zk.rows() {
            self.zdata.extend_from_slice(zk.row(i));
        }
        self.y.extend_from_slice(yk);
    }

    /// Raw (unstandardized) design matrix of the *slider* window.
    fn window_matrix_raw(&self) -> Matrix {
        let points: Vec<&AggregatedPoint> = self.slider.points().collect();
        let width = points
            .first()
            .map(|p| p.input_width(&self.cfg.aggregation))
            .unwrap_or(0);
        let mut x = Matrix::zeros(points.len(), width);
        for (i, p) in points.iter().enumerate() {
            p.write_into(&self.cfg.aggregation, x.row_mut(i));
        }
        x
    }

    /// Standardized design matrix of the *mirror* (the rows the factors
    /// reflect).
    fn window_matrix_std(&self) -> Matrix {
        Matrix::from_vec(self.y.len(), self.width, self.zdata.clone())
    }

    fn standardize_points(&self, std: &Standardizer, points: &[&AggregatedPoint]) -> Matrix {
        let mut z = Matrix::zeros(points.len(), self.width);
        for (i, p) in points.iter().enumerate() {
            let row = z.row_mut(i);
            p.write_into(&self.cfg.aggregation, row);
            std.transform_row(row);
        }
        z
    }
}

/// Lasso solver options for engine retrains: tighter than the default so
/// a warm and a cold solve each land within ~1e-8·‖β‖∞ of the shared
/// optimum — the default 1e-8 *relative* threshold would already allow
/// two converged solutions to sit ~2e-6 apart on RTTF-scale
/// coefficients, outside the warm-equals-cold contract.
fn lasso_solver_config() -> LassoSolverConfig {
    LassoSolverConfig {
        tol: 1e-10,
        ..LassoSolverConfig::default()
    }
}

/// Prepend a constant-1 intercept column.
fn augment(z: &Matrix) -> Matrix {
    let (n, p) = z.shape();
    let mut out = Matrix::zeros(n, p + 1);
    for i in 0..n {
        let row = out.row_mut(i);
        row[0] = 1.0;
        row[1..].copy_from_slice(z.row(i));
    }
    out
}

/// `AᵀA + λI` of an augmented design matrix.
fn ridge_gram(aug: &Matrix, lambda: f64) -> Matrix {
    let (n, p) = aug.shape();
    let mut g = Matrix::zeros(p, p);
    for i in 0..n {
        let row = aug.row(i);
        for a in 0..p {
            let va = row[a];
            let dst = g.row_mut(a);
            for (d, &vb) in dst.iter_mut().zip(row) {
                *d += va * vb;
            }
        }
    }
    for j in 0..p {
        g[(j, j)] += lambda;
    }
    g
}

/// `Aᵀy` of an augmented design matrix.
fn xty_of(aug: &Matrix, y: &[f64]) -> Vec<f64> {
    let mut xty = vec![0.0; aug.cols()];
    for (i, &yi) in y.iter().enumerate() {
        axpy_aug(&mut xty, yi, aug.row(i)[1..].as_ref());
    }
    xty
}

/// `xty += s · [1, row]` — the augmented-row axpy both maintenance and
/// rebuild share so their summation structure matches.
fn axpy_aug(xty: &mut [f64], s: f64, row: &[f64]) {
    xty[0] += s;
    for (d, &v) in xty[1..].iter_mut().zip(row) {
        *d += s * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_ml::Model;
    use f2pm_monitor::Datapoint;
    use proptest::prelude::*;

    fn synth_run(seed: u64, n: usize, fail: Option<f64>) -> RunData {
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let mut values = [0.0; 14];
            for (j, v) in values.iter_mut().enumerate() {
                // Per-column frequency and phase so the aggregated design
                // columns are genuinely independent — a collinear design
                // would make the lasso optimum non-unique and the warm/cold
                // comparison meaningless.
                let freq = 0.23 + 0.11 * j as f64;
                let phase = seed as f64 * 1.7 + j as f64 * 2.3;
                *v = (i as f64 * freq + phase).sin() * 40.0 + 120.0 + j as f64 * 3.0;
            }
            pts.push(Datapoint {
                t_gen: i as f64 * 1.2,
                values,
            });
        }
        RunData {
            datapoints: pts,
            fail_time: fail,
        }
    }

    fn quick_cfg(window_runs: usize) -> RetrainConfig {
        RetrainConfig {
            aggregation: AggregationConfig {
                window_s: 6.0,
                ..AggregationConfig::default()
            },
            // Larger than the production default: censored pushes can
            // leave a test window rank-deficient, where the deficient
            // directions' β is `xtyᵢ/λ` — a tiny λ would amplify benign
            // reassociation noise past the 1e-6 contract.
            ridge_lambda: 1e-3,
            ..RetrainConfig::new(window_runs)
        }
    }

    /// Warm and cold outcomes must agree to `tol` on every observable:
    /// LS-SVM predictions, ridge coefficients, lasso support + β.
    fn assert_outcomes_match(warm: &RetrainOutcome, cold: &RetrainOutcome, tol: f64, what: &str) {
        assert_eq!(warm.rows, cold.rows, "{what}: row counts differ");
        let probe: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..30)
                    .map(|j| ((i * 31 + j) as f64 * 0.13).sin() * 60.0 + 110.0)
                    .collect()
            })
            .collect();
        for row in &probe {
            let a = warm.model.predict_row(row);
            let b = cold.model.predict_row(row);
            assert!(
                (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
                "{what}: ls-svm prediction {a} vs {b}"
            );
            let ra = warm.ridge.predict_row(row);
            let rb = cold.ridge.predict_row(row);
            assert!(
                (ra - rb).abs() <= tol * (1.0 + ra.abs().max(rb.abs())),
                "{what}: ridge prediction {ra} vs {rb}"
            );
        }
        for (j, (a, b)) in warm.ridge.beta().iter().zip(cold.ridge.beta()).enumerate() {
            assert!(
                (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
                "{what}: ridge beta[{j}] {a} vs {b}"
            );
        }
        match (&warm.lasso, &cold.lasso) {
            (Some(w), Some(c)) => {
                // Coefficient-wise, not support-wise: a coefficient whose
                // true value sits at the selection boundary may be exactly
                // zero on one path and O(tol) on the other, which is the
                // same optimum to within the contract. Skipped when either
                // side hit the sweep cap — censored runs can leave the
                // window with fewer rows than columns, where the lasso
                // optimum is not unique and there is nothing to compare.
                if w.converged && c.converged {
                    for (j, (a, b)) in w.beta.iter().zip(&c.beta).enumerate() {
                        assert!(
                            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
                            "{what}: lasso beta[{j}] {a} vs {b}"
                        );
                    }
                }
            }
            (None, None) => {}
            _ => panic!("{what}: lasso presence differs"),
        }
    }

    #[test]
    fn first_retrain_is_cold_then_shifts_go_warm() {
        let mut eng = RetrainEngine::new(quick_cfg(3));
        for i in 0..3 {
            eng.push_run(&synth_run(i, 100, Some(106.0 + i as f64)));
        }
        let first = eng.retrain().expect("first retrain");
        assert_eq!(first.lssvm_path, FactorPath::Cold);
        assert_eq!(first.ridge_path, FactorPath::Cold);
        assert_eq!(first.rows, eng.window_rows());

        eng.push_run(&synth_run(9, 100, Some(107.5)));
        let shifted = eng.retrain().expect("warm retrain");
        assert_eq!(shifted.lssvm_path, FactorPath::Warm);
        assert_eq!(shifted.ridge_path, FactorPath::Warm);
        assert!(shifted.retired_rows > 0);
        assert!(shifted.appended_rows > 0);
        let cold = eng.retrain_cold().expect("cold reference");
        assert_outcomes_match(&shifted, &cold, 1e-6, "one-run shift");
    }

    #[test]
    fn append_only_shifts_stay_warm_and_match_cold() {
        // Window not full yet: every shift appends without retiring.
        let mut eng = RetrainEngine::new(quick_cfg(6));
        eng.push_run(&synth_run(0, 100, Some(106.0)));
        eng.push_run(&synth_run(1, 100, Some(105.0)));
        eng.retrain().expect("seed retrain");
        for i in 2..6 {
            eng.push_run(&synth_run(i, 95, Some(104.0 + i as f64)));
            let out = eng.retrain().expect("append-only retrain");
            assert_eq!(out.lssvm_path, FactorPath::Warm);
            assert_eq!(out.retired_rows, 0);
            let cold = eng.retrain_cold().expect("cold reference");
            assert_outcomes_match(&out, &cold, 1e-6, &format!("append {i}"));
        }
    }

    #[test]
    fn censored_run_causes_retire_only_shift() {
        // A censored run occupies a window slot but contributes no rows:
        // the shift retires the evicted run's rows and appends nothing.
        let mut eng = RetrainEngine::new(quick_cfg(3));
        for i in 0..3 {
            eng.push_run(&synth_run(i, 100, Some(106.0)));
        }
        eng.retrain().expect("seed retrain");
        eng.push_run(&synth_run(7, 100, None));
        let out = eng.retrain().expect("retire-only retrain");
        assert_eq!(out.lssvm_path, FactorPath::Warm);
        assert!(out.retired_rows > 0);
        assert_eq!(out.appended_rows, 0);
        let cold = eng.retrain_cold().expect("cold reference");
        assert_outcomes_match(&out, &cold, 1e-6, "retire-only");
    }

    #[test]
    fn whole_window_replacement_takes_the_cold_path() {
        let mut eng = RetrainEngine::new(quick_cfg(2));
        eng.push_run(&synth_run(0, 100, Some(106.0)));
        eng.push_run(&synth_run(1, 100, Some(105.0)));
        eng.retrain().expect("seed");
        // Push a full window's worth without retraining in between: the
        // next retrain replaces every applied row.
        eng.push_run(&synth_run(2, 100, Some(104.0)));
        eng.push_run(&synth_run(3, 100, Some(103.0)));
        let out = eng.retrain().expect("replacement retrain");
        assert_eq!(out.lssvm_path, FactorPath::Cold);
        let cold = eng.retrain_cold().expect("cold reference");
        assert_outcomes_match(&out, &cold, 1e-6, "replacement");
    }

    #[test]
    fn scheduled_refactor_resets_the_warm_streak() {
        let mut cfg = quick_cfg(3);
        cfg.refactor_every = 2;
        let mut eng = RetrainEngine::new(cfg);
        for i in 0..3 {
            eng.push_run(&synth_run(i, 95, Some(100.0)));
        }
        eng.retrain().expect("seed");
        let mut paths = Vec::new();
        for i in 3..9 {
            eng.push_run(&synth_run(i, 95, Some(100.0)));
            paths.push(eng.retrain().expect("shift").lssvm_path);
        }
        assert_eq!(
            paths,
            vec![
                FactorPath::Warm,
                FactorPath::Warm,
                FactorPath::Cold,
                FactorPath::Warm,
                FactorPath::Warm,
                FactorPath::Cold,
            ]
        );
    }

    #[test]
    fn ridge_downdate_guard_falls_back_and_still_matches_cold() {
        // An extreme-magnitude run dominates the ridge Gram; when it
        // retires, the hyperbolic downdate would shrink pivots by far
        // more than the guard allows, so the engine must refuse the
        // downdate (Fallback) and refactorize — and the fallback result
        // must still match the cold oracle.
        let mut cfg = quick_cfg(3);
        cfg.ridge_lambda = 1e-8;
        let mut eng = RetrainEngine::new(cfg);
        // Freeze the standardizer on a normal window first — the huge run
        // must arrive *after* the freeze, or standardization would scale
        // it back to O(1) and nothing would dominate.
        for i in 0..3 {
            eng.push_run(&synth_run(i, 100, Some(106.0)));
        }
        eng.retrain().expect("seed retrain");

        // The dominating run: raw values ~1e7 frozen standard deviations
        // out, so its Gram contribution dwarfs everything else's.
        let mut huge = synth_run(3, 100, Some(103.0));
        for p in &mut huge.datapoints {
            for v in &mut p.values {
                *v *= 3.0e8;
            }
        }
        eng.push_run(&huge);
        let mid = eng.retrain().expect("shift bringing the dominating run");
        assert_eq!(mid.ridge_path, FactorPath::Warm, "updates are guard-free");

        // Slide until the dominating run is the window head...
        eng.push_run(&synth_run(4, 100, Some(102.0)));
        eng.retrain().expect("shift");
        eng.push_run(&synth_run(5, 100, Some(101.0)));
        eng.retrain().expect("shift");

        // ...then evict it: retiring its rows trips the guard.
        eng.push_run(&synth_run(6, 100, Some(100.0)));
        let out = eng.retrain().expect("eviction retrain");
        assert_eq!(
            out.ridge_path,
            FactorPath::Fallback,
            "guard should have refused the downdate"
        );
        assert_eq!(out.lssvm_path, FactorPath::Warm);
        let cold = eng.retrain_cold().expect("cold reference");
        assert_outcomes_match(&out, &cold, 1e-6, "post-fallback");
    }

    #[test]
    fn retrain_without_enough_rows_errors() {
        let mut eng = RetrainEngine::new(quick_cfg(3));
        let err = eng.retrain().unwrap_err();
        assert_eq!(err.kind(), "not_enough_data");
        eng.push_run(&synth_run(0, 100, None));
        assert!(eng.retrain().is_err());
    }

    #[test]
    fn warm_lasso_spends_no_more_sweeps_than_cold() {
        let mut eng = RetrainEngine::new(quick_cfg(4));
        for i in 0..4 {
            eng.push_run(&synth_run(i, 100, Some(105.0)));
        }
        eng.retrain().expect("seed");
        eng.push_run(&synth_run(5, 100, Some(104.0)));
        let warm = eng.retrain().expect("warm");
        let cold = eng.retrain_cold().expect("cold");
        let (w, c) = (warm.lasso.unwrap(), cold.lasso.unwrap());
        assert!(
            w.sweeps <= c.sweeps,
            "warm lasso took {} sweeps, cold {}",
            w.sweeps,
            c.sweeps
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The equivalence contract: any mix of failing/censored pushes
        /// with retrains interleaved must keep warm == cold within 1e-6.
        #[test]
        fn prop_window_shift_sequences_keep_warm_equal_to_cold(
            seeds in proptest::collection::vec(0u64..1000, 4..9),
            censor_mask in proptest::collection::vec(0u64..2, 4..9),
            retrain_mask in proptest::collection::vec(0u64..2, 4..9),
        ) {
            let mut eng = RetrainEngine::new(quick_cfg(3));
            // Seed a full window so later pushes slide it.
            for i in 0..3 {
                eng.push_run(&synth_run(900 + i, 95, Some(101.0 + i as f64)));
            }
            eng.retrain().expect("seed retrain");
            for (i, &seed) in seeds.iter().enumerate() {
                let censored = censor_mask.get(i).copied().unwrap_or(0) == 1;
                let fail = if censored { None } else { Some(100.0 + seed as f64 % 7.0) };
                eng.push_run(&synth_run(seed, 90 + (seed % 13) as usize, fail));
                if retrain_mask.get(i).copied().unwrap_or(1) == 1 {
                    match (eng.retrain(), eng.retrain_cold()) {
                        (Ok(warm), Ok(cold)) =>
                            assert_outcomes_match(&warm, &cold, 1e-6, &format!("step {i}")),
                        (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind()),
                        (a, b) => panic!("warm/cold disagree on fallibility: {:?} vs {:?}",
                                         a.map(|o| o.rows), b.map(|o| o.rows)),
                    }
                }
            }
        }
    }
}
