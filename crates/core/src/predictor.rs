//! Online RTTF prediction.
//!
//! Turns a trained model into a live estimator: raw datapoints stream in
//! (from an FMC, a `/proc` collector, or the simulator), the predictor
//! maintains the current aggregation window, and once a window closes it
//! emits an RTTF estimate — exactly the deployment mode the paper's
//! proactive-rejuvenation use case needs.

use f2pm_features::{aggregate_run, AggregationConfig};
use f2pm_ml::Model;
use f2pm_monitor::{Datapoint, RunData};

/// A live RTTF estimator around a trained [`Model`].
pub struct OnlinePredictor {
    model: Box<dyn Model>,
    /// Indices of the aggregated-input columns the model consumes (the
    /// model may have been trained on a lasso-selected subset).
    column_idx: Vec<usize>,
    agg: AggregationConfig,
    /// Datapoints of the window currently being filled (plus one point of
    /// look-back for the inter-generation gap).
    buffer: Vec<Datapoint>,
    /// Latest estimate.
    last_estimate: Option<f64>,
}

impl OnlinePredictor {
    /// Wrap a model.
    ///
    /// `column_names` are the model's input columns (in training order);
    /// they are resolved against the aggregated layout `agg` defines (the
    /// paper's 30 columns, or 44 with `include_stddev`).
    ///
    /// # Panics
    /// Panics if a column name is unknown or the count mismatches the
    /// model's width.
    pub fn new(model: Box<dyn Model>, column_names: &[String], agg: AggregationConfig) -> Self {
        let all = f2pm_features::aggregate::aggregated_column_names_with(&agg);
        let column_idx: Vec<usize> = column_names
            .iter()
            .map(|n| {
                all.iter()
                    .position(|a| a == n)
                    .unwrap_or_else(|| panic!("unknown aggregated column {n}"))
            })
            .collect();
        assert_eq!(
            column_idx.len(),
            model.width(),
            "model width vs column count mismatch"
        );
        OnlinePredictor {
            model,
            column_idx,
            agg,
            buffer: Vec::new(),
            last_estimate: None,
        }
    }

    /// Feed one datapoint. Returns a fresh RTTF estimate when a window
    /// closed with this point, `None` otherwise.
    pub fn push(&mut self, d: Datapoint) -> Option<f64> {
        self.buffer.push(d);
        let window_anchor = self.buffer[0].t_gen;
        let elapsed = d.t_gen - window_anchor;
        if elapsed < self.agg.window_s {
            return None;
        }
        // Window closed: aggregate everything but the just-arrived point
        // (which starts the next window).
        let closing: Vec<Datapoint> = self.buffer[..self.buffer.len() - 1].to_vec();
        let next_start = self.buffer[self.buffer.len() - 1];
        if closing.len() < self.agg.min_points {
            self.buffer = vec![next_start];
            return None;
        }
        let run = RunData {
            datapoints: closing,
            fail_time: None,
        };
        let points = aggregate_run(&run, &self.agg);
        self.buffer = vec![next_start];
        let point = points.into_iter().next_back()?;
        let inputs = point.inputs();
        let row: Vec<f64> = self.column_idx.iter().map(|&j| inputs[j]).collect();
        // One window = one row, so this is the single-row path; the kernel
        // models standardize into stack scratch here (no per-estimate
        // allocation), and batched replay goes through `predict_batch`.
        let estimate = self.model.predict_row(&row).max(0.0);
        self.last_estimate = Some(estimate);
        Some(estimate)
    }

    /// The most recent estimate, if any window has closed yet.
    pub fn last_estimate(&self) -> Option<f64> {
        self.last_estimate
    }

    /// Drop buffered state (e.g. after a rejuvenation restart).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.last_estimate = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::Dataset;
    use f2pm_ml::{LinearRegression, Regressor};
    use f2pm_monitor::FeatureId;

    /// Train a model on synthetic aggregated data where RTTF is a clean
    /// function of swap_used: rttf = 1000 − 2 × swap_used.
    fn trained_model() -> (Box<dyn Model>, Vec<String>) {
        let mut points = Vec::new();
        for k in 0..60 {
            let swap = k as f64 * 8.0;
            let pts: Vec<Datapoint> = (0..10)
                .map(|i| {
                    let mut d = Datapoint {
                        t_gen: k as f64 * 30.0 + i as f64 * 3.0,
                        values: [1.0; 14],
                    };
                    d.set(FeatureId::SwapUsed, swap);
                    d
                })
                .collect();
            let run = RunData {
                datapoints: pts,
                fail_time: Some(1e6), // placeholder; y overridden below
            };
            points.extend(aggregate_run(
                &run,
                &AggregationConfig {
                    window_s: 30.0,
                    min_points: 2,
                    ..AggregationConfig::default()
                },
            ));
        }
        let mut ds = Dataset::from_points(&points);
        // Override the target with the clean relationship.
        let swap_col = ds.column_index("swap_used").unwrap();
        ds.y = (0..ds.len())
            .map(|i| 1000.0 - 2.0 * ds.x[(i, swap_col)])
            .collect();
        let sub = ds.select_named(&["swap_used", "swap_used_slope"]);
        let model = LinearRegression::new().fit(&sub.x, &sub.y).unwrap();
        (model, sub.names.clone())
    }

    #[test]
    fn emits_estimates_as_windows_close() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        let mut estimates = Vec::new();
        for i in 0..100 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 100.0);
            if let Some(e) = pred.push(d) {
                estimates.push(e);
            }
        }
        assert!(estimates.len() >= 8, "only {} estimates", estimates.len());
        // rttf = 1000 − 2×100 = 800, constant swap → slope 0. The training
        // design's slope column is identically zero, so the fit goes
        // through the ridge fallback, which biases coefficients by ~0.3 %.
        for e in &estimates {
            assert!((e - 800.0).abs() < 8.0, "estimate {e}");
        }
        assert_eq!(pred.last_estimate(), estimates.last().copied());
    }

    #[test]
    fn estimates_decrease_as_swap_grows() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        let mut estimates = Vec::new();
        for i in 0..200 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, i as f64 * 2.0);
            if let Some(e) = pred.push(d) {
                estimates.push(e);
            }
        }
        assert!(estimates.len() > 10);
        assert!(
            estimates.first().unwrap() > estimates.last().unwrap(),
            "estimates should fall: {estimates:?}"
        );
    }

    #[test]
    fn estimates_clamped_at_zero() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        for i in 0..50 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 10_000.0); // way past failure
            if let Some(e) = pred.push(d) {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        for i in 0..20 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 50.0);
            pred.push(d);
        }
        pred.reset();
        assert!(pred.last_estimate().is_none());
    }

    #[test]
    #[should_panic(expected = "unknown aggregated column")]
    fn unknown_column_panics() {
        let (model, _) = trained_model();
        OnlinePredictor::new(
            model,
            &["bogus".to_string(), "swap_used".to_string()],
            AggregationConfig::default(),
        );
    }
}
