//! Online RTTF prediction.
//!
//! Turns a trained model into a live estimator: raw datapoints stream in
//! (from an FMC, a `/proc` collector, or the simulator), the predictor
//! maintains the current aggregation window, and once a window closes it
//! emits an RTTF estimate — exactly the deployment mode the paper's
//! proactive-rejuvenation use case needs.

use crate::F2pmError;
use f2pm_features::{aggregate_run, AggregationConfig};
use f2pm_linalg::Matrix;
use f2pm_ml::Model;
use f2pm_monitor::{Datapoint, RunData};

/// A live RTTF estimator around a trained [`Model`].
pub struct OnlinePredictor {
    model: Box<dyn Model>,
    /// Indices of the aggregated-input columns the model consumes (the
    /// model may have been trained on a lasso-selected subset).
    column_idx: Vec<usize>,
    agg: AggregationConfig,
    /// Datapoints of the window currently being filled (plus one point of
    /// look-back for the inter-generation gap).
    buffer: Vec<Datapoint>,
    /// Latest estimate.
    last_estimate: Option<f64>,
    /// Reusable single-row scratch for the immediate [`OnlinePredictor::push`] path.
    row_scratch: Vec<f64>,
}

impl OnlinePredictor {
    /// Wrap a model.
    ///
    /// `column_names` are the model's input columns (in training order);
    /// they are resolved against the aggregated layout `agg` defines (the
    /// paper's 30 columns, or 44 with `include_stddev`).
    ///
    /// # Panics
    /// Panics if a column name is unknown or the count mismatches the
    /// model's width.
    pub fn new(model: Box<dyn Model>, column_names: &[String], agg: AggregationConfig) -> Self {
        let all = f2pm_features::aggregate::aggregated_column_names_with(&agg);
        let column_idx: Vec<usize> = column_names
            .iter()
            .map(|n| {
                all.iter()
                    .position(|a| a == n)
                    .unwrap_or_else(|| panic!("unknown aggregated column {n}"))
            })
            .collect();
        assert_eq!(
            column_idx.len(),
            model.width(),
            "model width vs column count mismatch"
        );
        OnlinePredictor {
            model,
            column_idx,
            agg,
            buffer: Vec::new(),
            last_estimate: None,
            row_scratch: Vec::new(),
        }
    }

    /// Model input width (number of aggregated columns consumed).
    pub fn width(&self) -> usize {
        self.column_idx.len()
    }

    /// Feed one datapoint. Returns a fresh RTTF estimate when a window
    /// closed with this point, `None` otherwise.
    ///
    /// This is the immediate path: the closing window is scored on the
    /// spot with `predict_row`. Batch consumers (the serve shard workers)
    /// use [`OnlinePredictor::push_deferred`] + [`predict_many`] instead,
    /// which produce bit-identical estimates (asserted by the
    /// `batch_equivalence` test suite) while amortizing one model call
    /// over every window that closed in a drain.
    pub fn push(&mut self, d: Datapoint) -> Option<f64> {
        let mut row = std::mem::take(&mut self.row_scratch);
        row.clear();
        let closed = self.push_deferred(d, &mut row);
        let out = if closed {
            // One window = one row, so this is the single-row path; the
            // kernel models standardize into stack scratch here (no
            // per-estimate allocation).
            let estimate = self.model.predict_row(&row).max(0.0);
            self.last_estimate = Some(estimate);
            Some(estimate)
        } else {
            None
        };
        self.row_scratch = row;
        out
    }

    /// Deferred-scoring variant of [`OnlinePredictor::push`]: folds the
    /// datapoint into the current window and, when the window closes,
    /// appends the model-input row (`width()` values) to `rows` and
    /// returns `true` — *without* evaluating the model. The caller scores
    /// every deferred row of a batch in one [`predict_many`] call and
    /// hands the estimate back via [`OnlinePredictor::record_estimate`].
    pub fn push_deferred(&mut self, d: Datapoint, rows: &mut Vec<f64>) -> bool {
        self.buffer.push(d);
        let window_anchor = self.buffer[0].t_gen;
        let elapsed = d.t_gen - window_anchor;
        if elapsed < self.agg.window_s {
            return false;
        }
        // Window closed: aggregate everything but the just-arrived point
        // (which starts the next window).
        let closing: Vec<Datapoint> = self.buffer[..self.buffer.len() - 1].to_vec();
        let next_start = self.buffer[self.buffer.len() - 1];
        if closing.len() < self.agg.min_points {
            self.buffer = vec![next_start];
            return false;
        }
        let run = RunData {
            datapoints: closing,
            fail_time: None,
        };
        let points = aggregate_run(&run, &self.agg);
        self.buffer = vec![next_start];
        let Some(point) = points.into_iter().next_back() else {
            return false;
        };
        // Stack scratch for the paper's 30-column layout — this runs once
        // per closed window per host, so no per-window heap allocation.
        let mut inputs = [0.0; 30];
        point.write_into(&AggregationConfig::default(), &mut inputs);
        rows.extend(self.column_idx.iter().map(|&j| inputs[j]));
        true
    }

    /// Record an estimate produced externally for this predictor's most
    /// recently deferred row (see [`OnlinePredictor::push_deferred`]).
    pub fn record_estimate(&mut self, estimate: f64) {
        self.last_estimate = Some(estimate);
    }

    /// The most recent estimate, if any window has closed yet.
    pub fn last_estimate(&self) -> Option<f64> {
        self.last_estimate
    }

    /// Drop buffered state (e.g. after a rejuvenation restart).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.last_estimate = None;
    }
}

/// Score a flat row-major batch of deferred window rows (from
/// [`OnlinePredictor::push_deferred`]) in **one** `Model::predict_batch`
/// call, clamping estimates at 0 exactly like [`OnlinePredictor::push`].
///
/// Estimates are appended to `out` in row order. The flat `rows` buffer is
/// moved through the matrix and handed back cleared, so a steady-state
/// caller allocates nothing per batch. Returns the number of rows scored.
///
/// Bit-for-bit equivalence with the per-row path is load-bearing: the
/// kernel models' `predict_batch` overrides are proven `==` to
/// `predict_row` (PR 1), and `batch_equivalence` asserts the same for this
/// entry point, so a serve shard may batch freely without changing a
/// single published estimate.
pub fn predict_many(
    model: &dyn Model,
    width: usize,
    rows: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> Result<usize, F2pmError> {
    debug_assert_eq!(rows.len() % width.max(1), 0, "ragged deferred rows");
    let flat = std::mem::take(rows);
    let n = flat.len().checked_div(width).unwrap_or(0);
    if n == 0 {
        *rows = flat;
        rows.clear();
        return Ok(0);
    }
    let x = Matrix::from_vec(n, width, flat);
    let result = model.predict_batch(&x);
    *rows = x.into_vec();
    rows.clear();
    let predictions = result?;
    out.extend(predictions.into_iter().map(|p| p.max(0.0)));
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::Dataset;
    use f2pm_ml::{LinearRegression, Regressor};
    use f2pm_monitor::FeatureId;

    /// Train a model on synthetic aggregated data where RTTF is a clean
    /// function of swap_used: rttf = 1000 − 2 × swap_used.
    fn trained_model() -> (Box<dyn Model>, Vec<String>) {
        let mut points = Vec::new();
        for k in 0..60 {
            let swap = k as f64 * 8.0;
            let pts: Vec<Datapoint> = (0..10)
                .map(|i| {
                    let mut d = Datapoint {
                        t_gen: k as f64 * 30.0 + i as f64 * 3.0,
                        values: [1.0; 14],
                    };
                    d.set(FeatureId::SwapUsed, swap);
                    d
                })
                .collect();
            let run = RunData {
                datapoints: pts,
                fail_time: Some(1e6), // placeholder; y overridden below
            };
            points.extend(aggregate_run(
                &run,
                &AggregationConfig {
                    window_s: 30.0,
                    min_points: 2,
                    ..AggregationConfig::default()
                },
            ));
        }
        let mut ds = Dataset::from_points(&points);
        // Override the target with the clean relationship.
        let swap_col = ds.column_index("swap_used").unwrap();
        ds.y = (0..ds.len())
            .map(|i| 1000.0 - 2.0 * ds.x[(i, swap_col)])
            .collect();
        let sub = ds.select_named(&["swap_used", "swap_used_slope"]);
        let model = LinearRegression::new().fit(&sub.x, &sub.y).unwrap();
        (model, sub.names.clone())
    }

    #[test]
    fn emits_estimates_as_windows_close() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        let mut estimates = Vec::new();
        for i in 0..100 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 100.0);
            if let Some(e) = pred.push(d) {
                estimates.push(e);
            }
        }
        assert!(estimates.len() >= 8, "only {} estimates", estimates.len());
        // rttf = 1000 − 2×100 = 800, constant swap → slope 0. The training
        // design's slope column is identically zero, so the fit goes
        // through the ridge fallback, which biases coefficients by ~0.3 %.
        for e in &estimates {
            assert!((e - 800.0).abs() < 8.0, "estimate {e}");
        }
        assert_eq!(pred.last_estimate(), estimates.last().copied());
    }

    #[test]
    fn estimates_decrease_as_swap_grows() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        let mut estimates = Vec::new();
        for i in 0..200 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, i as f64 * 2.0);
            if let Some(e) = pred.push(d) {
                estimates.push(e);
            }
        }
        assert!(estimates.len() > 10);
        assert!(
            estimates.first().unwrap() > estimates.last().unwrap(),
            "estimates should fall: {estimates:?}"
        );
    }

    #[test]
    fn estimates_clamped_at_zero() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        for i in 0..50 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 10_000.0); // way past failure
            if let Some(e) = pred.push(d) {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let (model, names) = trained_model();
        let mut pred = OnlinePredictor::new(
            model,
            &names,
            AggregationConfig {
                window_s: 30.0,
                min_points: 2,
                ..AggregationConfig::default()
            },
        );
        for i in 0..20 {
            let mut d = Datapoint {
                t_gen: i as f64 * 3.0,
                values: [1.0; 14],
            };
            d.set(FeatureId::SwapUsed, 50.0);
            pred.push(d);
        }
        pred.reset();
        assert!(pred.last_estimate().is_none());
    }

    /// The deferred path (`push_deferred` + `predict_many`) must publish
    /// bit-identical estimates, in the same order, as the immediate
    /// `push` path — this is what lets serve shards batch model calls
    /// without changing a single answer on the wire.
    #[test]
    fn deferred_batch_path_is_bit_identical_to_push() {
        let (model_a, names) = trained_model();
        let (model_b, _) = trained_model();
        let agg = AggregationConfig {
            window_s: 30.0,
            min_points: 2,
            ..AggregationConfig::default()
        };
        let mut immediate = OnlinePredictor::new(model_a, &names, agg);
        let mut deferred = OnlinePredictor::new(model_b, &names, agg);

        let feed: Vec<Datapoint> = (0..300)
            .map(|i| {
                let mut d = Datapoint {
                    t_gen: i as f64 * 3.0,
                    values: [1.0; 14],
                };
                d.set(FeatureId::SwapUsed, (i as f64 * 1.7).sin().abs() * 400.0);
                d
            })
            .collect();

        let mut want = Vec::new();
        for d in &feed {
            if let Some(e) = immediate.push(*d) {
                want.push(e);
            }
        }

        // Deferred side: accumulate rows across an arbitrary batch split
        // and score each batch with one predict_many call.
        let (m2, _) = trained_model();
        let mut got = Vec::new();
        let mut rows = Vec::new();
        let mut out = Vec::new();
        for (i, d) in feed.iter().enumerate() {
            deferred.push_deferred(*d, &mut rows);
            if i % 17 == 16 || i == feed.len() - 1 {
                out.clear();
                let n = predict_many(m2.as_ref(), deferred.width(), &mut rows, &mut out).unwrap();
                assert_eq!(n, out.len());
                assert!(rows.is_empty(), "flat buffer handed back cleared");
                for &e in &out {
                    deferred.record_estimate(e);
                    got.push(e);
                }
            }
        }

        assert!(want.len() >= 8, "only {} estimates", want.len());
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits(), "estimate drifted: {w} vs {g}");
        }
        assert_eq!(immediate.last_estimate(), deferred.last_estimate());
    }

    #[test]
    fn predict_many_empty_batch_is_a_noop() {
        let (model, _) = trained_model();
        let mut rows = Vec::new();
        let mut out = vec![42.0];
        let n = predict_many(model.as_ref(), 2, &mut rows, &mut out).unwrap();
        assert_eq!(n, 0);
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "unknown aggregated column")]
    fn unknown_column_panics() {
        let (model, _) = trained_model();
        OnlinePredictor::new(
            model,
            &["bogus".to_string(), "swap_used".to_string()],
            AggregationConfig::default(),
        );
    }
}
