//! Incremental knowledge-base construction (§III-A).
//!
//! "Determining the size of the dataset to be collected in this phase
//! could require a long period of training time. F2PM can support this
//! task incrementally, via the set of metrics that allow the user to
//! evaluate the accuracy of the produced models. If the estimated accuracy
//! is not sufficient, further system runs can be executed to collect new
//! data into the training set, and to produce new models."
//!
//! [`IncrementalTrainer`] is that loop: collect a batch of monitored runs,
//! estimate accuracy by **leave-one-run-out** cross-validation (the honest
//! estimate — a deployed model always faces runs it never saw), and keep
//! collecting until the estimate reaches the user's target or the budget
//! runs out.

use crate::config::F2pmConfig;
use f2pm_features::{RunTaggedDataset, SlidingAggregator};
use f2pm_ml::{evaluate_one, Regressor};
use f2pm_sim::{Campaign, Run};

/// Stopping rule and budget for the incremental loop.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Pipeline configuration (aggregation, S-MAE threshold, simulator).
    pub base: F2pmConfig,
    /// Monitored runs collected per iteration.
    pub batch_runs: usize,
    /// Maximum iterations before giving up.
    pub max_batches: usize,
    /// Stop once the leave-one-run-out S-MAE estimate drops to this (s).
    pub target_smae: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            base: F2pmConfig::default(),
            batch_runs: 2,
            max_batches: 6,
            target_smae: 120.0,
        }
    }
}

/// Accuracy estimate after one iteration.
#[derive(Debug, Clone, Copy)]
pub struct IterationReport {
    /// Total runs collected so far.
    pub runs: usize,
    /// Aggregated (labeled) datapoints so far.
    pub datapoints: usize,
    /// Leave-one-run-out S-MAE estimate (s).
    pub louo_smae: f64,
    /// Standard deviation of the per-fold S-MAE.
    pub louo_std: f64,
}

/// Outcome of the whole loop.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// One report per iteration, chronological.
    pub iterations: Vec<IterationReport>,
    /// Whether the target was reached within the budget.
    pub reached_target: bool,
    /// Every collected run (for final model training).
    pub runs: Vec<Run>,
}

impl IncrementalOutcome {
    /// The final accuracy estimate.
    pub fn final_smae(&self) -> Option<f64> {
        self.iterations.last().map(|i| i.louo_smae)
    }
}

/// Drives the collect → estimate → decide loop.
pub struct IncrementalTrainer {
    cfg: IncrementalConfig,
    seed: u64,
}

impl IncrementalTrainer {
    /// Create with a master seed.
    pub fn new(cfg: IncrementalConfig, seed: u64) -> Self {
        assert!(cfg.batch_runs >= 1, "need at least one run per batch");
        assert!(cfg.max_batches >= 1, "need at least one batch");
        IncrementalTrainer { cfg, seed }
    }

    /// Run the loop with the given method as the accuracy probe.
    pub fn run(&self, probe: &dyn Regressor) -> IncrementalOutcome {
        let mut campaign_cfg = self.cfg.base.campaign.clone();
        campaign_cfg.runs = self.cfg.batch_runs;

        let mut runs: Vec<Run> = Vec::new();
        let mut iterations = Vec::new();
        let mut reached = false;
        // Unbounded sliding cache: each run is aggregated exactly once, on
        // the batch that collected it, instead of the whole accumulated
        // history being re-aggregated every iteration (which made the
        // aggregation cost of the loop quadratic in the batch count).
        let mut cache = SlidingAggregator::new(self.cfg.base.aggregation, 0);

        for batch in 0..self.cfg.max_batches {
            // Collect one more batch (each batch gets its own derived seed
            // so runs never repeat).
            let campaign =
                Campaign::new(campaign_cfg.clone(), self.seed.wrapping_add(batch as u64));
            for r in campaign.run_all() {
                let data = f2pm_monitor::RunData {
                    datapoints: r
                        .samples
                        .iter()
                        .map(f2pm_monitor::history::sample_to_datapoint)
                        .collect(),
                    fail_time: r.fail_time,
                };
                cache.push_run(&data);
                runs.push(r);
            }

            // Estimate accuracy by leave-one-run-out over the cached
            // aggregations (the cache stores only labeled points, which is
            // exactly what `from_run_points_with` keeps anyway).
            let per_run: Vec<_> = cache.runs().map(|r| r.points.clone()).collect();
            let tagged =
                RunTaggedDataset::from_run_points_with(&per_run, &self.cfg.base.aggregation);

            let mut fold_smaes = Vec::new();
            for (_, train, valid) in tagged.leave_one_run_out() {
                if let Ok(rep) = evaluate_one(probe, &train, &valid, self.cfg.base.smae) {
                    fold_smaes.push(rep.metrics.smae);
                }
            }
            let (mean, std) = if fold_smaes.is_empty() {
                (f64::INFINITY, 0.0)
            } else {
                let m = fold_smaes.iter().sum::<f64>() / fold_smaes.len() as f64;
                let v = fold_smaes.iter().map(|s| (s - m) * (s - m)).sum::<f64>()
                    / fold_smaes.len() as f64;
                (m, v.sqrt())
            };

            iterations.push(IterationReport {
                runs: runs.len(),
                datapoints: tagged.dataset.len(),
                louo_smae: mean,
                louo_std: std,
            });

            if mean <= self.cfg.target_smae {
                reached = true;
                break;
            }
        }

        IncrementalOutcome {
            iterations,
            reached_target: reached,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_ml::{RepTree, RepTreeParams};

    fn quick_incremental(target: f64, max_batches: usize) -> IncrementalConfig {
        IncrementalConfig {
            base: F2pmConfig::quick(),
            batch_runs: 2,
            max_batches,
            target_smae: target,
        }
    }

    #[test]
    fn loop_accumulates_runs_and_reports() {
        let cfg = quick_incremental(1.0, 3); // unreachable target → full budget
        let trainer = IncrementalTrainer::new(cfg, 5);
        let probe = RepTree::new(RepTreeParams::default());
        let out = trainer.run(&probe);
        assert_eq!(out.iterations.len(), 3);
        assert!(!out.reached_target);
        assert_eq!(out.runs.len(), 6);
        // Runs accumulate monotonically across iterations.
        for w in out.iterations.windows(2) {
            assert!(w[1].runs > w[0].runs);
            assert!(w[1].datapoints > w[0].datapoints);
        }
        assert!(out.final_smae().unwrap().is_finite());
    }

    #[test]
    fn loop_stops_early_on_generous_target() {
        let cfg = quick_incremental(1e9, 5); // trivially reachable
        let trainer = IncrementalTrainer::new(cfg, 6);
        let probe = RepTree::new(RepTreeParams::default());
        let out = trainer.run(&probe);
        assert!(out.reached_target);
        assert_eq!(out.iterations.len(), 1, "should stop after the first batch");
        assert_eq!(out.runs.len(), 2);
    }

    #[test]
    fn estimates_are_deterministic() {
        let cfg = quick_incremental(1.0, 2);
        let probe = RepTree::new(RepTreeParams::default());
        let a = IncrementalTrainer::new(cfg.clone(), 9).run(&probe);
        let b = IncrementalTrainer::new(cfg, 9).run(&probe);
        assert_eq!(a.iterations.len(), b.iterations.len());
        for (x, y) in a.iterations.iter().zip(&b.iterations) {
            assert_eq!(x.louo_smae, y.louo_smae);
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_batch_runs_panics() {
        let mut cfg = quick_incremental(1.0, 1);
        cfg.batch_runs = 0;
        IncrementalTrainer::new(cfg, 1);
    }
}
