//! Proactive software rejuvenation driven by RTTF predictions.
//!
//! The use case that motivates F2PM (§I): instead of letting the
//! application crash and rebooting reactively, restart ("rejuvenate") it
//! proactively when the predicted RTTF falls below a safety margin `T`.
//! The S-MAE metric exists precisely because a prediction error below `T`
//! is then harmless.
//!
//! [`ProactiveRejuvenator`] closes the loop against the simulated testbed:
//! it monitors a live simulation through an [`OnlinePredictor`], restarts
//! the guest when the policy fires, and accounts the downtime of planned
//! restarts vs. crashes — letting the experiments compare proactive and
//! reactive operation.

use crate::predictor::OnlinePredictor;
use f2pm_monitor::{Collector, SimCollector};
use f2pm_sim::{SimConfig, Simulation};

/// When to trigger a proactive restart.
#[derive(Debug, Clone, Copy)]
pub struct RejuvenationPolicy {
    /// Restart when predicted RTTF ≤ this threshold (s).
    pub rttf_threshold_s: f64,
    /// Require this many consecutive below-threshold estimates before
    /// firing (debounce against single-window noise).
    pub consecutive_hits: usize,
    /// Downtime of a *planned* restart (s) — much cheaper than crash
    /// recovery, which also loses in-flight state.
    pub planned_restart_s: f64,
    /// Downtime of an *unplanned* crash recovery (s).
    pub crash_recovery_s: f64,
    /// Whether a planned restart also re-copies the database files
    /// (defragmenting the layout). A plain application restart does not —
    /// fragmentation is the anomaly class rejuvenation alone cannot clear,
    /// so without this the guest's lives get progressively shorter when
    /// fragmentation anomalies are enabled.
    pub defragment_on_restart: bool,
}

impl Default for RejuvenationPolicy {
    fn default() -> Self {
        RejuvenationPolicy {
            rttf_threshold_s: 180.0,
            consecutive_hits: 2,
            planned_restart_s: 30.0,
            crash_recovery_s: 300.0,
            defragment_on_restart: true,
        }
    }
}

/// Outcome of operating the testbed under a policy for a given horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejuvenationOutcome {
    /// Proactive restarts performed.
    pub planned_restarts: usize,
    /// Crashes that still slipped through.
    pub crashes: usize,
    /// Total downtime charged (s).
    pub downtime_s: f64,
    /// Total operating horizon (s).
    pub horizon_s: f64,
    /// Requests served across all lives of the system.
    pub completed_requests: u64,
}

impl RejuvenationOutcome {
    /// Availability over the horizon, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        1.0 - (self.downtime_s / self.horizon_s).clamp(0.0, 1.0)
    }
}

/// Drives simulated guests under a prediction-based restart policy.
pub struct ProactiveRejuvenator {
    sim_cfg: SimConfig,
    policy: RejuvenationPolicy,
}

impl ProactiveRejuvenator {
    /// Create for a testbed configuration and policy.
    pub fn new(sim_cfg: SimConfig, policy: RejuvenationPolicy) -> Self {
        ProactiveRejuvenator { sim_cfg, policy }
    }

    /// Operate the system proactively for `horizon_s` of simulated time,
    /// restarting whenever the predictor (reset after each life) says the
    /// end is near. `seed` seeds each consecutive life deterministically.
    pub fn run_proactive(
        &self,
        predictor: &mut OnlinePredictor,
        horizon_s: f64,
        seed: u64,
    ) -> RejuvenationOutcome {
        let mut elapsed = 0.0;
        let mut life = 0u64;
        let mut planned = 0usize;
        let mut crashes = 0usize;
        let mut downtime = 0.0;
        let mut completed = 0u64;
        let mut carry_frag: Option<f64> = None;

        while elapsed < horizon_s {
            let mut sim = Simulation::new(self.sim_cfg.clone(), seed.wrapping_add(life));
            if let Some(f) = carry_frag {
                sim.set_fragmentation(f);
            }
            let mut collector = SimCollector::new(sim, Default::default(), seed ^ life);
            predictor.reset();
            let mut hits = 0usize;

            let life_result = loop {
                match collector.collect() {
                    None => break LifeEnd::Crash,
                    Some(d) => {
                        let t = d.t_gen;
                        if elapsed + t >= horizon_s {
                            break LifeEnd::HorizonReached;
                        }
                        if let Some(est) = predictor.push(d) {
                            if est <= self.policy.rttf_threshold_s {
                                hits += 1;
                                if hits >= self.policy.consecutive_hits {
                                    break LifeEnd::Planned(t);
                                }
                            } else {
                                hits = 0;
                            }
                        }
                    }
                }
            };

            let sim = collector.into_simulation();
            completed += sim.completed_requests();
            // Restarts clear memory/threads/locks but not the disk layout,
            // unless the policy pays for a file re-copy.
            carry_frag = if self.policy.defragment_on_restart {
                None
            } else {
                Some(sim.fragmentation())
            };
            match life_result {
                LifeEnd::Crash => {
                    crashes += 1;
                    let t = sim.failed_at().unwrap_or(0.0);
                    elapsed += t + self.policy.crash_recovery_s;
                    downtime += self.policy.crash_recovery_s;
                }
                LifeEnd::Planned(t) => {
                    planned += 1;
                    elapsed += t + self.policy.planned_restart_s;
                    downtime += self.policy.planned_restart_s;
                }
                LifeEnd::HorizonReached => break,
            }
            life += 1;
        }

        RejuvenationOutcome {
            planned_restarts: planned,
            crashes,
            downtime_s: downtime,
            horizon_s,
            completed_requests: completed,
        }
    }

    /// Reactive baseline: run each life to its crash, pay crash recovery.
    pub fn run_reactive(&self, horizon_s: f64, seed: u64) -> RejuvenationOutcome {
        let mut elapsed = 0.0;
        let mut life = 0u64;
        let mut crashes = 0usize;
        let mut downtime = 0.0;
        let mut completed = 0u64;

        while elapsed < horizon_s {
            let mut sim = Simulation::new(self.sim_cfg.clone(), seed.wrapping_add(life));
            let outcome = sim.run_to_failure(horizon_s - elapsed);
            completed += outcome.completed_requests;
            if outcome.failed {
                crashes += 1;
                elapsed += outcome.fail_time + self.policy.crash_recovery_s;
                downtime += self.policy.crash_recovery_s;
            } else {
                elapsed = horizon_s;
            }
            life += 1;
        }

        RejuvenationOutcome {
            planned_restarts: 0,
            crashes,
            downtime_s: downtime,
            horizon_s,
            completed_requests: completed,
        }
    }
}

enum LifeEnd {
    Crash,
    Planned(f64),
    HorizonReached,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::F2pmConfig;
    use crate::workflow::run_workflow;

    /// Train a model on the quick campaign, then operate proactively.
    #[test]
    fn proactive_beats_reactive_availability() {
        let cfg = F2pmConfig::quick();
        let report = run_workflow(&cfg, 11).expect("enough data");
        let all = report.all_parameters();
        let best = all
            .by_name("rep_tree")
            .or_else(|| all.best_by_smae())
            .expect("model");

        // Rebuild a fresh model of the same method for ownership (reports
        // hold theirs); rep_tree refits fast.
        let policy = RejuvenationPolicy::default();
        let rejuvenator = ProactiveRejuvenator::new(cfg.campaign.sim.clone(), policy);

        // Reuse the fitted model via the report (move it out through a
        // re-fit: train a fresh identical model on the same data is overkill
        // here — instead wrap the boxed model directly).
        let report2 = run_workflow(&cfg, 11).expect("enough data");
        let mut variants = report2.variants;
        let variant = variants.remove(0);
        let idx = variant
            .reports
            .into_iter()
            .filter_map(|r| r.ok())
            .find(|r| r.name == best.name)
            .expect("same method");
        let mut predictor = OnlinePredictor::new(idx.model, &variant.columns, cfg.aggregation);

        let horizon = 6000.0;
        let proactive = rejuvenator.run_proactive(&mut predictor, horizon, 1234);
        let reactive = rejuvenator.run_reactive(horizon, 1234);

        assert!(proactive.planned_restarts > 0, "policy never fired");
        assert!(
            proactive.crashes <= reactive.crashes,
            "proactive {} vs reactive {} crashes",
            proactive.crashes,
            reactive.crashes
        );
        assert!(
            proactive.availability() > reactive.availability(),
            "proactive {:.4} vs reactive {:.4}",
            proactive.availability(),
            reactive.availability()
        );
    }

    #[test]
    fn fragmentation_carries_across_restarts_without_defrag() {
        use f2pm_sim::{AnomalyConfig, SimConfig};
        // Enable fragmentation anomalies; without defrag the layout state
        // accumulates across lives, so later lives die sooner.
        let sim_cfg = SimConfig {
            anomaly: AnomalyConfig {
                frag_delta_per_home: (0.0004, 0.0008),
                ..AnomalyConfig::all_classes()
            },
            ..SimConfig::default()
        };
        let cfg = F2pmConfig::quick();
        let report = run_workflow(&cfg, 21).expect("enough data");
        let mut variants = report.variants;
        let variant = variants.remove(0);
        let columns = variant.columns.clone();
        let rep = variant
            .reports
            .into_iter()
            .filter_map(|r| r.ok())
            .find(|r| r.name == "rep_tree")
            .expect("model");
        let mut predictor = OnlinePredictor::new(rep.model, &columns, cfg.aggregation);

        let horizon = 5000.0;
        let no_defrag = ProactiveRejuvenator::new(
            sim_cfg.clone(),
            RejuvenationPolicy {
                defragment_on_restart: false,
                ..RejuvenationPolicy::default()
            },
        )
        .run_proactive(&mut predictor, horizon, 777);

        predictor.reset();
        let with_defrag = ProactiveRejuvenator::new(sim_cfg, RejuvenationPolicy::default())
            .run_proactive(&mut predictor, horizon, 777);

        // Without defragmentation lives get shorter, so the same horizon
        // needs at least as many interventions (restarts + crashes).
        let events = |o: &RejuvenationOutcome| o.planned_restarts + o.crashes;
        assert!(
            events(&no_defrag) >= events(&with_defrag),
            "no-defrag {:?} vs defrag {:?}",
            (no_defrag.planned_restarts, no_defrag.crashes),
            (with_defrag.planned_restarts, with_defrag.crashes)
        );
    }

    #[test]
    fn outcome_availability_math() {
        let o = RejuvenationOutcome {
            planned_restarts: 2,
            crashes: 1,
            downtime_s: 100.0,
            horizon_s: 1000.0,
            completed_requests: 0,
        };
        assert!((o.availability() - 0.9).abs() < 1e-12);
    }
}
