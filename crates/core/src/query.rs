//! Vectorized offline re-scoring over a columnar history (DESIGN.md §13.4).
//!
//! [`run_query`] scans a [`ColumnStore`] chunk-at-a-time: zone maps prune
//! chunks the filter cannot match, surviving chunks are scored through
//! [`Model::predict_columns`] (zero-copy when every row matches, compacted
//! otherwise), and errors stream into per-cohort accumulators — the scan
//! never materializes more than one chunk of rows per worker, so a
//! multi-gigabyte history re-scores in constant memory.
//!
//! Chunks fan out over the [`f2pm_linalg::pool_threads`] pool, but each
//! worker keeps its partial results *per chunk* and the final merge walks
//! chunks in index order — the report is bit-identical for any worker
//! count (including `F2PM_THREADS=1`).

use crate::F2pmError;
use f2pm_features::{
    ColumnSlice, ColumnStore, FeatureChunk, COL_HOST_ID, COL_RTTF, COL_RUN_ID, COL_T,
};
use f2pm_ml::{Model, SMaeThreshold};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Row predicate for a query: every set field must hold.
///
/// The default matches everything — that is the bulk re-scoring fast
/// path, where chunks flow to the model with no mask scan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryFilter {
    /// Keep only rows of this run.
    pub run_id: Option<u64>,
    /// Keep only rows of this host.
    pub host_id: Option<u64>,
    /// Keep only rows with `t >= t_min`.
    pub t_min: Option<f64>,
    /// Keep only rows with `t <= t_max`.
    pub t_max: Option<f64>,
}

impl QueryFilter {
    /// True when no predicate is set (every row matches).
    pub fn is_match_all(&self) -> bool {
        *self == QueryFilter::default()
    }
}

/// Which key column groups the per-cohort error breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cohort {
    /// Group by run (one failure trajectory per cohort).
    Run,
    /// Group by host.
    Host,
}

impl Cohort {
    /// The metadata column carrying the cohort key.
    pub fn key_column(&self) -> &'static str {
        match self {
            Cohort::Run => COL_RUN_ID,
            Cohort::Host => COL_HOST_ID,
        }
    }
}

/// Streaming error accumulator: the same per-observation operations as
/// [`f2pm_ml::Metrics::compute`] — so a cohort's MAE / S-MAE / max-AE
/// match a batch computation over its gathered rows up to summation
/// order (partial sums merge per block and per chunk, an ULP-level
/// difference). RAE is *not* streamable (Eq. 6 needs the cohort's mean
/// observation first), so query reports omit it.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    n: usize,
    abs_sum: f64,
    soft_sum: f64,
    max_ae: f64,
    rttf_sum: f64,
}

impl Acc {
    /// Accumulate one equal-key block of rows: per observation,
    /// `e = |predicted − actual|` feeds the absolute sum, the running
    /// maximum, and (when `e` is at least [`SMaeThreshold::tolerance`])
    /// the soft sum. The block runs four independent partial chains with
    /// branchless soft-sum selection so it pipelines (a serial `abs_sum`
    /// chain was the scan's second-largest cost); the partials then merge
    /// in lane order. Like the cross-chunk merge, that changes
    /// floating-point association only — never the set of per-row
    /// operations — and stays inside the documented ULP-level tolerance.
    fn add_block(&mut self, predicted: &[f64], actual: &[f64], smae: SMaeThreshold) {
        debug_assert_eq!(predicted.len(), actual.len());
        match smae {
            SMaeThreshold::Absolute(t) => self.add_block_with(predicted, actual, |_| t),
            SMaeThreshold::Relative(f) => {
                self.add_block_with(predicted, actual, |y: f64| f * y.abs())
            }
        }
    }

    #[inline]
    fn add_block_with(&mut self, predicted: &[f64], actual: &[f64], tol: impl Fn(f64) -> f64) {
        let mut abs = [0.0f64; 4];
        let mut soft = [0.0f64; 4];
        let mut rttf = [0.0f64; 4];
        let mut mx = [0.0f64; 4];
        let mut p4 = predicted.chunks_exact(4);
        let mut y4 = actual.chunks_exact(4);
        for (p, y) in (&mut p4).zip(&mut y4) {
            for l in 0..4 {
                let e = (p[l] - y[l]).abs();
                abs[l] += e;
                mx[l] = mx[l].max(e);
                soft[l] += if e >= tol(y[l]) { e } else { 0.0 };
                rttf[l] += y[l];
            }
        }
        for (&p, &y) in p4.remainder().iter().zip(y4.remainder()) {
            let e = (p - y).abs();
            abs[0] += e;
            mx[0] = mx[0].max(e);
            soft[0] += if e >= tol(y) { e } else { 0.0 };
            rttf[0] += y;
        }
        self.n += predicted.len();
        self.abs_sum += (abs[0] + abs[1]) + (abs[2] + abs[3]);
        self.soft_sum += (soft[0] + soft[1]) + (soft[2] + soft[3]);
        self.max_ae = self.max_ae.max(mx[0].max(mx[1]).max(mx[2].max(mx[3])));
        self.rttf_sum += (rttf[0] + rttf[1]) + (rttf[2] + rttf[3]);
    }

    fn merge(&mut self, other: &Acc) {
        self.n += other.n;
        self.abs_sum += other.abs_sum;
        self.soft_sum += other.soft_sum;
        self.max_ae = self.max_ae.max(other.max_ae);
        self.rttf_sum += other.rttf_sum;
    }

    fn stats(&self) -> CohortStats {
        let n = self.n;
        let denom = if n > 0 { n as f64 } else { f64::NAN };
        CohortStats {
            n,
            mae: self.abs_sum / denom,
            smae: self.soft_sum / denom,
            max_ae: if n > 0 { self.max_ae } else { f64::NAN },
            mean_rttf: self.rttf_sum / denom,
        }
    }
}

/// Aggregated prediction error over one cohort's matched rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortStats {
    /// Matched rows in the cohort.
    pub n: usize,
    /// Mean absolute error (s).
    pub mae: f64,
    /// Soft-MAE (s) under the query's threshold.
    pub smae: f64,
    /// Maximum absolute error (s).
    pub max_ae: f64,
    /// Mean observed RTTF (s) — scale context for the errors.
    pub mean_rttf: f64,
}

/// The result of one [`run_query`] scan.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// How cohorts were keyed.
    pub cohort: Cohort,
    /// Per-cohort stats, sorted by key. Cohorts with no matched rows are
    /// omitted.
    pub cohorts: Vec<(u64, CohortStats)>,
    /// Stats over every matched row.
    pub total: CohortStats,
    /// Rows in the store.
    pub rows_total: usize,
    /// Rows in chunks that survived zone pruning.
    pub rows_scanned: usize,
    /// Rows that matched the filter (and were scored).
    pub rows_matched: usize,
    /// Chunks scored.
    pub chunks_scanned: usize,
    /// Chunks skipped entirely by zone maps.
    pub chunks_pruned: usize,
    /// Wall-clock scan time (s).
    pub wall_s: f64,
    /// Scanned-row throughput (rows in surviving chunks / wall seconds).
    pub rows_per_s: f64,
}

/// Column layout resolved once per query.
struct Layout {
    run: usize,
    host: usize,
    t: usize,
    rttf: usize,
    features: Vec<usize>,
}

fn resolve_layout(store: &ColumnStore, model: &dyn Model) -> Result<Layout, F2pmError> {
    let need = |name: &'static str| {
        store
            .column_index(name)
            .ok_or_else(|| F2pmError::InvalidConfig {
                what: format!("columnar store has no {name:?} column"),
            })
    };
    let layout = Layout {
        run: need(COL_RUN_ID)?,
        host: need(COL_HOST_ID)?,
        t: need(COL_T)?,
        rttf: need(COL_RTTF)?,
        features: store.feature_column_indices(),
    };
    if layout.features.len() != model.width() {
        return Err(F2pmError::Ml(f2pm_ml::MlError::WidthMismatch {
            expected: model.width(),
            got: layout.features.len(),
        }));
    }
    Ok(layout)
}

/// One worker's results for one chunk, merged later in chunk order.
struct ChunkPartial {
    rows_scanned: usize,
    rows_matched: usize,
    /// `(key, acc)` in first-seen order within the chunk.
    cohorts: Vec<(u64, Acc)>,
    total: Acc,
}

/// Re-score a columnar history against `model`, filtered and grouped.
///
/// Zone maps skip chunks the filter cannot match; surviving chunks are
/// scored via [`Model::predict_columns`] and streamed into per-cohort
/// [`CohortStats`]. Memory use is bounded by one chunk per worker
/// regardless of store size.
pub fn run_query(
    store: &ColumnStore,
    model: &dyn Model,
    filter: &QueryFilter,
    cohort: Cohort,
    smae: SMaeThreshold,
) -> Result<QueryReport, F2pmError> {
    let started = std::time::Instant::now();
    let layout = resolve_layout(store, model)?;
    let key_col = match cohort {
        Cohort::Run => layout.run,
        Cohort::Host => layout.host,
    };

    let n_chunks = store.n_chunks();
    // One slot per chunk; a chunk's result lands in its own slot, so the
    // merge below can walk chunk order no matter which worker ran it.
    let mut slots: Vec<std::sync::Mutex<Option<Result<ChunkPartial, f2pm_ml::MlError>>>> =
        Vec::new();
    slots.resize_with(n_chunks, || std::sync::Mutex::new(None));
    // Zone-map pruning pass: pure min/max comparisons, so it runs serially
    // up front (n_chunks comparisons are noise next to scoring).
    let t_lo = filter.t_min.unwrap_or(f64::NEG_INFINITY);
    let t_hi = filter.t_max.unwrap_or(f64::INFINITY);
    let live: Vec<usize> = (0..n_chunks)
        .filter(|&c| {
            let chunk = store.chunk(c);
            filter
                .run_id
                .is_none_or(|id| chunk.zone(layout.run).contains(id as f64))
                && filter
                    .host_id
                    .is_none_or(|id| chunk.zone(layout.host).contains(id as f64))
                && ((filter.t_min.is_none() && filter.t_max.is_none())
                    || chunk.zone(layout.t).overlaps(t_lo, t_hi))
        })
        .collect();

    let scan_chunk = |c: usize,
                      scratch: &mut Vec<f64>,
                      out: &mut Vec<f64>,
                      compact: &mut Vec<Vec<f64>>,
                      keys: &mut Vec<f64>,
                      actuals: &mut Vec<f64>|
     -> Result<ChunkPartial, f2pm_ml::MlError> {
        let chunk = store.chunk(c);
        let n = chunk.len();
        let key_slice = chunk.col(key_col);
        let rttf_slice = chunk.col(layout.rttf);

        // Row mask. With no predicates every row matches and the chunk
        // goes to the model zero-copy.
        let full = filter.is_match_all() || {
            let run = chunk.col(layout.run);
            let host = chunk.col(layout.host);
            let t = chunk.col(layout.t);
            keys.clear();
            actuals.clear();
            for col in compact.iter_mut() {
                col.clear();
            }
            let mut all = true;
            for i in 0..n {
                let ok = filter.run_id.is_none_or(|id| run.get(i) == id as f64)
                    && filter.host_id.is_none_or(|id| host.get(i) == id as f64)
                    && t.get(i) >= t_lo
                    && t.get(i) <= t_hi;
                if ok {
                    keys.push(key_slice.get(i));
                    actuals.push(rttf_slice.get(i));
                    for (dst, &j) in compact.iter_mut().zip(&layout.features) {
                        dst.push(chunk.col(j).get(i));
                    }
                } else {
                    all = false;
                }
            }
            all
        };

        let mut partial = ChunkPartial {
            rows_scanned: n,
            rows_matched: 0,
            cohorts: Vec::new(),
            total: Acc::default(),
        };
        let matched = if full { n } else { keys.len() };
        partial.rows_matched = matched;
        if matched == 0 {
            return Ok(partial);
        }

        // Length-only resize: predict_columns overwrites every slot, so
        // don't memset a full-size chunk buffer 500 times per scan.
        if out.len() != matched {
            out.resize(matched, 0.0);
        }
        if full {
            let features = chunk.features(&layout.features);
            model.predict_columns(&features, scratch, out)?;
        } else {
            let cols: Vec<ColumnSlice<'_>> = compact.iter().map(|c| ColumnSlice::F64(c)).collect();
            let features = FeatureChunk::new(matched, cols);
            model.predict_columns(&features, scratch, out)?;
        }

        // Accumulate block-at-a-time: rows arrive grouped by run (history
        // order), so each maximal equal-key block costs one cohort lookup
        // and a tight add loop over plain `&[f64]` slices — no per-row
        // enum dispatch or map search (which measured ~3x the cost of the
        // scoring axpy itself before this restructuring).
        let (key_vals, rttf_vals): (&[f64], &[f64]) = if full {
            match (key_slice, rttf_slice) {
                (ColumnSlice::F64(k), ColumnSlice::F64(a)) => (k, a),
                _ => {
                    keys.clear();
                    actuals.clear();
                    for i in 0..n {
                        keys.push(key_slice.get(i));
                        actuals.push(rttf_slice.get(i));
                    }
                    (&keys[..], &actuals[..])
                }
            }
        } else {
            (&keys[..], &actuals[..])
        };
        let mut i = 0;
        while i < matched {
            let key_f = key_vals[i];
            let mut j = i + 1;
            while j < matched && key_vals[j] == key_f {
                j += 1;
            }
            let key = key_f as u64;
            let idx = match partial.cohorts.iter().position(|(k, _)| *k == key) {
                Some(p) => p,
                None => {
                    partial.cohorts.push((key, Acc::default()));
                    partial.cohorts.len() - 1
                }
            };
            let acc = &mut partial.cohorts[idx].1;
            acc.add_block(&out[i..j], &rttf_vals[i..j], smae);
            i = j;
        }
        // The chunk total merges its cohort partials (same association
        // class as the cross-chunk merge) instead of re-adding every row.
        for (_, acc) in &partial.cohorts {
            partial.total.merge(acc);
        }
        Ok(partial)
    };

    let workers = f2pm_linalg::pool_threads().min(live.len()).max(1);
    let n_features = layout.features.len();
    if workers <= 1 {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let mut compact: Vec<Vec<f64>> = vec![Vec::new(); n_features];
        let mut keys = Vec::new();
        let mut actuals = Vec::new();
        for &c in &live {
            *slots[c].lock().unwrap() = Some(scan_chunk(
                c,
                &mut scratch,
                &mut out,
                &mut compact,
                &mut keys,
                &mut actuals,
            ));
        }
    } else {
        let next = AtomicUsize::new(0);
        let next = &next;
        let live = &live;
        let scan_chunk = &scan_chunk;
        let slots = &slots;
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move |_| {
                    let mut scratch = Vec::new();
                    let mut out = Vec::new();
                    let mut compact: Vec<Vec<f64>> = vec![Vec::new(); n_features];
                    let mut keys = Vec::new();
                    let mut actuals = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= live.len() {
                            break;
                        }
                        let c = live[i];
                        let r = scan_chunk(
                            c,
                            &mut scratch,
                            &mut out,
                            &mut compact,
                            &mut keys,
                            &mut actuals,
                        );
                        *slots[c].lock().unwrap() = Some(r);
                    }
                });
            }
        })
        .expect("query scan scope");
    }

    // Deterministic merge: chunk order, regardless of which worker ran
    // which chunk or in what sequence they finished.
    let mut cohorts: Vec<(u64, Acc)> = Vec::new();
    let mut total = Acc::default();
    let mut rows_scanned = 0usize;
    let mut rows_matched = 0usize;
    for slot in slots.into_iter().filter_map(|m| m.into_inner().unwrap()) {
        let partial = slot.map_err(F2pmError::from)?;
        rows_scanned += partial.rows_scanned;
        rows_matched += partial.rows_matched;
        total.merge(&partial.total);
        // `cohorts` stays key-sorted: histories append runs in id order,
        // so a new key is almost always an append — and a linear scan
        // here measured quadratic (489 chunks x 5000 run cohorts).
        for (key, acc) in &partial.cohorts {
            match cohorts.binary_search_by_key(key, |(k, _)| *k) {
                Ok(pos) => cohorts[pos].1.merge(acc),
                Err(pos) => cohorts.insert(pos, (*key, *acc)),
            }
        }
    }

    let wall_s = started.elapsed().as_secs_f64();
    Ok(QueryReport {
        cohort,
        cohorts: cohorts
            .into_iter()
            .map(|(k, acc)| (k, acc.stats()))
            .collect(),
        total: total.stats(),
        rows_total: store.n_rows(),
        rows_scanned,
        rows_matched,
        chunks_scanned: live.len(),
        chunks_pruned: n_chunks - live.len(),
        wall_s,
        rows_per_s: if wall_s > 0.0 {
            rows_scanned as f64 / wall_s
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::{ColumnStoreBuilder, ColumnType};
    use f2pm_ml::linreg::LinearModel;
    use f2pm_ml::Metrics;

    const WIDTH: usize = 3;

    /// Streamed means merge per-chunk partial sums, so they can differ
    /// from a flat single-pass sum by association order — a few ULPs at
    /// most. Maxima are order-insensitive and stay `==`.
    fn close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "{a} vs {b} differ beyond merge-order tolerance"
        );
    }

    /// 3 runs × uneven lengths over 2 hosts, chunk_rows=8 so zone pruning
    /// and partial chunks both happen.
    fn store() -> ColumnStore {
        let mut b = ColumnStoreBuilder::with_chunk_rows(
            &[
                (COL_RUN_ID, ColumnType::F64),
                (COL_HOST_ID, ColumnType::F64),
                (COL_T, ColumnType::F64),
                (COL_RTTF, ColumnType::F64),
                ("mem", ColumnType::F32),
                ("swap", ColumnType::F32),
                ("slope", ColumnType::F32),
            ],
            8,
        );
        for run in 0u64..3 {
            let len = 10 + run as usize * 7;
            for i in 0..len {
                let t = i as f64 * 5.0;
                b.push_row(&[
                    run as f64,
                    (run % 2) as f64,
                    t,
                    len as f64 * 5.0 - t,
                    (i as f64 * 0.61 + run as f64).sin() * 100.0,
                    i as f64 * 3.0,
                    ((i * 13 + run as usize) % 7) as f64 - 3.0,
                ]);
            }
        }
        b.finish().unwrap()
    }

    fn model() -> LinearModel {
        LinearModel {
            intercept: 120.0,
            coefficients: vec![-0.4, 1.3, 7.5],
        }
    }

    /// Reference implementation: materialized rows + predict_row.
    fn brute_force(
        store: &ColumnStore,
        model: &LinearModel,
        filter: &QueryFilter,
    ) -> (Vec<f64>, Vec<f64>) {
        let run = store.column_index(COL_RUN_ID).unwrap();
        let host = store.column_index(COL_HOST_ID).unwrap();
        let t_col = store.column_index(COL_T).unwrap();
        let rttf = store.column_index(COL_RTTF).unwrap();
        let features = store.feature_column_indices();
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for i in 0..store.n_rows() {
            let ok = filter
                .run_id
                .is_none_or(|id| store.column(run).data.get(i) == id as f64)
                && filter
                    .host_id
                    .is_none_or(|id| store.column(host).data.get(i) == id as f64)
                && store.column(t_col).data.get(i) >= filter.t_min.unwrap_or(f64::NEG_INFINITY)
                && store.column(t_col).data.get(i) <= filter.t_max.unwrap_or(f64::INFINITY);
            if !ok {
                continue;
            }
            let row: Vec<f64> = features
                .iter()
                .map(|&j| store.column(j).data.get(i))
                .collect();
            preds.push(model.predict_row(&row));
            actuals.push(store.column(rttf).data.get(i));
        }
        (preds, actuals)
    }

    #[test]
    fn match_all_equals_brute_force_metrics() {
        let store = store();
        let model = model();
        let smae = SMaeThreshold::Relative(0.10);
        let report = run_query(&store, &model, &QueryFilter::default(), Cohort::Run, smae).unwrap();
        let (preds, actuals) = brute_force(&store, &model, &QueryFilter::default());
        let reference = Metrics::compute(&preds, &actuals, smae);
        assert_eq!(report.rows_matched, store.n_rows());
        assert_eq!(report.rows_scanned, store.n_rows());
        assert_eq!(report.chunks_pruned, 0);
        assert_eq!(report.total.n, reference.n);
        close(report.total.mae, reference.mae);
        close(report.total.smae, reference.smae);
        assert_eq!(report.total.max_ae, reference.max_ae);
        assert_eq!(report.cohorts.len(), 3);
        assert_eq!(
            report.cohorts.iter().map(|(_, s)| s.n).sum::<usize>(),
            store.n_rows()
        );
    }

    #[test]
    fn run_filter_prunes_chunks_and_matches_brute_force() {
        let store = store();
        let model = model();
        let smae = SMaeThreshold::paper_default();
        let filter = QueryFilter {
            run_id: Some(2),
            ..QueryFilter::default()
        };
        let report = run_query(&store, &model, &filter, Cohort::Run, smae).unwrap();
        let (preds, actuals) = brute_force(&store, &model, &filter);
        let reference = Metrics::compute(&preds, &actuals, smae);
        // run_id is monotone across the store, so at least run 0's chunk
        // is prunable.
        assert!(report.chunks_pruned > 0, "{report:?}");
        assert!(report.rows_scanned < store.n_rows());
        assert_eq!(report.rows_matched, preds.len());
        close(report.total.mae, reference.mae);
        close(report.total.smae, reference.smae);
        assert_eq!(report.total.max_ae, reference.max_ae);
        assert_eq!(report.cohorts.len(), 1);
        assert_eq!(report.cohorts[0].0, 2);
    }

    #[test]
    fn time_and_host_filters_compact_rows_correctly() {
        let store = store();
        let model = model();
        let smae = SMaeThreshold::Absolute(5.0);
        let filter = QueryFilter {
            host_id: Some(0),
            t_min: Some(10.0),
            t_max: Some(60.0),
            ..QueryFilter::default()
        };
        let report = run_query(&store, &model, &filter, Cohort::Host, smae).unwrap();
        let (preds, actuals) = brute_force(&store, &model, &filter);
        assert!(!preds.is_empty());
        let reference = Metrics::compute(&preds, &actuals, smae);
        assert_eq!(report.rows_matched, preds.len());
        close(report.total.mae, reference.mae);
        close(report.total.smae, reference.smae);
        assert_eq!(report.total.max_ae, reference.max_ae);
        // Host cohort: runs 0 and 2 are host 0.
        assert_eq!(report.cohorts.len(), 1);
        assert_eq!(report.cohorts[0].0, 0);
        let mean_rttf = actuals.iter().sum::<f64>() / actuals.len() as f64;
        assert!((report.total.mean_rttf - mean_rttf).abs() < 1e-9);
    }

    #[test]
    fn no_match_returns_empty_report() {
        let store = store();
        let model = model();
        let filter = QueryFilter {
            run_id: Some(99),
            ..QueryFilter::default()
        };
        let report = run_query(
            &store,
            &model,
            &filter,
            Cohort::Run,
            SMaeThreshold::paper_default(),
        )
        .unwrap();
        assert_eq!(report.rows_matched, 0);
        assert_eq!(report.chunks_scanned, 0);
        assert_eq!(report.chunks_pruned, store.n_chunks());
        assert!(report.cohorts.is_empty());
        assert!(report.total.mae.is_nan());
    }

    #[test]
    fn width_mismatch_and_missing_columns_are_typed() {
        let store = store();
        let narrow = LinearModel::constant(1.0, WIDTH + 2);
        assert!(matches!(
            run_query(
                &store,
                &narrow,
                &QueryFilter::default(),
                Cohort::Run,
                SMaeThreshold::paper_default(),
            ),
            Err(F2pmError::Ml(f2pm_ml::MlError::WidthMismatch { .. }))
        ));

        let mut b = ColumnStoreBuilder::new(&[("mem", ColumnType::F32)]);
        b.push_row(&[1.0]);
        let bare = b.finish().unwrap();
        match run_query(
            &bare,
            &LinearModel::constant(1.0, 1),
            &QueryFilter::default(),
            Cohort::Run,
            SMaeThreshold::paper_default(),
        ) {
            Err(F2pmError::InvalidConfig { what }) => assert!(what.contains("run_id"), "{what}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
