//! # f2pm — Framework for building Failure Prediction Models
//!
//! A Rust reproduction of the F2PM framework (Pellegrini, Di Sanzo,
//! Avresky — IPPS 2015): a machine-learning pipeline that builds models
//! predicting the **Remaining Time To Failure (RTTF)** of applications
//! that degrade under accumulating software anomalies, using nothing but
//! system-level features.
//!
//! This crate is the orchestration layer. The heavy lifting lives in the
//! substrate crates (`f2pm-sim`, `f2pm-monitor`, `f2pm-features`,
//! `f2pm-ml`), and the [`workflow`] module wires the paper's §III phases
//! end-to-end:
//!
//! 1. initial system monitoring → a multi-run [`f2pm_monitor::DataHistory`]
//! 2. datapoint aggregation + added metrics (slopes, inter-generation time)
//! 3. optional Lasso feature selection over a λ grid
//! 4. model generation + validation over the full §III-D method suite,
//!    producing comparable per-model metric reports
//!
//! Around the workflow:
//!
//! - [`correlate`] reproduces the paper's Fig. 3 response-time correlation
//!   (predicting client-observed latency from the monitor's datapoint
//!   inter-generation time alone);
//! - [`predictor`] turns any trained model into an *online* RTTF estimator
//!   fed by a live datapoint stream;
//! - [`rejuvenation`] closes the loop the paper motivates: a proactive
//!   rejuvenation policy that restarts the system when the predicted RTTF
//!   drops below a safety threshold, evaluated against the simulator.
//!
//! ## Quickstart
//!
//! ```no_run
//! use f2pm::{F2pmConfig, run_workflow};
//!
//! let mut cfg = F2pmConfig::default();
//! cfg.campaign.runs = 8;
//! let outcome = run_workflow(&cfg, 42).expect("enough data");
//! println!("{}", outcome.summary());
//! let best = outcome.best_by_smae().expect("at least one model");
//! println!("best model: {}", best.name);
//! ```

pub mod config;
pub mod correlate;
pub mod error;
pub mod incremental;
pub mod predictor;
pub mod query;
pub mod rejuvenation;
pub mod report;
pub mod retrain;
pub mod serve_options;
pub mod workflow;

pub use config::F2pmConfig;
pub use correlate::{correlate_response_time, RtCorrelation, RtEstimator};
pub use error::F2pmError;
pub use incremental::{IncrementalConfig, IncrementalOutcome, IncrementalTrainer};
pub use predictor::{predict_many, OnlinePredictor};
pub use query::{run_query, Cohort, CohortStats, QueryFilter, QueryReport};
pub use rejuvenation::{ProactiveRejuvenator, RejuvenationOutcome, RejuvenationPolicy};
pub use report::{F2pmReport, VariantReport};
pub use retrain::{FactorPath, RetrainConfig, RetrainEngine, RetrainOutcome, RidgeModel};
pub use serve_options::{ModelSource, ServeOptions, ServeOptionsBuilder};
pub use workflow::{run_workflow, run_workflow_on_history};
