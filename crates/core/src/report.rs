//! Workflow output: per-variant model reports and comparisons.

use f2pm_ml::{MlError, ModelReport};

/// Model reports for one training-set variant ("all parameters" or
/// "parameters selected by Lasso" — the two columns of Tables II-IV).
pub struct VariantReport {
    /// Variant label.
    pub variant: String,
    /// Column names of the training set this variant used.
    pub columns: Vec<String>,
    /// One report per method (failures kept in place).
    pub reports: Vec<Result<ModelReport, MlError>>,
}

impl VariantReport {
    /// Successful reports only.
    pub fn ok_reports(&self) -> impl Iterator<Item = &ModelReport> {
        self.reports.iter().filter_map(|r| r.as_ref().ok())
    }

    /// The method with the lowest S-MAE (NaN metrics sort last instead of
    /// panicking — a degenerate model must not take down the report).
    pub fn best_by_smae(&self) -> Option<&ModelReport> {
        self.ok_reports()
            .min_by(|a, b| a.metrics.smae.total_cmp(&b.metrics.smae))
    }

    /// The method with the shortest training time.
    pub fn fastest_training(&self) -> Option<&ModelReport> {
        self.ok_reports()
            .min_by(|a, b| a.train_time_s.total_cmp(&b.train_time_s))
    }

    /// Find a report by method name.
    pub fn by_name(&self, name: &str) -> Option<&ModelReport> {
        self.ok_reports().find(|r| r.name == name)
    }
}

/// Wall time spent in one pipeline stage, stamped by the `f2pm-obs` span
/// API as the workflow runs (aggregate → lasso path → model grid).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (matches the `stage` label of the
    /// `f2pm_stage_duration_us` histogram).
    pub stage: String,
    /// Elapsed wall time in seconds.
    pub seconds: f64,
}

/// The full outcome of an F2PM workflow run.
pub struct F2pmReport {
    /// Aggregated datapoints that entered the pipeline.
    pub aggregated_points: usize,
    /// Runs (fail events) in the history.
    pub runs: usize,
    /// Lasso path (None when selection was disabled).
    pub selection: Option<f2pm_features::SelectionReport>,
    /// Reports per training-set variant; `[0]` is always "all parameters",
    /// `[1]` (when present) "selected by lasso".
    pub variants: Vec<VariantReport>,
    /// Per-stage wall times of this run, in pipeline order.
    pub stage_timings: Vec<StageTiming>,
}

impl F2pmReport {
    /// The "all parameters" variant.
    pub fn all_parameters(&self) -> &VariantReport {
        &self.variants[0]
    }

    /// The lasso-selected variant, when feature selection ran and kept
    /// enough features.
    pub fn selected_parameters(&self) -> Option<&VariantReport> {
        self.variants.get(1)
    }

    /// Overall best model by S-MAE across variants.
    pub fn best_by_smae(&self) -> Option<&ModelReport> {
        self.variants
            .iter()
            .filter_map(|v| v.best_by_smae())
            .min_by(|a, b| a.metrics.smae.total_cmp(&b.metrics.smae))
    }

    /// Render the full report as a Markdown document (tables per variant,
    /// lasso path, recommendation) — ready to drop into a lab notebook or
    /// CI artifact.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("# F2PM workflow report\n\n");
        s.push_str(&format!(
            "- runs (fail events): **{}**\n- aggregated datapoints: **{}**\n",
            self.runs, self.aggregated_points
        ));
        if let Some(best) = self.best_by_smae() {
            s.push_str(&format!(
                "- recommended model: **{}** (S-MAE {:.1} s, RAE {:.3})\n",
                best.name, best.metrics.smae, best.metrics.rae
            ));
        }
        if !self.stage_timings.is_empty() {
            s.push_str("\n## Stage timings\n\n| stage | wall time (s) |\n|---|---|\n");
            for t in &self.stage_timings {
                s.push_str(&format!("| {} | {:.4} |\n", t.stage, t.seconds));
            }
        }
        if let Some(sel) = &self.selection {
            s.push_str("\n## Lasso regularization path (Fig. 4)\n\n");
            s.push_str("| λ | selected parameters |\n|---|---|\n");
            for (l, c) in sel.fig4_series() {
                s.push_str(&format!("| {l:.0e} | {c} |\n"));
            }
        }
        for v in &self.variants {
            s.push_str(&format!(
                "\n## {} ({} columns)\n\n",
                v.variant,
                v.columns.len()
            ));
            s.push_str(
                "| method | S-MAE (s) | RAE | MAE (s) | Max-AE (s) | train (s) | validate (s) |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            for r in &v.reports {
                match r {
                    Ok(rep) => s.push_str(&format!(
                        "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.4} | {:.4} |\n",
                        rep.name,
                        rep.metrics.smae,
                        rep.metrics.rae,
                        rep.metrics.mae,
                        rep.metrics.max_ae,
                        rep.train_time_s,
                        rep.validation_time_s
                    )),
                    Err(e) => s.push_str(&format!("| (failed) | {e} | | | | | |\n")),
                }
            }
        }
        s
    }

    /// Human-readable summary of the whole run.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "F2PM workflow: {} runs, {} aggregated datapoints\n",
            self.runs, self.aggregated_points
        ));
        if !self.stage_timings.is_empty() {
            s.push_str("stages: ");
            for t in &self.stage_timings {
                s.push_str(&format!("{} {:.3}s  ", t.stage, t.seconds));
            }
            s.push('\n');
        }
        if let Some(sel) = &self.selection {
            s.push_str("lasso path (λ → #selected): ");
            for (l, c) in sel.fig4_series() {
                s.push_str(&format!("1e{:.0}→{} ", l.log10(), c));
            }
            s.push('\n');
        }
        for v in &self.variants {
            s.push_str(&format!(
                "\n=== {} ({} columns) ===\n",
                v.variant,
                v.columns.len()
            ));
            s.push_str(&f2pm_ml::validate::format_report_table(&v.reports));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2pm_features::Dataset;
    use f2pm_linalg::Matrix;
    use f2pm_ml::{evaluate_all, LinearRegression, Regressor, SMaeThreshold};

    fn tiny_variant(label: &str) -> VariantReport {
        let mut x = Matrix::zeros(30, 1);
        let mut y = Vec::new();
        for i in 0..30 {
            x[(i, 0)] = i as f64;
            y.push(100.0 - 2.0 * i as f64);
        }
        let ds = Dataset::new(vec!["t".into()], x, y);
        let (train, valid) = ds.split_holdout(0.7, 1);
        let suite: Vec<Box<dyn Regressor>> = vec![Box::new(LinearRegression::new())];
        VariantReport {
            variant: label.to_string(),
            columns: vec!["t".into()],
            reports: evaluate_all(&suite, &train, &valid, SMaeThreshold::Absolute(0.0)),
        }
    }

    #[test]
    fn variant_lookups() {
        let v = tiny_variant("all");
        assert!(v.best_by_smae().is_some());
        assert!(v.fastest_training().is_some());
        assert!(v.by_name("linear_regression").is_some());
        assert!(v.by_name("nope").is_none());
    }

    #[test]
    fn report_summary_mentions_variants() {
        let rep = F2pmReport {
            aggregated_points: 123,
            runs: 4,
            selection: None,
            variants: vec![tiny_variant("all parameters"), tiny_variant("selected")],
            stage_timings: vec![StageTiming {
                stage: "aggregate".into(),
                seconds: 0.125,
            }],
        };
        let s = rep.summary();
        assert!(s.contains("123 aggregated"));
        assert!(s.contains("all parameters"));
        assert!(s.contains("selected"));
        assert!(s.contains("aggregate 0.125s"));
        assert!(rep.best_by_smae().is_some());
        assert!(rep.selected_parameters().is_some());
    }

    #[test]
    fn markdown_export_contains_tables_and_recommendation() {
        let rep = F2pmReport {
            aggregated_points: 99,
            runs: 3,
            selection: None,
            variants: vec![tiny_variant("all parameters")],
            stage_timings: vec![
                StageTiming {
                    stage: "aggregate".into(),
                    seconds: 0.2,
                },
                StageTiming {
                    stage: "model_grid".into(),
                    seconds: 1.5,
                },
            ],
        };
        let md = rep.to_markdown();
        assert!(md.starts_with("# F2PM workflow report"));
        assert!(md.contains("## Stage timings"));
        assert!(md.contains("| model_grid | 1.5000 |"));
        assert!(md.contains("recommended model: **linear_regression**"));
        assert!(md.contains("| method | S-MAE (s) |"));
        assert!(md.contains("| linear_regression |"));
        // Valid Markdown table rows: every data row has 8 pipes.
        for line in md.lines().filter(|l| l.starts_with("| linear")) {
            assert_eq!(line.matches('|').count(), 8, "{line}");
        }
    }
}
