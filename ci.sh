#!/usr/bin/env bash
# Repo gate: format, lint, test, and smoke the perf report.
#
# Everything runs --offline: the third-party surface is vendored as stub
# crates under crates/compat/, so no network access is needed (or wanted).
# Clippy is scoped to the f2pm packages — the compat stubs only have to
# compile, not be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

F2PM_PACKAGES=(
    f2pm-repro f2pm f2pm-linalg f2pm-ml f2pm-features
    f2pm-monitor f2pm-sim f2pm-serve f2pm-cli f2pm-bench f2pm-obs
)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
clippy_args=()
for p in "${F2PM_PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy --offline --all-targets "${clippy_args[@]}" -- -D warnings

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> perf_report smoke (reduced sizes)"
cargo run --release --offline -p f2pm-bench --bin perf_report -- --smoke
# The fast-training rework's tracked section must be present with sane
# (positive, finite) timings in the smoke snapshot and the committed
# baseline.
python3 - <<'EOF'
import json, math, sys

REQUIRED = [
    "lssvm_blocked_s", "lssvm_scalar_cholesky_s", "lssvm_cg_s",
    "lasso_path_active_set_s", "lasso_path_reference_s",
    "m5p_presort_s", "m5p_resort_s", "workflow_wall_s",
]
for path in ("target/BENCH_compute_smoke.json", "BENCH_compute.json"):
    training = json.load(open(path)).get("training")
    assert training is not None, f"{path}: no 'training' section"
    for key in REQUIRED:
        v = training.get(key)
        ok = isinstance(v, (int, float)) and math.isfinite(v) and v > 0
        assert ok, f"{path}: training[{key!r}] = {v!r} is not a positive finite number"
print("training section OK")
EOF

echo "==> serve loadgen smoke (reduced fleet)"
cargo run --release --offline -p f2pm-bench --bin loadgen -- --smoke
# The smoke run must have scraped the metrics exposition and found it in
# exact agreement with the harness's own counters.
python3 - <<'EOF'
import json

for path in ("target/BENCH_serve_smoke.json", "BENCH_serve.json"):
    r = json.load(open(path))
    assert r["checks_passed"] is True, f"{path}: harness checks failed"
    assert r["metrics_scrape_ok"] is True, f"{path}: metrics scrape mismatch"
    assert r["scraped_datapoints"] == r["datapoints"], (
        f"{path}: scraped {r['scraped_datapoints']} != sent {r['datapoints']}"
    )
    assert r["dropped_frames"] == 0, f"{path}: {r['dropped_frames']} frames dropped"
    assert r["scraped_model_generation"] == r["hot_reload_generation"], path
print("serve smoke + metrics scrape OK")
EOF

echo "CI OK"
