#!/usr/bin/env bash
# Repo gate: format, lint, test, and smoke the perf report.
#
# Everything runs --offline: the third-party surface is vendored as stub
# crates under crates/compat/, so no network access is needed (or wanted).
# Clippy is scoped to the f2pm packages — the compat stubs only have to
# compile, not be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

F2PM_PACKAGES=(
    f2pm-repro f2pm f2pm-linalg f2pm-ml f2pm-features
    f2pm-monitor f2pm-sim f2pm-serve f2pm-cli f2pm-bench f2pm-obs
    f2pm-registry
)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
clippy_args=()
for p in "${F2PM_PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy --offline --all-targets "${clippy_args[@]}" -- -D warnings

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> perf_report smoke (reduced sizes)"
cargo run --release --offline -p f2pm-bench --bin perf_report -- --smoke
# The fast-training rework's tracked section must be present with sane
# (positive, finite) timings in the smoke snapshot and the committed
# baseline.
python3 - <<'EOF'
import json, math, sys

REQUIRED = [
    "lssvm_blocked_s", "lssvm_scalar_cholesky_s", "lssvm_cg_s",
    "lasso_path_active_set_s", "lasso_path_reference_s",
    "m5p_presort_s", "m5p_resort_s", "workflow_wall_s",
]
for path in ("target/BENCH_compute_smoke.json", "BENCH_compute.json"):
    training = json.load(open(path)).get("training")
    assert training is not None, f"{path}: no 'training' section"
    for key in REQUIRED:
        v = training.get(key)
        ok = isinstance(v, (int, float)) and math.isfinite(v) and v > 0
        assert ok, f"{path}: training[{key!r}] = {v!r} is not a positive finite number"
print("training section OK")
EOF
# Columnar re-scoring engine + batch-predict regression gates. The
# committed full-run bench must keep the tentpole claim — >=10x over the
# row-oriented re-score loop on a >=2M-row history — while the smoke run
# (tiny history, noisy CI box) gates loosely but still proves the whole
# export -> scan -> aggregate path and the zone-map pruning work.
python3 - <<'EOF'
import json

# predict_batch must never regress below the per-row loop (the serial
# threshold keeps small batches off the thread pool); 5% timer headroom.
# The section is named for its row count (predict_400 in smoke,
# predict_2000 in the committed full run).
for path in ("target/BENCH_compute_smoke.json", "BENCH_compute.json"):
    j = json.load(open(path))
    key = [k for k in j if k.startswith("predict_")]
    assert len(key) == 1, f"{path}: predict sections: {key}"
    p = j[key[0]]
    for m in ("svr", "ls_svm"):
        per_row, batch = p[f"{m}_per_row_s"], p[f"{m}_batch_s"]
        # +250us absolute: smoke passes are sub-millisecond, where timer
        # jitter alone exceeds the 5% ratio headroom.
        assert batch <= per_row * 1.05 + 250e-6, (
            f"{path}: {m} batch {batch:.6f}s slower than 1.05x per-row {per_row:.6f}s"
        )

for path, min_rows, min_speedup in (
    ("target/BENCH_compute_smoke.json", 100_000, 3.0),
    ("BENCH_compute.json", 2_000_000, 10.0),
):
    c = json.load(open(path)).get("columnar")
    assert c is not None, f"{path}: no 'columnar' section"
    assert c["rows"] >= min_rows, f"{path}: only {c['rows']} rows in the history"
    assert c["row_rows_per_s"] > 0 and c["columnar_rows_per_s"] > 0, path
    assert c["speedup"] >= min_speedup, (
        f"{path}: columnar speedup {c['speedup']:.2f}x under the {min_speedup}x floor"
    )
    assert c["metrics_match"] is True, (
        f"{path}: columnar aggregates diverged from the row-oriented pass"
    )
    assert c["chunks_pruned"] > 0, f"{path}: zone maps pruned no chunks"
print("columnar + predict gates OK")
EOF
# Warm-start retraining gate (DESIGN.md §15). The steady-state 1-run
# window shift over the paper-scale 2000-row window must stay >=5x
# faster than a cold rebuild, and the warm model must agree with the
# cold oracle to 1e-6 on the newest run's rows. The retrain section
# always runs at full scale (the claim is about n=2000), so smoke and
# the committed baseline gate at the same floor.
python3 - <<'EOF'
import json

MIN_SPEEDUP = 5.0
MAX_PRED_DELTA = 1e-6

for path in ("target/BENCH_compute_smoke.json", "BENCH_compute.json"):
    r = json.load(open(path)).get("retrain")
    assert r is not None, f"{path}: no 'retrain' section"
    assert r["window_rows"] >= 2000, f"{path}: window only {r['window_rows']} rows"
    assert r["shift_rows"] > 0, f"{path}: shift retired no rows"
    assert r["warm_s"] > 0 and r["cold_s"] > 0, path
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"{path}: warm retrain only {r['speedup']:.2f}x over cold "
        f"(need >={MIN_SPEEDUP}x)"
    )
    assert r["max_pred_delta"] <= MAX_PRED_DELTA, (
        f"{path}: warm/cold models diverged by {r['max_pred_delta']:e}"
    )

# SVR shrinking regression floor: every benchmarked size sits below
# SVR_SHRINK_MIN_N, where shrinking must be a no-op — the gate proves
# the activation threshold keeps it off the small-problem path (any
# real slowdown would show up here), with headroom for timer noise on
# the sub-10ms smoke fits.
for path, floor in (
    ("target/BENCH_compute_smoke.json", 0.90),
    ("BENCH_compute.json", 0.95),
):
    j = json.load(open(path))
    sections = [k for k in j if k.startswith("svr_train_")]
    assert sections, f"{path}: no svr_train sections"
    for key in sections:
        s = j[key]["speedup"]
        assert s >= floor, (
            f"{path}: {key} shrinking speedup {s:.2f} under the {floor} "
            f"no-op floor"
        )
print("retrain + svr shrinking gates OK")
EOF

echo "==> f2pm query end-to-end (campaign -> train -> export-columnar -> query)"
CIDIR=target/ci-columnar
rm -rf "$CIDIR"; mkdir -p "$CIDIR"
cargo run --release --offline -q -p f2pm-cli --bin f2pm -- campaign \
    --runs 3 --seed 7 --quick --out "$CIDIR/history.csv"
cargo run --release --offline -q -p f2pm-cli --bin f2pm -- train \
    --history "$CIDIR/history.csv" --method linear --out "$CIDIR/model.txt"
cargo run --release --offline -q -p f2pm-cli --bin f2pm -- export-columnar \
    --history "$CIDIR/history.csv" --out "$CIDIR/history.f2pc" \
    2>&1 | tee "$CIDIR/export.log"
grep -q "^wrote .* rows" "$CIDIR/export.log"
cargo run --release --offline -q -p f2pm-cli --bin f2pm -- query \
    --store "$CIDIR/history.f2pc" --model "$CIDIR/model.txt" --cohort run \
    >"$CIDIR/query.log" 2>&1
grep -q "rows matched" "$CIDIR/query.log"
grep -q "throughput:" "$CIDIR/query.log"
grep -q "total" "$CIDIR/query.log"
# A run-filtered query goes through the zone-map pruning path and must
# report the scan/prune accounting line.
cargo run --release --offline -q -p f2pm-cli --bin f2pm -- query \
    --store "$CIDIR/history.f2pc" --model "$CIDIR/model.txt" --run 2 \
    >"$CIDIR/query_run2.log" 2>&1
grep -q "pruned by zone maps" "$CIDIR/query_run2.log"
rm -rf "$CIDIR"
echo "query CLI e2e OK"

echo "==> serve loadgen smoke (reduced fleet, --sweep: 1 and 2 shards, 2k-conn reactor gate, 3x1k fleet plane)"
cargo run --release --offline -p f2pm-bench --bin loadgen -- --smoke --sweep \
    --connections 2000 --idle-fraction 0.9 --fleet-hosts 1000 --fleet-instances 3
# The smoke run must have scraped the metrics exposition and found it in
# exact agreement with the harness's own counters, and the batched data
# plane must hold its tail-latency budget at the (tiny) smoke load.
python3 - <<'EOF'
import json

# Tail budget for the smoke fleet (40 clients x 120 points). The full-load
# p99 target is ~64ms (3x under the PR 2 baseline, see BENCH_serve.json);
# the smoke fleet is 1/6 the load, but CI boxes are noisy, so gate at the
# same 120ms ceiling that the seed data plane blew through even at smoke
# scale when queues backed up.
SMOKE_P99_BUDGET_US = 120_000

for path in ("target/BENCH_serve_smoke.json", "BENCH_serve.json"):
    r = json.load(open(path))
    assert r["checks_passed"] is True, f"{path}: harness checks failed"
    assert r["metrics_scrape_ok"] is True, f"{path}: metrics scrape mismatch"
    assert r["scraped_datapoints"] == r["datapoints"], (
        f"{path}: scraped {r['scraped_datapoints']} != sent {r['datapoints']}"
    )
    assert r["dropped_frames"] == 0, f"{path}: {r['dropped_frames']} frames dropped"
    assert r["scraped_model_generation"] == r["hot_reload_generation"], path

smoke = json.load(open("target/BENCH_serve_smoke.json"))
p99 = smoke["predict_rtt_us"]["p99"]
assert p99 <= SMOKE_P99_BUDGET_US, (
    f"smoke predict p99 {p99}us blew the {SMOKE_P99_BUDGET_US}us budget"
)
assert len(smoke["sweep"]) >= 2, "smoke sweep must cover >=2 shard counts"
for run in smoke["sweep"]:
    assert run["dropped_frames"] == 0, f"sweep@{run['shards']} dropped frames"
    assert run["checks_passed"] is True, f"sweep@{run['shards']} checks failed"

# The committed full-load benchmark must keep the tentpole's claims:
# a >=3 shard-count sweep, ingest throughput scaling up with shards, and
# a p99 predict RTT at least 3x under the 191229us PR 2 baseline.
full = json.load(open("BENCH_serve.json"))
sweep = full["sweep"]
assert len(sweep) >= 3, "committed sweep must cover shards {1,2,4}"
rates = [run["ingest_rate_per_s"] for run in sweep]
assert rates[0] < rates[-1], f"ingest rate must scale with shards: {rates}"
assert full["baseline_p99_us"] == 191229
full_p99 = full["predict_rtt_us"]["p99"]
assert full_p99 * 3 <= full["baseline_p99_us"], (
    f"committed full-load p99 {full_p99}us is not 3x under baseline"
)
for key in ("decode", "queue_wait", "predict", "reply"):
    assert key in full["stage_latency_us"], f"missing stage breakdown: {key}"
assert full["wire_codec"]["encode_into_frames_per_s"] > 0

# High-connection gate for the epoll reactor edge. The smoke run parks a
# 2k mostly-idle fleet (a re-exec'd child process holds the client fds)
# on the same server that serves a hot sweep: zero drops, zero slow-
# consumer evictions, every fleet + sweep datapoint scraped back exactly
# (the loadgen harness already cross-checked the totals before setting
# checks_passed), a clean close of the whole fleet, and the hot path
# holding its p99 budget with the fleet parked.
conn = smoke.get("connections")
assert conn is not None, "smoke run must include the --connections phase"
assert conn["checks_passed"] is True, "connection-phase checks failed"
assert conn["connected"] == conn["target"] >= 2000, (
    f"fleet only reached {conn['connected']}/{conn['target']} connections"
)
assert conn["peak_live"] >= conn["target"], "server never saw the full fleet live"
assert conn["dropped_frames"] == 0, "fleet phase dropped frames"
assert conn["evicted_slow"] == 0, "idle fleet conns must never be evicted"
assert conn["hot_predict_p99_us"] <= conn["hot_p99_budget_us"], (
    f"hot p99 {conn['hot_predict_p99_us']}us over budget with the fleet parked"
)

# The committed full benchmark carries the 10k-connection run: same
# invariants at scale, plus the resident-memory claim — a reactor
# connection must cost >=10x less than a thread-per-connection one.
fconn = full.get("connections")
assert fconn is not None, "committed BENCH_serve.json must include 'connections'"
assert fconn["checks_passed"] is True, "committed connection-phase checks failed"
assert fconn["connected"] == fconn["target"] >= 10000, (
    f"committed fleet was {fconn['connected']} conns, need >=10000"
)
assert fconn["dropped_frames"] == 0 and fconn["evicted_slow"] == 0
assert fconn["hot_predict_p99_us"] <= fconn["hot_p99_budget_us"]
assert fconn["resident_ratio"] >= 10.0, (
    f"reactor per-conn residency only {fconn['resident_ratio']}x below threaded"
)

# Fleet-plane gate (wire v4): 3 serve instances, >=1k consistent-hash-
# routed heterogeneous hosts, and the aggregation layer's conservation
# law held EXACTLY — the fleet-merged exposition counter equals the sum
# of the per-instance scrapes equals what the harness sent — plus a
# non-empty cluster top-K that matched the union of the per-instance
# estimate boards entry for entry (the harness verified it before
# setting top_k_verified).
for path in ("target/BENCH_serve_smoke.json", "BENCH_serve.json"):
    fl = json.load(open(path)).get("fleet")
    assert fl is not None, f"{path}: no 'fleet' section"
    assert fl["checks_passed"] is True, f"{path}: fleet-phase checks failed"
    assert fl["instances"] >= 3, f"{path}: fleet ran only {fl['instances']} instances"
    assert fl["hosts"] >= 1000, f"{path}: fleet ran only {fl['hosts']} hosts"
    assert fl["datapoints"] == fl["fleet_scrape_datapoints"] == fl["instance_scrape_datapoints_sum"], (
        f"{path}: fleet counters diverged: sent {fl['datapoints']}, merged "
        f"{fl['fleet_scrape_datapoints']}, instance sum {fl['instance_scrape_datapoints_sum']}"
    )
    assert fl["hosts_tracked"] == fl["hosts_with_estimate"] == fl["hosts"], (
        f"{path}: {fl['hosts_tracked']}/{fl['hosts']} hosts tracked"
    )
    assert fl["dropped_frames"] == 0, f"{path}: fleet phase dropped frames"
    assert fl["top_k"] > 0 and fl["top_k_verified"] is True, (
        f"{path}: cluster top-K did not match the per-instance estimate boards"
    )
    assert len(fl["per_instance"]) == fl["instances"], path
    for row in fl["per_instance"]:
        assert row["hosts"] > 0, f"{path}: instance {row['instance_id']} got no hosts"
    assert sum(r["datapoints"] for r in fl["per_instance"]) == fl["datapoints"], (
        f"{path}: per-instance datapoints do not sum to the fleet total"
    )
print("serve smoke sweep + tail budget + committed bench + 2k-conn gate + fleet plane OK")
EOF

echo "==> cold-start smoke (artifact boot vs boot-retrain)"
# Train + publish a binary artifact, boot a server from --models-dir alone
# (no --history, no retrain), and time to the first estimate delivered
# over the wire. The artifact path must answer its first predict and beat
# the retrain boot by >=5x — both in the live smoke run and in the
# committed full-size benchmark.
cargo run --release --offline -p f2pm-bench --bin coldstart -- --smoke
python3 - <<'EOF'
import json

MIN_SPEEDUP = 5.0

for path in ("target/BENCH_coldstart_smoke.json", "BENCH_serve.json"):
    cs = json.load(open(path)).get("cold_start")
    assert cs is not None, f"{path}: no 'cold_start' section"
    assert cs["first_predict_ok"] is True, (
        f"{path}: artifact-booted server never answered its first predict"
    )
    for key in ("boot_retrain_ms", "cold_start_ms"):
        assert cs[key] > 0, f"{path}: cold_start[{key!r}] = {cs[key]!r}"
    speedup = cs["boot_retrain_ms"] / cs["cold_start_ms"]
    assert speedup >= MIN_SPEEDUP, (
        f"{path}: artifact cold start only {speedup:.1f}x faster than "
        f"boot-retrain (need >={MIN_SPEEDUP}x)"
    )
print("cold-start gate OK")
EOF

echo "CI OK"
