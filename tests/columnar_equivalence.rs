//! Columnar scoring equivalence: `Model::predict_columns` over a
//! [`ColumnStore`]'s chunks must be bit-identical to `predict_batch` over
//! the same rows materialized row-major — for every persistable model
//! type, every chunk-size edge (1, odd, partial final chunk), and both
//! column precisions. The columnar kernels replicate the row path's
//! per-coordinate accumulation order, so equality is exact, not a
//! tolerance.

use f2pm_repro::f2pm_features::{
    ColumnStoreBuilder, ColumnType, COL_HOST_ID, COL_RTTF, COL_RUN_ID, COL_T,
};
use f2pm_repro::f2pm_linalg::Matrix;
use f2pm_repro::f2pm_ml::{
    Kernel, LsSvmRegressor, M5Params, M5Prime, Model, RepTree, RepTreeParams, SavedModel,
    SvrParams, SvrRegressor,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const WIDTH: usize = 12;

/// Deterministic training design; the models are fixtures, the *scoring*
/// inputs are the proptest-generated part.
fn design(n: usize) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::zeros(n, WIDTH);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..WIDTH {
            let v = ((i * WIDTH + j) as f64 * 0.29).sin() * 2.5;
            x[(i, j)] = v;
            acc += v * (j as f64 + 1.0) * 0.4;
        }
        y.push(acc + (i as f64 * 0.17).cos() * 8.0 + 60.0);
    }
    (x, y)
}

/// One fitted model per [`SavedModel`] variant, fitted once per process.
fn models() -> &'static [SavedModel] {
    static MODELS: OnceLock<Vec<SavedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let (x, y) = design(90);
        vec![
            SavedModel::Linear(
                f2pm_repro::f2pm_ml::linreg::LinearModel::fit(&x, &y).expect("linear"),
            ),
            SavedModel::RepTree(
                RepTree::new(RepTreeParams::default())
                    .fit_tree(&x, &y)
                    .expect("rep_tree"),
            ),
            SavedModel::M5(
                M5Prime::new(M5Params::default())
                    .fit_m5(&x, &y)
                    .expect("m5p"),
            ),
            SavedModel::Svr(
                SvrRegressor::new(SvrParams {
                    kernel: Kernel::Rbf { gamma: 0.2 },
                    ..SvrParams::default()
                })
                .fit_svr(&x, &y)
                .expect("svr"),
            ),
            SavedModel::LsSvm(
                LsSvmRegressor::new(Kernel::Rbf { gamma: 0.2 }, 10.0)
                    .fit_lssvm(&x, &y)
                    .expect("ls_svm"),
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn predict_columns_is_bit_identical_to_batch(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1000.0f64..1000.0, WIDTH),
            1usize..80,
        ),
        chunk_rows in (0usize..4).prop_map(|i| [1usize, 3, 7, 64][i]),
        as_f32 in (0u8..2).prop_map(|b| b == 1),
    ) {
        // Row-major input -> columnar store (metadata columns + features),
        // covering chunk sizes that force single-row, odd, and partial
        // final chunks, in both the store's native f32 feature precision
        // and full f64.
        let ty = if as_f32 { ColumnType::F32 } else { ColumnType::F64 };
        let names: Vec<String> = (0..WIDTH).map(|j| format!("f{j}")).collect();
        let mut spec: Vec<(&str, ColumnType)> = vec![
            (COL_RUN_ID, ColumnType::F64),
            (COL_HOST_ID, ColumnType::F64),
            (COL_T, ColumnType::F64),
            (COL_RTTF, ColumnType::F64),
        ];
        spec.extend(names.iter().map(|n| (n.as_str(), ty)));
        let mut b = ColumnStoreBuilder::with_chunk_rows(&spec, chunk_rows);
        for (i, row) in rows.iter().enumerate() {
            let mut full = vec![0.0, 0.0, i as f64 * 10.0, 1000.0 - i as f64];
            full.extend_from_slice(row);
            b.push_row(&full);
        }
        let store = b.finish().expect("store");
        let feats = store.feature_column_indices();
        prop_assert_eq!(feats.len(), WIDTH);

        for saved in models() {
            let model: &dyn Model = saved.as_model();
            let mut scratch = Vec::new();
            for c in 0..store.n_chunks() {
                let chunk = store.chunk(c).features(&feats);
                let mut out = vec![0.0; chunk.len()];
                model
                    .predict_columns(&chunk, &mut scratch, &mut out)
                    .expect("predict_columns");
                // Materializing the chunk yields exactly the values the
                // columnar kernel saw (f32 columns round on insert, not
                // on read), so the row path scores identical inputs.
                let mat = chunk.materialize();
                let batch = model.predict_batch(&mat).expect("predict_batch");
                for i in 0..chunk.len() {
                    prop_assert!(
                        out[i] == batch[i] || (out[i].is_nan() && batch[i].is_nan()),
                        "{}: chunk {} row {}: columnar {} != batch {}",
                        saved.kind(), c, i, out[i], batch[i],
                    );
                }
            }
        }
    }
}
