//! Integration test of the paper's deployment architecture: FMC streams a
//! monitored guest over real TCP to an FMS, and the workflow trains on
//! what the server received.

use f2pm_repro::f2pm::{run_workflow_on_history, F2pmConfig};
use f2pm_repro::f2pm_monitor::{
    FeatureMonitorClient, FeatureMonitorServer, FmcConfig, SimCollector, SimCollectorConfig,
};
use f2pm_repro::f2pm_sim::Simulation;

#[test]
fn fmc_to_fms_to_models() {
    let cfg = F2pmConfig::quick();
    let server = FeatureMonitorServer::start("127.0.0.1:0").expect("bind");

    let mut total_sent = 0u64;
    for run in 0..cfg.campaign.runs as u64 {
        let mut client = FeatureMonitorClient::connect(
            server.addr(),
            FmcConfig {
                host_id: run as u32,
                pause: None,
                ..FmcConfig::default()
            },
        )
        .expect("connect");
        let sim = Simulation::new(cfg.campaign.sim.clone(), 500 + run);
        let mut collector = SimCollector::new(sim, SimCollectorConfig::default(), run);
        total_sent += client
            .stream_collector(&mut collector, None)
            .expect("stream");
        let fail_t = collector.simulation().failed_at().expect("failure");
        client.send_fail(fail_t).expect("fail event");
        client.close().expect("bye");
    }

    // Drain: wait until the server has seen every datapoint.
    for _ in 0..300 {
        if server.datapoint_count() == total_sent {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let history = server.shutdown();
    assert_eq!(history.datapoint_count() as u64, total_sent);
    assert_eq!(history.fail_count(), cfg.campaign.runs);

    // The received history is good enough to train on.
    let report = run_workflow_on_history(&cfg, &history).expect("enough data");
    let best = report.best_by_smae().expect("models trained");
    assert!(best.metrics.rae < 1.0, "RAE {}", best.metrics.rae);
}

#[test]
fn concurrent_fmcs_stream_in_parallel() {
    // Several guests monitored at once (the paper's FMS serves multiple
    // clients); each connection streams a bounded number of datapoints.
    let server = FeatureMonitorServer::start("127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let per_client = 50u64;
    let handles: Vec<_> = (0..4u64)
        .map(|k| {
            std::thread::spawn(move || {
                let mut client = FeatureMonitorClient::connect(
                    addr,
                    FmcConfig {
                        host_id: k as u32,
                        pause: None,
                        ..FmcConfig::default()
                    },
                )
                .expect("connect");
                let sim = Simulation::new(Default::default(), 900 + k);
                let mut collector = SimCollector::new(sim, SimCollectorConfig::default(), k);
                let sent = client
                    .stream_collector(&mut collector, Some(per_client))
                    .expect("stream");
                client.close().expect("bye");
                sent
            })
        })
        .collect();
    let sent: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(sent, 4 * per_client);

    for _ in 0..300 {
        if server.datapoint_count() == sent {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let history = server.shutdown();
    assert_eq!(history.datapoint_count() as u64, sent);
}
