//! Cross-crate integration: wire the pipeline stage by stage (simulator →
//! monitor → features → ml) and check the conservation laws between them.

use f2pm_repro::f2pm::F2pmConfig;
use f2pm_repro::f2pm_features::{aggregate_history, aggregate_run, Dataset};
use f2pm_repro::f2pm_linalg::Matrix;
use f2pm_repro::f2pm_ml::{
    evaluate_one, LinearRegression, Metrics, RepTree, RepTreeParams, SMaeThreshold,
};
use f2pm_repro::f2pm_monitor::{DataHistory, FeatureId};
use f2pm_repro::f2pm_sim::{AnomalyConfig, Campaign, CampaignConfig, SimConfig};

fn campaign(runs: usize, seed: u64) -> Vec<f2pm_repro::f2pm_sim::Run> {
    let cfg = CampaignConfig {
        sim: SimConfig {
            anomaly: AnomalyConfig {
                leak_size_mib: (5.0, 9.0),
                leak_prob_per_home: (0.7, 0.9),
                ..AnomalyConfig::default()
            },
            ..SimConfig::default()
        },
        runs,
        ..CampaignConfig::default()
    };
    Campaign::new(cfg, seed).run_all()
}

#[test]
fn datapoints_are_conserved_sim_to_history() {
    let runs = campaign(3, 1);
    let history = DataHistory::from_campaign(&runs);
    let raw: usize = runs.iter().map(|r| r.samples.len()).sum();
    assert_eq!(history.datapoint_count(), raw);
    assert_eq!(history.fail_count(), 3);

    // Per-run boundaries survive the flattening.
    let parsed = history.runs();
    for (orig, got) in runs.iter().zip(&parsed) {
        assert_eq!(orig.samples.len(), got.datapoints.len());
        assert_eq!(orig.fail_time, got.fail_time);
    }
}

#[test]
fn datapoints_are_conserved_history_to_windows() {
    let runs = campaign(2, 2);
    let history = DataHistory::from_campaign(&runs);
    let cfg = F2pmConfig::default();
    for run in history.runs() {
        let agg = aggregate_run(&run, &cfg.aggregation);
        let counted: usize = agg.iter().map(|a| a.count).sum();
        // min_points may drop a few sparse windows; nothing is duplicated
        // and almost everything is kept.
        assert!(counted <= run.datapoints.len());
        assert!(
            counted * 10 >= run.datapoints.len() * 9,
            "lost too many datapoints: {counted} of {}",
            run.datapoints.len()
        );
    }
}

#[test]
fn rttf_labels_are_consistent_with_fail_events() {
    let runs = campaign(2, 3);
    let history = DataHistory::from_campaign(&runs);
    let cfg = F2pmConfig::default();
    for (run_data, run) in history.runs().iter().zip(&runs) {
        let fail = run.fail_time.unwrap();
        for a in aggregate_run(run_data, &cfg.aggregation) {
            let rttf = a.rttf.expect("failing run");
            assert!((rttf - (fail - a.t_repr).max(0.0)).abs() < 1e-9);
            assert!(rttf >= 0.0);
        }
    }
}

#[test]
fn feature_trajectories_match_physical_expectations() {
    // The monitored features must carry the crash signature the paper's
    // models rely on: swap_used (kB) ends near the 1 GiB device limit,
    // free memory collapses, thread count only grows.
    let runs = campaign(1, 4);
    let history = DataHistory::from_campaign(&runs);
    let run = &history.runs()[0];
    let first = run.datapoints.first().unwrap();
    let last = run.datapoints.last().unwrap();

    assert!(
        first.get(FeatureId::SwapUsed) < 1024.0,
        "fresh guest barely swaps"
    );
    assert!(
        last.get(FeatureId::SwapUsed) > 900.0 * 1024.0,
        "swap nearly full at failure: {} kB",
        last.get(FeatureId::SwapUsed)
    );
    assert!(last.get(FeatureId::MemFree) < 100.0 * 1024.0);
    assert!(last.get(FeatureId::NThreads) >= first.get(FeatureId::NThreads));

    // CPU accounting stays a valid percentage breakdown throughout.
    for d in &run.datapoints {
        let total = d.get(FeatureId::CpuUser)
            + d.get(FeatureId::CpuNice)
            + d.get(FeatureId::CpuSystem)
            + d.get(FeatureId::CpuIowait)
            + d.get(FeatureId::CpuSteal)
            + d.get(FeatureId::CpuIdle);
        assert!((total - 100.0).abs() < 1.0, "cpu sums to {total}");
    }
}

#[test]
fn dataset_columns_align_with_feature_names() {
    let runs = campaign(1, 5);
    let history = DataHistory::from_campaign(&runs);
    let cfg = F2pmConfig::default();
    let points = aggregate_history(&history, &cfg.aggregation);
    let ds = Dataset::from_points(&points);

    // The swap_used column of the dataset must equal the window means of
    // the raw swap_used feature.
    let j = ds.column_index("swap_used").expect("column");
    for (i, p) in points.iter().enumerate() {
        assert_eq!(ds.x[(i, j)], p.means[FeatureId::SwapUsed.index()]);
    }
    let js = ds.column_index("swap_used_slope").expect("slope column");
    for (i, p) in points.iter().enumerate() {
        assert_eq!(ds.x[(i, js)], p.slopes[FeatureId::SwapUsed.index()]);
    }
}

#[test]
fn models_trained_on_one_campaign_transfer_to_another() {
    // Train on seeds {10}, validate on an entirely fresh campaign {11}:
    // the model must beat the mean predictor out of distribution, since
    // per-run anomaly rates differ.
    let cfg = F2pmConfig::default();
    let train_hist = DataHistory::from_campaign(&campaign(3, 10));
    let test_hist = DataHistory::from_campaign(&campaign(2, 11));
    let train = Dataset::from_points(&aggregate_history(&train_hist, &cfg.aggregation));
    let test = Dataset::from_points(&aggregate_history(&test_hist, &cfg.aggregation));

    let rep = evaluate_one(
        &RepTree::new(RepTreeParams::default()),
        &train,
        &test,
        SMaeThreshold::paper_default(),
    )
    .unwrap();
    assert!(
        rep.metrics.rae < 0.9,
        "cross-campaign RAE {} not better than mean predictor",
        rep.metrics.rae
    );
}

#[test]
fn metrics_pipeline_agrees_with_manual_computation() {
    // Belt-and-braces: the Metrics the validation harness computes match a
    // hand-rolled computation on the same predictions.
    let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
    let y = vec![10.0, 8.0, 6.0, 4.0, 2.0, 0.0];
    let ds = Dataset::new(vec!["t".into()], x, y.clone());
    let rep = evaluate_one(
        &LinearRegression::new(),
        &ds,
        &ds,
        SMaeThreshold::Absolute(0.0),
    )
    .unwrap();
    let manual_mae: f64 = rep
        .predictions
        .iter()
        .zip(&y)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / y.len() as f64;
    assert!((rep.metrics.mae - manual_mae).abs() < 1e-12);
    let re = Metrics::compute(&rep.predictions, &y, SMaeThreshold::Absolute(0.0));
    assert_eq!(re.mae, rep.metrics.mae);
}
