//! Property-based tests over the cross-crate pipeline with synthetic
//! (simulator-free) histories: whatever the raw stream looks like, the
//! aggregation/labeling/selection stages must keep their invariants.

use f2pm_repro::f2pm_features::{
    aggregate_run, lasso_path, AggregationConfig, Dataset, LassoSolverConfig,
};
use f2pm_repro::f2pm_monitor::{Datapoint, FeatureId, RunData};
use proptest::prelude::*;

/// Generate a plausible raw run: increasing timestamps, non-negative
/// feature values, and a fail time after the last sample.
fn arb_run() -> impl Strategy<Value = RunData> {
    (
        20usize..200,
        0.5f64..3.0,
        proptest::collection::vec(0.0f64..5000.0, 14),
    )
        .prop_map(|(n, step, base)| {
            let datapoints: Vec<Datapoint> = (0..n)
                .map(|i| {
                    let mut d = Datapoint {
                        t_gen: i as f64 * step,
                        values: [0.0; 14],
                    };
                    for (j, b) in base.iter().enumerate() {
                        // Mild drift plus deterministic wiggle.
                        d.values[j] = b + i as f64 * 0.3 + ((i * (j + 3)) % 7) as f64;
                    }
                    d
                })
                .collect();
            let last_t = datapoints.last().unwrap().t_gen;
            RunData {
                datapoints,
                fail_time: Some(last_t + 30.0),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregation_conserves_and_orders(run in arb_run()) {
        let cfg = AggregationConfig { window_s: 10.0, min_points: 1, ..AggregationConfig::default() };
        let agg = aggregate_run(&run, &cfg);
        // Conservation with min_points = 1: nothing dropped, nothing duplicated.
        let total: usize = agg.iter().map(|a| a.count).sum();
        prop_assert_eq!(total, run.datapoints.len());
        // Windows ordered, representative times inside their windows.
        for w in agg.windows(2) {
            prop_assert!(w[0].window_start < w[1].window_start);
            prop_assert!(w[0].t_repr < w[1].t_repr);
        }
        for a in &agg {
            prop_assert!(a.t_repr >= a.window_start && a.t_repr < a.window_end);
        }
    }

    #[test]
    fn rttf_is_monotone_decreasing_in_time(run in arb_run()) {
        let cfg = AggregationConfig { window_s: 15.0, min_points: 1, ..AggregationConfig::default() };
        let agg = aggregate_run(&run, &cfg);
        for w in agg.windows(2) {
            prop_assert!(w[0].rttf.unwrap() > w[1].rttf.unwrap());
        }
        // RTTF + representative time = fail time, exactly.
        let fail = run.fail_time.unwrap();
        for a in &agg {
            prop_assert!((a.rttf.unwrap() + a.t_repr - fail).abs() < 1e-9);
        }
    }

    #[test]
    fn window_means_stay_within_raw_bounds(run in arb_run()) {
        let cfg = AggregationConfig { window_s: 12.0, min_points: 1, ..AggregationConfig::default() };
        let agg = aggregate_run(&run, &cfg);
        let j = FeatureId::MemUsed.index();
        let lo = run
            .datapoints
            .iter()
            .map(|d| d.values[j])
            .fold(f64::INFINITY, f64::min);
        let hi = run
            .datapoints
            .iter()
            .map(|d| d.values[j])
            .fold(f64::NEG_INFINITY, f64::max);
        for a in &agg {
            prop_assert!(a.means[j] >= lo - 1e-9 && a.means[j] <= hi + 1e-9);
        }
    }

    #[test]
    fn lasso_path_shrinks_overall_on_any_dataset(run in arb_run()) {
        // Strict per-step monotonicity of the support size is NOT a lasso
        // theorem — variables can re-enter on collinear designs (and these
        // synthetic runs are nearly collinear by construction; the paper
        // itself hedges with "likely"). What must hold for any data: the
        // support never exceeds the width, a huge λ empties it, and the
        // large-λ end is no bigger than the small-λ end.
        let cfg = AggregationConfig { window_s: 10.0, min_points: 1, ..AggregationConfig::default() };
        let agg = aggregate_run(&run, &cfg);
        let ds = Dataset::from_points(&agg);
        prop_assume!(ds.len() >= 10);
        let lambdas: Vec<f64> = (0..8).map(|k| 10f64.powi(k * 2 - 3)).collect();
        let report = lasso_path(&ds, &lambdas, &LassoSolverConfig::default());
        let series = report.fig4_series();
        for (_, count) in &series {
            prop_assert!(*count <= ds.width());
        }
        prop_assert!(series.last().unwrap().1 <= series.first().unwrap().1);
        prop_assert_eq!(series.last().unwrap().1, 0, "λ=1e11 must kill all");
    }

    #[test]
    fn intergen_time_reflects_sampling_step(
        run in arb_run(),
    ) {
        // The synthetic runs use a constant step: every window's mean
        // inter-generation time must equal that step.
        let step = run.datapoints[1].t_gen - run.datapoints[0].t_gen;
        let cfg = AggregationConfig { window_s: 20.0, min_points: 2, ..AggregationConfig::default() };
        for a in aggregate_run(&run, &cfg) {
            prop_assert!((a.intergen_mean - step).abs() < 1e-9);
            prop_assert!(a.intergen_slope.abs() < 1e-9);
        }
    }
}
