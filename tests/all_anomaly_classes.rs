//! Integration test: F2PM against all four §I anomaly classes at once —
//! memory leaks, unterminated threads, unreleased locks, and file
//! fragmentation — with the disk/database tier and lock serialization
//! shaping the failure signature.

use f2pm_repro::f2pm::{run_workflow, F2pmConfig};
use f2pm_repro::f2pm_sim::{AnomalyConfig, SimConfig, Simulation};

fn four_class_sim() -> SimConfig {
    SimConfig {
        anomaly: AnomalyConfig {
            leak_size_mib: (4.0, 8.0),
            leak_prob_per_home: (0.5, 0.8),
            ..AnomalyConfig::all_classes()
        },
        ..SimConfig::default()
    }
}

#[test]
fn all_four_classes_accumulate_and_kill_the_guest() {
    let mut sim = Simulation::new(four_class_sim(), 31);
    let out = sim.run_to_failure(40_000.0);
    assert!(out.failed, "guest must die");
    assert!(out.leaked_mib > 500.0, "leaks accumulated");
    assert!(out.leaked_threads > 0, "threads leaked");
    assert!(sim.leaked_locks() > 0, "locks leaked");
    assert!(
        sim.fragmentation() > 0.2,
        "fragmentation advanced: {}",
        sim.fragmentation()
    );
}

#[test]
fn fragmentation_shows_up_in_iowait_before_swapping() {
    // Fragmentation-only anomalies (no leaks): the guest never swaps, but
    // database reads get slower and iowait rises — a failure signature the
    // memory features alone cannot carry.
    let cfg = SimConfig {
        anomaly: AnomalyConfig {
            leak_prob_per_home: (0.0, 0.0),
            thread_prob_per_home: (0.0, 0.0),
            lock_prob_per_home: (0.0, 0.0),
            // Slow enough that the early window (t ≈ 300 s) is still mostly
            // unfragmented — the point of the test is the *trend*, and the
            // faster rate saturates fragmentation at 0.95 before the first
            // observation.
            frag_delta_per_home: (0.00008, 0.00012),
            ..AnomalyConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, 41);
    // Instantaneous iowait is noisy (it rides the simulated request mix),
    // so compare window averages rather than single snapshots.
    let window_mean_iowait = |sim: &mut Simulation, from: f64| {
        let samples = 10;
        let mut sum = 0.0;
        for k in 1..=samples {
            sim.advance_until(from + k as f64 * 30.0);
            sum += sim.snapshot().cpu_iowait;
        }
        sum / samples as f64
    };
    let early = window_mean_iowait(&mut sim, 300.0);
    let late = window_mean_iowait(&mut sim, 2_700.0);
    let final_snap = sim.snapshot();
    assert!(final_snap.swap_used < 5.0, "no swapping in this scenario");
    assert!(
        sim.fragmentation() > 0.5,
        "fragmentation {}",
        sim.fragmentation()
    );
    assert!(
        late > early + 5.0,
        "iowait should rise with fragmentation: {early} -> {late}"
    );
    // Client latency degrades too.
    assert!(sim.recent_response_time() > 0.05);
}

#[test]
fn workflow_learns_on_four_class_data() {
    let mut campaign = F2pmConfig::quick().campaign;
    campaign.sim = four_class_sim();
    let cfg = F2pmConfig::quick_builder()
        .campaign(campaign)
        .build()
        .expect("valid config");
    let report = run_workflow(&cfg, 51).expect("enough data");
    assert!(report.runs >= 4);
    let best = report.best_by_smae().expect("models trained");
    assert!(
        best.metrics.rae < 0.9,
        "model must beat the mean predictor on four-class data (RAE {})",
        best.metrics.rae
    );
}
