//! End-to-end workflow tests asserting the *shapes* of the paper's
//! evaluation (who wins, by roughly what factor, where the trends point) —
//! the contract this reproduction makes in DESIGN.md §4.

use f2pm_repro::f2pm::{run_workflow, F2pmConfig};

/// One shared medium-size workflow run (campaigns are deterministic, so
/// every assertion block can re-derive what it needs).
fn medium_report() -> f2pm_repro::f2pm::F2pmReport {
    let cfg = F2pmConfig::builder().runs(6).build().expect("valid config");
    run_workflow(&cfg, 42).expect("enough data")
}

#[test]
fn table2_shape_trees_beat_linear_and_lasso_is_worst() {
    let report = medium_report();
    let all = report.all_parameters();

    let smae = |name: &str| all.by_name(name).map(|r| r.metrics.smae).unwrap();
    let rep = smae("rep_tree");
    let m5p = smae("m5p");
    let lin = smae("linear_regression");
    let lasso_hi = smae("lasso_lambda_1e9");

    // The paper's Table II ordering: REP-Tree best, M5P close behind
    // (≈ +10 %), linear methods clearly worse, high-λ lasso predictor
    // worst by a large margin.
    assert!(rep < lin, "rep_tree {rep} should beat linear {lin}");
    assert!(m5p < lin, "m5p {m5p} should beat linear {lin}");
    assert!(
        lasso_hi > 1.5 * rep,
        "lasso@1e9 {lasso_hi} should be far worse than rep_tree {rep}"
    );
    // Tree advantage is substantial, not marginal.
    assert!(
        rep < 0.8 * lin,
        "tree advantage too small: rep {rep} vs linear {lin}"
    );
}

#[test]
fn svm_rows_sit_near_linear_regression() {
    // WEKA's SMOreg defaults to a degree-1 (linear) kernel, which is why
    // the paper's SVM and SVM2 rows land next to plain linear regression.
    let report = medium_report();
    let all = report.all_parameters();
    let lin = all.by_name("linear_regression").unwrap().metrics.smae;
    for name in ["svm", "ls_svm"] {
        let v = all.by_name(name).unwrap().metrics.smae;
        assert!(
            v > 0.5 * lin && v < 1.5 * lin,
            "{name} S-MAE {v} should be within ±50 % of linear {lin}"
        );
    }
}

#[test]
fn fig4_lasso_path_monotone_and_exhaustive() {
    let report = medium_report();
    let series = report
        .selection
        .as_ref()
        .expect("selection ran")
        .fig4_series();
    assert_eq!(series.len(), 10, "λ = 10⁰..10⁹");
    for w in series.windows(2) {
        assert!(w[1].1 <= w[0].1, "path must shrink: {series:?}");
    }
    assert!(
        series[0].1 >= 12,
        "small λ keeps most parameters: {series:?}"
    );
    assert!(series[9].1 <= 4, "λ=1e9 keeps almost nothing: {series:?}");
}

#[test]
fn table1_shape_memory_and_slopes_dominate_selection() {
    let report = medium_report();
    let sel = report.selection.as_ref().expect("selection ran");
    let point = sel.strongest_selection(3).expect("kept features");
    // Paper Table I: survivors are memory/swap levels and slopes — no CPU
    // percentages, no thread count.
    for name in &point.selected_names {
        assert!(
            name.starts_with("mem_") || name.starts_with("swap_") || name.starts_with("intergen"),
            "unexpected survivor {name} in {:?}",
            point.selected_names
        );
    }
}

#[test]
fn fig5_shape_error_shrinks_near_failure() {
    // The paper's reading of Fig. 5: models underpredict far from failure
    // but become accurate as the actual RTTF approaches zero, where
    // accuracy matters for triggering rejuvenation.
    let report = medium_report();
    let all = report.all_parameters();
    // Validation targets are not exposed by the report; re-derive them by
    // checking predictions of the best tree: near-zero actual ↔ prediction
    // must also be near zero on average. We use MAE conditioned via the
    // RAE proxy instead: confirmed in crates/bench experiments; here we
    // assert the weaker, directly-available property that the best model
    // generalizes (RAE well below 1).
    let best = all.best_by_smae().expect("models");
    assert!(best.metrics.rae < 0.75, "best RAE {}", best.metrics.rae);
    assert!(
        best.metrics.max_ae > best.metrics.mae,
        "max error dominates mean"
    );
}

#[test]
fn selection_variant_trains_faster() {
    // Tables III/IV: the lasso-selected training sets cut training and
    // validation cost. Wall-clock timing is noisy in CI, so compare the
    // *sum over the expensive methods* with generous slack.
    let report = medium_report();
    let all = report.all_parameters();
    let sel = report.selected_parameters().expect("selected variant");
    let cost = |v: &f2pm_repro::f2pm::VariantReport| {
        ["svm", "ls_svm", "m5p"]
            .iter()
            .filter_map(|n| v.by_name(n))
            .map(|r| r.train_time_s)
            .sum::<f64>()
    };
    let c_all = cost(all);
    let c_sel = cost(sel);
    assert!(
        c_sel < c_all,
        "selected variant should train faster: {c_sel} vs {c_all}"
    );
}

#[test]
fn workflow_is_deterministic() {
    let mut cfg = F2pmConfig::quick();
    cfg.campaign.runs = 2;
    let a = run_workflow(&cfg, 77).expect("enough data");
    let b = run_workflow(&cfg, 77).expect("enough data");
    assert_eq!(a.aggregated_points, b.aggregated_points);
    let ra = a.all_parameters().by_name("rep_tree").unwrap().metrics;
    let rb = b.all_parameters().by_name("rep_tree").unwrap().metrics;
    assert_eq!(ra.smae, rb.smae);
    assert_eq!(ra.mae, rb.mae);
}
