//! Integration of the online-prediction path: a model trained offline on
//! one campaign drives live RTTF estimates — and a rejuvenation policy —
//! against fresh guests it has never seen.

use f2pm_repro::f2pm::{
    run_workflow, F2pmConfig, OnlinePredictor, ProactiveRejuvenator, RejuvenationPolicy,
};
use f2pm_repro::f2pm_monitor::{Collector, SimCollector, SimCollectorConfig};
use f2pm_repro::f2pm_sim::Simulation;

fn trained_predictor(cfg: &F2pmConfig, seed: u64) -> OnlinePredictor {
    let report = run_workflow(cfg, seed).expect("enough data");
    let mut variants = report.variants;
    let variant = variants.remove(0);
    let columns = variant.columns.clone();
    let rep = variant
        .reports
        .into_iter()
        .filter_map(|r| r.ok())
        .find(|r| r.name == "rep_tree")
        .expect("rep_tree trained");
    OnlinePredictor::new(rep.model, &columns, cfg.aggregation)
}

#[test]
fn live_estimates_trend_to_zero_before_the_crash() {
    let cfg = F2pmConfig::quick();
    let mut predictor = trained_predictor(&cfg, 31);

    // Fresh, unseen guest.
    let sim = Simulation::new(cfg.campaign.sim.clone(), 999_331);
    let mut collector = SimCollector::new(sim, SimCollectorConfig::default(), 1);
    let mut estimates: Vec<(f64, f64)> = Vec::new();
    while let Some(d) = collector.collect() {
        let t = d.t_gen;
        if let Some(e) = predictor.push(d) {
            estimates.push((t, e));
        }
    }
    let fail_t = collector.simulation().failed_at().expect("crashed");
    assert!(estimates.len() > 5, "only {} estimates", estimates.len());

    // The final pre-crash estimate must be small in absolute terms and
    // much smaller than the earliest estimate.
    let first = estimates.first().unwrap().1;
    let (last_t, last_e) = *estimates.last().unwrap();
    assert!(last_t < fail_t);
    assert!(
        last_e < first,
        "estimates should fall toward failure: first {first:.0}, last {last_e:.0}"
    );
    let true_last_rttf = fail_t - last_t;
    assert!(
        (last_e - true_last_rttf).abs() < 150.0,
        "final estimate {last_e:.0}s vs true {true_last_rttf:.0}s"
    );
}

#[test]
fn rejuvenation_policy_prevents_crashes_on_unseen_guests() {
    let cfg = F2pmConfig::quick();
    let mut predictor = trained_predictor(&cfg, 32);
    let policy = RejuvenationPolicy {
        rttf_threshold_s: 150.0,
        consecutive_hits: 2,
        planned_restart_s: 20.0,
        crash_recovery_s: 240.0,
        defragment_on_restart: true,
    };
    let rejuvenator = ProactiveRejuvenator::new(cfg.campaign.sim.clone(), policy);
    let horizon = 4000.0;

    let proactive = rejuvenator.run_proactive(&mut predictor, horizon, 555);
    let reactive = rejuvenator.run_reactive(horizon, 555);

    assert!(reactive.crashes >= 3, "baseline should crash repeatedly");
    assert!(
        proactive.crashes < reactive.crashes,
        "proactive {} vs reactive {}",
        proactive.crashes,
        reactive.crashes
    );
    assert!(proactive.availability() > reactive.availability());
    assert!(proactive.downtime_s < reactive.downtime_s);
}
