//! The compute-core rework (blocked symmetric Gram, SVR shrinking, batched
//! prediction) must not change what the framework computes — only how fast.
//! These tests run the real campaign → aggregation → training pipeline and
//! pin the optimized paths to their seed-equivalent references:
//!
//! * `Kernel::matrix` vs the direct per-pair `matrix_reference`,
//! * SVR with shrinking vs the exhaustive full-sweep solver,
//! * every Table II regressor scored through `predict_batch` vs the
//!   per-row loop.

use f2pm_repro::f2pm::F2pmConfig;
use f2pm_repro::f2pm_features::{aggregate_history, Dataset};
use f2pm_repro::f2pm_linalg::Matrix;
use f2pm_repro::f2pm_ml::{
    paper_method_suite, Kernel, Metrics, Regressor, SMaeThreshold, SvrParams, SvrRegressor,
};
use f2pm_repro::f2pm_monitor::DataHistory;
use f2pm_repro::f2pm_sim::{AnomalyConfig, Campaign, CampaignConfig, SimConfig};

/// Small but real Table II-style campaign: simulate, monitor, aggregate.
fn campaign_dataset() -> Dataset {
    let cfg = CampaignConfig {
        sim: SimConfig {
            anomaly: AnomalyConfig {
                leak_size_mib: (5.0, 9.0),
                leak_prob_per_home: (0.7, 0.9),
                ..AnomalyConfig::default()
            },
            ..SimConfig::default()
        },
        runs: 12,
        ..CampaignConfig::default()
    };
    let runs = Campaign::new(cfg, 42).run_all();
    let history = DataHistory::from_campaign(&runs);
    let agg = aggregate_history(&history, &F2pmConfig::default().aggregation);
    Dataset::from_points(&agg)
}

/// Split a dataset into interleaved train/validation halves.
fn split(d: &Dataset) -> (Dataset, Dataset) {
    let n = d.x.rows();
    let p = d.x.cols();
    let mut parts = [
        (Matrix::zeros(0, 0), Vec::new()),
        (Matrix::zeros(0, 0), Vec::new()),
    ];
    for (half, part) in parts.iter_mut().enumerate() {
        let rows: Vec<usize> = (0..n).filter(|i| i % 2 == half).collect();
        let mut x = Matrix::zeros(rows.len(), p);
        let mut y = Vec::with_capacity(rows.len());
        for (to, &from) in rows.iter().enumerate() {
            for j in 0..p {
                x[(to, j)] = d.x[(from, j)];
            }
            y.push(d.y[from]);
        }
        *part = (x, y);
    }
    let [(tx, ty), (vx, vy)] = parts;
    (
        Dataset {
            names: d.names.clone(),
            x: tx,
            y: ty,
        },
        Dataset {
            names: d.names.clone(),
            x: vx,
            y: vy,
        },
    )
}

fn smae(pred: &[f64], truth: &[f64]) -> f64 {
    Metrics::compute(pred, truth, SMaeThreshold::paper_default()).smae
}

#[test]
fn gram_matrix_matches_reference_at_campaign_scale() {
    let d = campaign_dataset();
    let n = d.x.rows();
    assert!(
        n >= 300,
        "campaign too small to exercise the parallel path: {n}"
    );
    for kern in [Kernel::Linear, Kernel::Rbf { gamma: 0.05 }] {
        let fast = kern.matrix(&d.x);
        let refr = kern.matrix_reference(&d.x);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (fast[(i, j)], refr[(i, j)]);
                let tol = 1e-9 * b.abs().max(1.0);
                assert!((a - b).abs() <= tol, "{kern:?} ({i},{j}): {a} vs {b}");
                assert_eq!(fast[(i, j)], fast[(j, i)], "symmetry ({i},{j})");
            }
        }
    }
}

#[test]
fn svr_shrinking_is_equivalent_to_full_sweeps() {
    let d = campaign_dataset();
    let (train, valid) = split(&d);
    // Shrinking skips coordinates it judges (with a safety margin) pinned
    // at a bound between full verification passes, so a skipped coordinate
    // can activate a few sweeps later than in the reference sweep. The two
    // trajectories therefore differ mid-flight, and comparing them at an
    // arbitrary truncation point (the default 400-sweep budget does not
    // reach tol on this dataset) would test nothing but sweep-accounting
    // luck. The spec is *converged agreement*: with a budget that reaches
    // the coordinate-descent tolerance, both solvers must land on the same
    // optimum — validation S-MAE matching to 1e-5 relative, orders of
    // magnitude below any model-selection difference in Table II.
    for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.05 }] {
        let fit = |shrinking: bool| {
            SvrRegressor::new(SvrParams {
                kernel,
                shrinking,
                // The campaign dataset sits below the size-activation
                // threshold; force shrinking on so this test exercises the
                // shrunk solver, not the plain sweep twice.
                shrink_min_n: 0,
                max_sweeps: 20_000,
                ..SvrParams::default()
            })
            .fit(&train.x, &train.y)
            .expect("svr fit")
        };
        let with = fit(true);
        let without = fit(false);
        let pred_with = with.predict_batch(&valid.x).expect("batch");
        let pred_without = without.predict_batch(&valid.x).expect("batch");
        let (s_with, s_without) = (smae(&pred_with, &valid.y), smae(&pred_without, &valid.y));
        assert!(
            (s_with - s_without).abs() <= 1e-5 * s_without.max(1.0),
            "{kernel:?}: S-MAE with shrinking {s_with} vs without {s_without}"
        );
    }
}

#[test]
fn table2_suite_scores_identically_via_batch_and_rows() {
    let d = campaign_dataset();
    let (train, valid) = split(&d);
    for reg in paper_method_suite(&[0.5]) {
        let name = reg.name();
        let model = reg.fit(&train.x, &train.y).unwrap_or_else(|e| {
            panic!("{name}: fit failed: {e}");
        });
        let batch = model.predict_batch(&valid.x).expect(&name);
        let rows: Vec<f64> = (0..valid.x.rows())
            .map(|i| model.predict_row(valid.x.row(i)))
            .collect();
        let (s_batch, s_rows) = (smae(&batch, &valid.y), smae(&rows, &valid.y));
        assert!(
            (s_batch - s_rows).abs() <= 1e-6,
            "{name}: S-MAE batch {s_batch} vs rows {s_rows}"
        );
        for (i, (a, b)) in batch.iter().zip(&rows).enumerate() {
            assert!(
                a == b || (a.is_nan() && b.is_nan()),
                "{name}: prediction {i} batch {a} vs row {b}"
            );
        }
    }
}
