//! `predict_batch` must be indistinguishable from a `predict_row` loop —
//! bit-for-bit — for every model type, across both the serial and the
//! parallel batch paths. The batched implementations share the
//! per-coordinate accumulation order with the row path, so the outputs
//! are asserted with exact equality, not a tolerance.

use f2pm_repro::f2pm_linalg::Matrix;
use f2pm_repro::f2pm_ml::{
    Kernel, LassoRegressor, LinearRegression, LsSvmRegressor, M5Params, M5Prime, Regressor,
    RepTree, RepTreeParams, SvrParams, SvrRegressor,
};

/// Deterministic design matrix with a mildly nonlinear target.
fn design(n: usize, p: usize, phase: f64) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::zeros(n, p);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..p {
            let v = ((i * p + j) as f64 * 0.29 + phase).sin() * 2.5;
            x[(i, j)] = v;
            acc += v * (j as f64 + 1.0) * 0.4;
        }
        y.push(acc + (i as f64 * 0.17).cos() * 8.0 + 60.0);
    }
    (x, y)
}

fn regressors() -> Vec<(&'static str, Box<dyn Regressor>)> {
    vec![
        ("linear", Box::new(LinearRegression::new())),
        ("lasso", Box::new(LassoRegressor::new(0.5))),
        ("rep_tree", Box::new(RepTree::new(RepTreeParams::default()))),
        ("m5p", Box::new(M5Prime::new(M5Params::default()))),
        (
            "svr",
            Box::new(SvrRegressor::new(SvrParams {
                kernel: Kernel::Rbf { gamma: 0.2 },
                ..SvrParams::default()
            })),
        ),
        (
            "ls_svm",
            Box::new(LsSvmRegressor::new(Kernel::Rbf { gamma: 0.2 }, 10.0)),
        ),
    ]
}

fn assert_batch_matches_rows(queries: &Matrix, label: &str) {
    let (train_x, train_y) = design(150, 6, 0.0);
    for (name, reg) in regressors() {
        let model = reg.fit(&train_x, &train_y).expect(name);
        let batch = model.predict_batch(queries).expect(name);
        assert_eq!(batch.len(), queries.rows(), "{label}/{name}: output length");
        for (i, &got) in batch.iter().enumerate() {
            let row = model.predict_row(queries.row(i));
            assert!(
                got == row || (got.is_nan() && row.is_nan()),
                "{label}/{name}: row {i} batch {got} != per-row {row}",
            );
        }
    }
}

#[test]
fn batch_equals_row_loop_serial_path() {
    // Below the parallel threshold: the serial batch path runs.
    let (queries, _) = design(40, 6, 1.3);
    assert_batch_matches_rows(&queries, "serial");
}

#[test]
fn batch_equals_row_loop_parallel_path() {
    // Well above PREDICT_PARALLEL_THRESHOLD (128): the banded parallel
    // overrides of the kernel models run, with per-thread scratch.
    let (queries, _) = design(700, 6, 2.1);
    assert_batch_matches_rows(&queries, "parallel");
}

#[test]
fn batch_rejects_width_mismatch() {
    let (train_x, train_y) = design(80, 6, 0.0);
    let (bad, _) = design(10, 5, 0.4);
    for (name, reg) in regressors() {
        let model = reg.fit(&train_x, &train_y).expect(name);
        assert!(
            model.predict_batch(&bad).is_err(),
            "{name}: width mismatch must error"
        );
    }
}

#[test]
fn batch_on_empty_query_set_is_empty() {
    let (train_x, train_y) = design(80, 6, 0.0);
    let empty = Matrix::zeros(0, 6);
    for (name, reg) in regressors() {
        let model = reg.fit(&train_x, &train_y).expect(name);
        assert!(
            model.predict_batch(&empty).expect(name).is_empty(),
            "{name}"
        );
    }
}
