//! # f2pm-repro
//!
//! Umbrella crate for the F2PM reproduction. It re-exports every workspace
//! crate so the `examples/` and cross-crate `tests/` at the repository root
//! can reach the full system through one dependency.
//!
//! The actual implementation lives in the member crates:
//!
//! - [`f2pm_linalg`] — dense linear algebra (Cholesky, QR, CG, stats)
//! - [`f2pm_sim`] — discrete-event testbed simulator (VM resources, TPC-W
//!   workload, anomaly injectors, failure conditions)
//! - [`f2pm_monitor`] — datapoints, data history, FMC/FMS monitoring
//! - [`f2pm_features`] — aggregation, slopes, RTTF labeling, lasso selection
//! - [`f2pm_ml`] — the six regressors and validation metrics
//! - [`f2pm_serve`] — sharded online RTTF prediction service
//! - [`f2pm`] — the framework workflow tying everything together

pub use f2pm;
pub use f2pm_features;
pub use f2pm_linalg;
pub use f2pm_ml;
pub use f2pm_monitor;
pub use f2pm_serve;
pub use f2pm_sim;
