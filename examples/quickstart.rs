//! Quickstart: run the full F2PM workflow end-to-end on the simulated
//! TPC-W testbed and pick the best RTTF prediction model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use f2pm_repro::f2pm::{run_workflow, F2pmConfig};

fn main() {
    // A small campaign so the example finishes in seconds: 4 runs of the
    // leaking TPC-W guest, sampled every ~1.5 s until each crash.
    let cfg = F2pmConfig::quick_builder()
        .runs(4)
        .build()
        .expect("valid config");

    println!(
        "collecting {} monitored runs-to-failure...",
        cfg.campaign.runs
    );
    let report = run_workflow(&cfg, 42).expect("enough data");

    // The report carries, per training-set variant, every §III-D metric
    // for every method — the same comparison the paper's Tables II-IV show.
    println!("{}", report.summary());

    let best = report.best_by_smae().expect("models were trained");
    println!(
        "selected model: {} (S-MAE {:.1} s, RAE {:.3}, trained in {:.3} s)",
        best.name, best.metrics.smae, best.metrics.rae, best.train_time_s
    );
    println!(
        "a prediction error below 10% of the true RTTF costs nothing here — \
         that is the margin a proactive rejuvenation would absorb."
    );
}
