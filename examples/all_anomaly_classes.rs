//! All four anomaly classes of the paper's §I catalogue at once.
//!
//! The paper's §IV experiment injects memory leaks and unterminated
//! threads; its introduction also names **unreleased locks** and **file
//! fragmentation** as accumulation anomalies. The simulator models all
//! four — locks serialize the request mix, fragmentation makes every
//! database cache miss pay more seeks — and this example shows the richer
//! failure signature they produce, then verifies F2PM still learns on it.
//!
//! ```text
//! cargo run --release --example all_anomaly_classes
//! ```

use f2pm_repro::f2pm::{run_workflow, F2pmConfig};
use f2pm_repro::f2pm_sim::{AnomalyConfig, SimConfig, Simulation};

fn main() {
    let sim_cfg = SimConfig {
        anomaly: AnomalyConfig::all_classes(),
        ..SimConfig::default()
    };

    // 1. Watch one guest degrade under all four classes.
    let mut sim = Simulation::new(sim_cfg.clone(), 11);
    println!(
        "{:>8} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "t(s)", "leaked(M)", "threads", "locks", "frag", "iow%", "rt(s)"
    );
    let mut next = 0.0;
    while sim.advance_until(next) && next <= 40_000.0 {
        let s = sim.snapshot();
        println!(
            "{:>8.0} {:>10.0} {:>9} {:>8} {:>8.3} {:>8.1} {:>8.3}",
            s.t,
            sim.leaked_mib(),
            sim.leaked_threads(),
            sim.leaked_locks(),
            sim.fragmentation(),
            s.cpu_iowait,
            sim.recent_response_time(),
        );
        next += 180.0;
    }
    match sim.failed_at() {
        Some(t) => println!(
            "\nguest FAILED at t = {t:.0} s with {} unreleased locks and \
             fragmentation {:.3}",
            sim.leaked_locks(),
            sim.fragmentation()
        ),
        None => println!("\nguest survived the horizon"),
    }

    // 2. F2PM end-to-end on the four-class workload.
    let mut campaign = F2pmConfig::quick().campaign;
    campaign.sim = SimConfig {
        anomaly: AnomalyConfig {
            // all_classes rates on top of the quick leak rates.
            lock_prob_per_home: (0.01, 0.06),
            frag_delta_per_home: (0.0001, 0.0008),
            ..campaign.sim.anomaly
        },
        ..campaign.sim.clone()
    };
    let cfg = F2pmConfig::quick_builder()
        .campaign(campaign)
        .build()
        .expect("valid config");
    println!(
        "\ntraining on {} four-class runs-to-failure...",
        cfg.campaign.runs
    );
    let report = run_workflow(&cfg, 99).expect("enough data");
    let best = report.best_by_smae().expect("models trained");
    println!(
        "best model: {} (S-MAE {:.1} s, RAE {:.3})",
        best.name, best.metrics.smae, best.metrics.rae
    );
    if let Some(sel) = &report.selection {
        if let Some(point) = sel.strongest_selection(1) {
            println!(
                "strongest lasso selection (λ = {:.0e}): {}",
                point.lambda,
                point.selected_names.join(", ")
            );
        }
    }
}
