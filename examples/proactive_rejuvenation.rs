//! The use case F2PM exists for: proactive software rejuvenation.
//!
//! Trains an RTTF model on a monitoring campaign, then operates the
//! (simulated) service two ways over the same horizon:
//!
//! - **reactive**: let it crash, pay a long unplanned recovery each time;
//! - **proactive**: restart preemptively when the model's predicted RTTF
//!   drops below a safety threshold, paying only a short planned restart.
//!
//! and compares availability — the paper's §I motivation made concrete.
//!
//! ```text
//! cargo run --release --example proactive_rejuvenation
//! ```

use f2pm_repro::f2pm::{
    run_workflow, F2pmConfig, OnlinePredictor, ProactiveRejuvenator, RejuvenationPolicy,
};

fn main() {
    // 1. Knowledge base: a monitored campaign on the faulty testbed.
    let cfg = F2pmConfig::quick();
    println!(
        "training on {} monitored runs-to-failure...",
        cfg.campaign.runs
    );
    let report = run_workflow(&cfg, 11).expect("enough data");

    // 2. Pick the paper's winner (REP-Tree) and wrap it as an online
    //    estimator fed by raw datapoints.
    let mut variants = report.variants;
    let variant = variants.remove(0);
    let columns = variant.columns.clone();
    let rep = variant
        .reports
        .into_iter()
        .filter_map(|r| r.ok())
        .find(|r| r.name == "rep_tree")
        .expect("rep_tree trained");
    println!(
        "model: {} (S-MAE {:.1} s on held-out windows)",
        rep.name, rep.metrics.smae
    );
    let mut predictor = OnlinePredictor::new(rep.model, &columns, cfg.aggregation);

    // 3. Operate both ways over the same simulated horizon.
    let policy = RejuvenationPolicy {
        rttf_threshold_s: 180.0,
        consecutive_hits: 2,
        planned_restart_s: 30.0,
        crash_recovery_s: 300.0,
        defragment_on_restart: true,
    };
    let horizon = 8_000.0;
    let rejuvenator = ProactiveRejuvenator::new(cfg.campaign.sim.clone(), policy);

    let proactive = rejuvenator.run_proactive(&mut predictor, horizon, 999);
    let reactive = rejuvenator.run_reactive(horizon, 999);

    println!("\nover {horizon:.0} s of simulated operation:");
    println!(
        "  reactive : {:>2} crashes, {:>2} planned restarts, downtime {:>6.0} s, availability {:.4}",
        reactive.crashes,
        reactive.planned_restarts,
        reactive.downtime_s,
        reactive.availability()
    );
    println!(
        "  proactive: {:>2} crashes, {:>2} planned restarts, downtime {:>6.0} s, availability {:.4}",
        proactive.crashes,
        proactive.planned_restarts,
        proactive.downtime_s,
        proactive.availability()
    );
    let saved = proactive.availability() - reactive.availability();
    println!(
        "\nproactive operation {} availability by {:.2} percentage points",
        if saved >= 0.0 { "improves" } else { "hurts" },
        saved.abs() * 100.0
    );
}
