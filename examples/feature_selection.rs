//! Feature selection with Lasso Regularization (§III-C, Fig. 4, Table I).
//!
//! Sweeps the paper's λ grid over the aggregated dataset and shows how the
//! selected-parameter count shrinks, then prints the surviving weights at
//! a few interesting λ values — the slope features and memory counters the
//! paper's Table I highlights.
//!
//! ```text
//! cargo run --release --example feature_selection
//! ```

use f2pm_repro::f2pm::F2pmConfig;
use f2pm_repro::f2pm_features::{aggregate_history, lasso_path, paper_lambda_grid, Dataset};
use f2pm_repro::f2pm_monitor::DataHistory;
use f2pm_repro::f2pm_sim::Campaign;

fn main() {
    let cfg = F2pmConfig::quick();
    println!("collecting {} monitored runs...", cfg.campaign.runs);
    let runs = Campaign::new(cfg.campaign.clone(), 5).run_all();
    let history = DataHistory::from_campaign(&runs);
    let points = aggregate_history(&history, &cfg.aggregation);
    let dataset = Dataset::from_points(&points);
    println!(
        "aggregated dataset: {} windows x {} input columns\n",
        dataset.len(),
        dataset.width()
    );

    let report = lasso_path(&dataset, &paper_lambda_grid(), &cfg.lasso_solver);

    println!("Fig. 4 — parameters selected by Lasso:");
    println!("{:>14} {:>10}", "lambda", "selected");
    for (lambda, count) in report.fig4_series() {
        let bar = "#".repeat(count);
        println!("{lambda:>14.0} {count:>10}  {bar}");
    }

    // Weight tables at the most selective non-empty λ values (Table I).
    println!("\nTable I style weight listings:");
    for point in report.path.iter().rev() {
        if point.selected_count() == 0 {
            continue;
        }
        println!(
            "\n  λ = {:.0e} keeps {} parameters:",
            point.lambda,
            point.selected_count()
        );
        for (name, w) in point.weight_table().iter().take(8) {
            println!("    {name:<24} {w:>18.12}");
        }
        if point.selected_count() >= 6 {
            break; // one rich table is enough
        }
    }

    println!(
        "\nnote: slopes and memory counters dominate the survivors — the same \
         observation the paper draws from its Table I."
    );
}
