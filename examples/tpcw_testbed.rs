//! Watch the simulated testbed die: boots the TPC-W guest with the
//! paper's anomaly injection (memory leaks + unterminated threads coupled
//! to the Home interaction) and prints the `free`/`top`-style feature
//! trajectory until the failure condition fires.
//!
//! This is the substrate the whole reproduction stands on — the same
//! qualitative story as the paper's §IV testbed: page cache reclaimed
//! first, then swap fills and accelerates, response time blows up, and the
//! guest dies of memory exhaustion.
//!
//! ```text
//! cargo run --release --example tpcw_testbed
//! ```

use f2pm_repro::f2pm_sim::{SimConfig, Simulation};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let mut sim = Simulation::new(SimConfig::default(), seed);

    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>8}",
        "t(s)", "used(M)", "free(M)", "cach(M)", "swap(M)", "thread", "us%", "wa%", "id%", "rt(s)"
    );

    let mut next_print = 0.0;
    loop {
        if !sim.advance_until(next_print) {
            break;
        }
        let s = sim.snapshot();
        let responses = sim.drain_responses();
        let rt = if responses.is_empty() {
            0.0
        } else {
            responses.iter().map(|r| r.response_s).sum::<f64>() / responses.len() as f64
        };
        println!(
            "{:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>7.1} {:>7.1} {:>7.1} {:>8.3}",
            s.t,
            s.mem_used,
            s.mem_free,
            s.mem_cached,
            s.swap_used,
            s.n_threads,
            s.cpu_user,
            s.cpu_iowait,
            s.cpu_idle,
            rt
        );
        next_print += 60.0;
        if next_print > 40_000.0 {
            println!("guest survived the horizon (seed {seed})");
            return;
        }
    }

    let fail = sim.failed_at().expect("loop exits on failure");
    println!(
        "\nguest FAILED at t = {:.0} s after leaking {:.0} MiB and {} threads \
         ({} requests served)",
        fail,
        sim.leaked_mib(),
        sim.leaked_threads(),
        sim.completed_requests()
    );
}
