//! The paper's §III-A incremental loop: collect monitored runs in batches
//! and keep going until the leave-one-run-out accuracy estimate is good
//! enough to deploy.
//!
//! ```text
//! cargo run --release --example incremental_training
//! ```

use f2pm_repro::f2pm::{F2pmConfig, IncrementalConfig, IncrementalTrainer};
use f2pm_repro::f2pm_ml::{Regressor, RepTree, RepTreeParams};

fn main() {
    let cfg = IncrementalConfig {
        base: F2pmConfig::quick(),
        batch_runs: 2,
        max_batches: 5,
        target_smae: 12.0,
    };
    let target = cfg.target_smae;
    println!(
        "collecting {} runs per batch until leave-one-run-out S-MAE <= {:.0} s \
         (max {} batches)\n",
        cfg.batch_runs, cfg.target_smae, cfg.max_batches
    );

    let probe = RepTree::new(RepTreeParams::default());
    println!("accuracy probe: {}", probe.name());
    let out = IncrementalTrainer::new(cfg, 7).run(&probe);

    println!(
        "\n{:>6} {:>8} {:>12} {:>14} {:>10}",
        "batch", "runs", "datapoints", "LOUO S-MAE(s)", "± std"
    );
    for (i, it) in out.iterations.iter().enumerate() {
        println!(
            "{:>6} {:>8} {:>12} {:>14.1} {:>10.1}",
            i + 1,
            it.runs,
            it.datapoints,
            it.louo_smae,
            it.louo_std
        );
    }

    if out.reached_target {
        println!(
            "\ntarget reached with {} runs — enough knowledge base to deploy; \
             train the final model on all of it.",
            out.runs.len()
        );
    } else {
        println!(
            "\nbudget exhausted at S-MAE {:.1} s (target {:.0} s) — the paper's answer \
             is simply: keep the campaign running.",
            out.final_smae().unwrap_or(f64::NAN),
            target,
        );
    }
}
