//! Train on one "machine", predict on another: the deployment split the
//! paper's architecture implies (models built where the FMS lives, applied
//! near the monitored guest).
//!
//! 1. collect a campaign and archive it as CSV;
//! 2. train a REP-Tree, persist it to a text file;
//! 3. "elsewhere": load the model and the archive, replay the datapoint
//!    stream through an online predictor, and compare the live estimates
//!    against ground truth.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use f2pm_repro::f2pm::F2pmConfig;
use f2pm_repro::f2pm_features::{aggregate_history, Dataset};
use f2pm_repro::f2pm_ml::{persist, RepTree, RepTreeParams, SavedModel};
use f2pm_repro::f2pm_monitor::{load_csv, save_csv, DataHistory};
use f2pm_repro::f2pm_sim::Campaign;

fn main() {
    let dir = std::env::temp_dir().join(format!("f2pm_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let history_path = dir.join("history.csv");
    let model_path = dir.join("rep_tree.model");

    // --- Training side -------------------------------------------------
    let cfg = F2pmConfig::quick();
    println!("[train side] collecting {} runs...", cfg.campaign.runs);
    let runs = Campaign::new(cfg.campaign.clone(), 77).run_all();
    let history = DataHistory::from_campaign(&runs);
    save_csv(&history, &history_path).expect("archive history");

    let points = aggregate_history(&history, &cfg.aggregation);
    let ds = Dataset::from_points(&points);
    let tree = RepTree::new(RepTreeParams::default())
        .fit_tree(&ds.x, &ds.y)
        .expect("fit");
    println!(
        "[train side] fitted rep_tree with {} leaves on {} windows",
        tree.leaf_count(),
        ds.len()
    );
    persist::save(&SavedModel::RepTree(tree), &model_path).expect("persist model");
    println!(
        "[train side] model saved to {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path).unwrap().len()
    );

    // --- Prediction side (a different process in real deployments) -----
    let loaded = persist::load(&model_path).expect("load model");
    println!("\n[predict side] loaded a `{}` model", loaded.kind());
    let archive = load_csv(&history_path).expect("load archive");
    let run = archive.runs().into_iter().next().expect("first run");
    let fail_t = run.fail_time.expect("failing run");

    let agg = cfg.aggregation;
    let points = f2pm_repro::f2pm_features::aggregate_run(&run, &agg);
    println!(
        "[predict side] replaying {} windows of the archived run (fails at {:.0} s):\n",
        points.len(),
        fail_t
    );
    println!(
        "{:>10} {:>16} {:>14} {:>10}",
        "t(s)", "predicted(s)", "actual(s)", "error(s)"
    );
    let model = loaded.as_model();
    let show = points.len().min(10);
    for p in points.iter().take(show) {
        let est = model.predict_row(&p.inputs()).max(0.0);
        let actual = p.rttf.unwrap();
        println!(
            "{:>10.1} {:>16.1} {:>14.1} {:>10.1}",
            p.t_repr,
            est,
            actual,
            (est - actual).abs()
        );
    }
    if points.len() > show {
        println!("   ... ({} more windows)", points.len() - show);
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nthe saved model file is plain text — open it in an editor to inspect the tree.");
}
