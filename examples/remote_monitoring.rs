//! Remote monitoring with the FMC/FMS pair (§III-E).
//!
//! The paper deploys a thin Feature Monitor Client on the machine under
//! test and a Feature Monitor Server elsewhere, connected over TCP/IP.
//! This example reproduces that deployment on the loopback interface:
//!
//! 1. an FMS starts listening;
//! 2. an FMC samples a (simulated) guest to failure and streams every
//!    datapoint plus the final fail event over the socket;
//! 3. the workflow trains models on the history the server accumulated.
//!
//! ```text
//! cargo run --release --example remote_monitoring
//! ```

use f2pm_repro::f2pm::{run_workflow_on_history, F2pmConfig};
use f2pm_repro::f2pm_monitor::{
    FeatureMonitorClient, FeatureMonitorServer, FmcConfig, SimCollector, SimCollectorConfig,
};
use f2pm_repro::f2pm_sim::Simulation;

fn main() {
    let cfg = F2pmConfig::quick();

    // 1. Server side (in the paper: a separate VM).
    let server = FeatureMonitorServer::start("127.0.0.1:0").expect("bind FMS");
    println!("FMS listening on {}", server.addr());

    // 2. Client side: monitor several guests to failure, one connection
    //    per run, exactly like the restart loop of §III-A.
    for run in 0..cfg.campaign.runs as u64 {
        let mut client = FeatureMonitorClient::connect(
            server.addr(),
            FmcConfig {
                host_id: run as u32,
                pause: None,
                ..FmcConfig::default()
            },
        )
        .expect("connect FMC");

        let sim = Simulation::new(cfg.campaign.sim.clone(), 100 + run);
        let mut collector = SimCollector::new(sim, SimCollectorConfig::default(), run);
        let sent = client
            .stream_collector(&mut collector, None)
            .expect("stream datapoints");
        let fail_t = collector
            .simulation()
            .failed_at()
            .expect("guest runs to failure");
        client.send_fail(fail_t).expect("send fail event");
        client.close().expect("close");
        println!("run {run}: streamed {sent} datapoints, fail event at t = {fail_t:.0} s");
    }

    // Wait for the server threads to drain their sockets, then collect.
    let expected = server.datapoint_count();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let history = server.shutdown();
    println!(
        "\nFMS accumulated {} datapoints ({} at shutdown), {} fail events",
        history.datapoint_count(),
        expected,
        history.fail_count()
    );

    // 3. Train on what arrived over the wire.
    let report = run_workflow_on_history(&cfg, &history).expect("enough data");
    let best = report.best_by_smae().expect("models trained");
    println!(
        "best model from remote-collected data: {} (S-MAE {:.1} s)",
        best.name, best.metrics.smae
    );
}
