//! Monitor the *real* machine this example runs on.
//!
//! F2PM is application-agnostic because it only reads system-level
//! features from standard OS tooling. This example uses the framework's
//! `/proc` collector — the same 14 features the paper's FMC samples — on
//! the local Linux host, printing a datapoint every second.
//!
//! ```text
//! cargo run --release --example live_proc_monitor -- [seconds]
//! ```

use f2pm_repro::f2pm_monitor::{FeatureId, ProcCollector, FEATURES};

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let mut collector = ProcCollector::new();
    // Priming read: the CPU percentages need two /proc/stat readings.
    match collector.try_collect() {
        Ok(_) => {}
        Err(e) => {
            eprintln!("cannot read /proc ({e}); this example needs Linux");
            std::process::exit(1);
        }
    }

    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6}",
        "t(s)", "threads", "used(kB)", "free(kB)", "cach(kB)", "swap(kB)", "us%", "sy%", "id%"
    );

    for _ in 0..seconds {
        std::thread::sleep(std::time::Duration::from_secs(1));
        let d = collector.try_collect().expect("collect from /proc");
        println!(
            "{:>7.1} {:>9.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>6.1} {:>6.1} {:>6.1}",
            d.t_gen,
            d.get(FeatureId::NThreads),
            d.get(FeatureId::MemUsed),
            d.get(FeatureId::MemFree),
            d.get(FeatureId::MemCached),
            d.get(FeatureId::SwapUsed),
            d.get(FeatureId::CpuUser),
            d.get(FeatureId::CpuSystem),
            d.get(FeatureId::CpuIdle),
        );
    }

    println!("\nfull feature vector of the last datapoint:");
    let last = collector.try_collect().expect("final collect");
    for f in FEATURES {
        println!("  {:<14} {:>14.2}", f.name(), last.get(f));
    }
    println!(
        "\nfeed these datapoints into an FMC (examples/remote_monitoring.rs), or straight into the\n\
         aggregation pipeline, to build failure models for this machine."
    );
}
