# Renders the reproduced figures from the experiments CSVs.
# Usage: gnuplot plot_all.gp   (run inside the results/ directory)
set datafile separator ","
set terminal pngcairo size 900,600 font ",11"

# --- Fig. 3: response-time correlation -------------------------------
set output "fig3_rt_correlation.png"
set title "Fig. 3 - Response Time Correlation"
set xlabel "Execution Time (seconds)"
set ylabel "Seconds"
set key top left
plot "fig3_rt_correlation.csv" using 1:2 skip 1 with lines title "Generation time", \
     ""                        using 1:3 skip 1 with lines title "Response Time", \
     ""                        using 1:4 skip 1 with lines title "Correlated RT"

# --- Fig. 4: lasso path ----------------------------------------------
set output "fig4_lasso_path.png"
set title "Fig. 4 - Parameters selected by Lasso"
set xlabel "lambda"
set ylabel "Selected Parameters"
set logscale x
set key off
plot "fig4_lasso_path.csv" using 1:2 skip 1 with linespoints pt 7

# --- Fig. 5: predicted vs real RTTF per model ------------------------
unset logscale x
set key off
set xlabel "RTTF (seconds)"
set ylabel "Predicted RTTF (seconds)"
do for [m in "linear_regression m5p rep_tree svm ls_svm lasso_lambda_1e9"] {
    set output sprintf("fig5_%s.png", m)
    set title sprintf("Fig. 5 - %s", m)
    plot sprintf("fig5_%s.csv", m) using 1:2 skip 1 with points pt 7 ps 0.3, x with lines lw 2
}
